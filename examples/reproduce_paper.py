"""Reproduce every table and figure of the paper in one run.

Run:  python examples/reproduce_paper.py [--fast] [E1 E5 ...]

Without arguments, runs all twelve experiments (the eleven
reconstructed paper artifacts plus the E12 robust-front extension; see
DESIGN.md for the experiment index) and prints each paper-style report.
``--fast`` uses reduced optimization budgets where available.
Positional arguments select a subset, e.g. ``E1 E7``.
"""

import sys
import time

from repro.experiments import REGISTRY

FAST_KWARGS = {
    "E1": {"de_population": 20, "de_iterations": 60},
    "E2": {"n_trials": 4, "de_population": 20, "de_iterations": 60},
    "E3": {"de_population": 20, "de_iterations": 60},
    "E4": {"de_population": 20, "de_iterations": 80},
    "E6": {"n_points": 3},
    "E8": {"profile": "fast"},
    "E9": {"profile": "fast"},
    "E10": {"profile": "fast"},
    "E11": {"profile": "fast"},
    "E12": {"population_size": 12, "n_generations": 6, "n_trials": 4},
}


def main(argv):
    fast = "--fast" in argv
    selected = [a for a in argv if not a.startswith("-")]
    experiment_ids = selected or list(REGISTRY)
    for experiment_id in experiment_ids:
        if experiment_id not in REGISTRY:
            raise SystemExit(
                f"unknown experiment {experiment_id!r}; "
                f"choose from {', '.join(REGISTRY)}"
            )
        module = REGISTRY[experiment_id]
        kwargs = FAST_KWARGS.get(experiment_id, {}) if fast else {}
        print("=" * 72)
        print(f"{experiment_id}: {module.__doc__.strip().splitlines()[0]}")
        print("=" * 72)
        started = time.time()
        result = module.run(**kwargs)
        print(module.format_report(result))
        print(f"[{experiment_id} completed in {time.time() - started:.1f} s]\n")


if __name__ == "__main__":
    main(sys.argv[1:])
