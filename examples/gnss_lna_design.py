"""The flagship flow: multi-objective GNSS LNA design, start to finish.

Run:  python examples/gnss_lna_design.py [--fast] [--record [ROOT]]

Reproduces the paper's design loop:
1. improved goal-attainment optimization of the operating point and all
   passive element values over the composite 1.1-1.7 GHz GNSS band,
2. snapping to purchasable E24 parts and re-verification,
3. per-constellation-band performance table,
4. simulated bench measurement (S-parameters + noise figure),
5. two-tone third-order intermodulation check.

``--fast`` swaps step 1 for a single standard goal-attainment solve
(seconds instead of a minute).  ``--record`` journals the run as a
flight-recorder run directory under ROOT (default ``runs/``); inspect
it afterwards with ``repro-obs summary <run_id>`` or diff two runs
with ``repro-obs compare``.
"""

from contextlib import nullcontext
import sys

import numpy as np

from repro.core import (
    DesignFlow,
    format_table,
    simulate_measurement,
    two_tone_analysis,
)
from repro.devices import make_reference_device
from repro.obs.runs import recorded_run
from repro.rf import FrequencyGrid


def main(fast: bool = False, record_to: str = None):
    device = make_reference_device()
    flow = DesignFlow(device.small_signal)

    recording = (
        recorded_run(record_to, name="gnss-lna",
                     config={"example": "gnss_lna_design", "fast": fast},
                     seeds={"seed": 11})
        if record_to is not None else nullcontext()
    )
    with recording as run_dir:
        journal = run_dir.journal if run_dir is not None else None
        if run_dir is not None:
            print(f"(recording to {run_dir.path})")

        print("== step 1: multi-objective optimization ==")
        if fast:
            result = flow.run_standard()
            print("(fast mode: standard goal attainment)")
        else:
            result = flow.run_improved(seed=11, n_probe=40, n_starts=3,
                                       tighten_rounds=2,
                                       on_generation=journal)
        print(f"gamma = {result.gamma:+.3f}, "
              f"constraint violation = {result.constraint_violation:.2e}, "
              f"evaluations = {result.nfev}")
        print(f"attained: NFmax = {result.objectives[0]:.3f} dB, "
              f"GTmin = {-result.objectives[1]:.2f} dB\n")

        print("== step 2: snap to the E24 catalogue and re-verify ==")
        final = flow.finalize(result)
        print(format_table(
            ["quantity", "snapped value"],
            final.summary_rows(),
            title="selected operating point and parts",
        ))
        perf = final.snapped_performance
        print(f"\nsnapped board: NFmax {perf.nf_max_db:.3f} dB, "
              f"GTmin {perf.gt_min_db:.2f} dB, mu_min {perf.mu_min:.3f}, "
              f"Ids {perf.ids * 1e3:.1f} mA\n")

        print("== step 3: per-constellation performance ==")
        print(format_table(
            ["GNSS band", "NF [dB]", "GT [dB]"],
            [(band, vals["NF_dB"], vals["GT_dB"])
             for band, vals in final.per_band.items()],
        ))

        print("\n== step 4: simulated bench measurement ==")
        frequency = FrequencyGrid.linear(1.0e9, 1.8e9, 41)
        measurement = simulate_measurement(flow.template, final.snapped,
                                           frequency)
        mid = len(frequency) // 2
        print(f"at {frequency.f_ghz[mid]:.2f} GHz: "
              f"S21 designed {measurement.sparam_db(2, 1, False)[mid]:.2f} dB, "
              f"measured {measurement.sparam_db(2, 1, True)[mid]:.2f} dB")
        print(f"worst S21 deviation over 1.0-1.8 GHz: "
              f"{measurement.worst_deviation_db(2, 1):.3f} dB")
        print(f"NF designed max {np.max(measurement.nf_designed_db):.3f} dB, "
              f"measured max {np.max(measurement.nf_measured_db):.3f} dB")

        print("\n== step 5: two-tone IM3 check ==")
        rows = []
        for f_center in (1.2e9, 1.4e9, 1.6e9):
            im3 = two_tone_analysis(flow.template, final.snapped,
                                    f_center=f_center)
            rows.append((f_center / 1e9, im3.gt_db, im3.iip3_dbm,
                         im3.oip3_dbm, im3.im3_slope()))
        print(format_table(
            ["f0 [GHz]", "GT [dB]", "IIP3 [dBm]", "OIP3 [dBm]", "slope"],
            rows, float_format="{:.2f}",
        ))


def _parse_args(argv):
    fast = "--fast" in argv
    record_to = None
    if "--record" in argv:
        index = argv.index("--record")
        follower = argv[index + 1] if index + 1 < len(argv) else None
        record_to = (follower
                     if follower and not follower.startswith("--")
                     else "runs")
    return fast, record_to


if __name__ == "__main__":
    main(*_parse_args(sys.argv[1:]))
