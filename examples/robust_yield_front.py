"""Yield-aware robust optimization: corner sweeps and the E12 front.

Run:  python examples/robust_yield_front.py [--fast]

Walks the robust-evaluation API end to end:
1. sweep the default design over its tolerance + bias corner set in a
   single batched MNA call,
2. estimate shipping yield with the batched Monte-Carlo engine,
3. trace a small yield-aware Pareto front (worst-case NF, worst-case
   GT, yield) with NSGA-II and print it.
"""

import sys

import numpy as np

from repro.core import DesignVariables, format_table
from repro.core.amplifier import AmplifierTemplate
from repro.core.bands import design_grid, stability_grid
from repro.core.engine import CompiledTemplate
from repro.core.tolerance import ToleranceSpec, monte_carlo_yield
from repro.devices import make_reference_device
from repro.experiments import e12_robust_front
from repro.optimize.robust import CornerSet


def main(fast: bool = False):
    device = make_reference_device()
    template = AmplifierTemplate(device.small_signal)
    nominal = DesignVariables()
    tolerances = ToleranceSpec()

    print("== yield-aware robust design ==")

    # 1) one batched corner sweep of the nominal design
    corners = CornerSet.from_tolerances(tolerances) + CornerSet.bias()
    compiled = CompiledTemplate(template, design_grid(9),
                                stability_grid(12), verify=False)
    batch = compiled.performance_batch_physical(
        corners.apply(nominal.to_vector()))
    rows = [(name, nf, gt)
            for name, nf, gt in zip(corners.names, batch.nf_max_db,
                                    batch.gt_min_db)]
    print(format_table(["corner", "NF max [dB]", "GT min [dB]"], rows,
                       title=f"corner sweep ({corners.n_corners} corners, "
                             "one batched MNA call)"))
    spread = float(np.max(batch.nf_max_db) - np.min(batch.nf_max_db))
    print(f"worst-case NF spread across corners: {spread:.3f} dB\n")

    # 2) Monte-Carlo shipping yield of the nominal design
    n_trials = 32 if fast else 128
    result = monte_carlo_yield(template, nominal, tolerances,
                               n_trials=n_trials, seed=0,
                               gt_ship_limit_db=11.0)
    print(f"Monte-Carlo yield ({n_trials} trials, batched engine): "
          f"{result.yield_fraction:.2f}")
    print(f"  95th-percentile NF: "
          f"{result.percentile('nf_max_db', 95.0):.3f} dB\n")

    # 3) the yield-aware Pareto front (E12, reduced budget)
    if fast:
        e12 = e12_robust_front.run(population_size=12, n_generations=4,
                                   n_trials=4, seed=0)
    else:
        e12 = e12_robust_front.run(seed=0)
    print(e12_robust_front.format_report(e12))


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
