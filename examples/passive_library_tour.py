"""Tour of the dispersive passive library (the paper's step 3).

Run:  python examples/passive_library_tour.py

Shows the frequency dispersion of real parts — exactly what the paper
insists must be inside the optimization loop — plus the microstrip and
splitter substrate:

* Q(f) / ESR(f) of a catalogue inductor and capacitor,
* microstrip synthesis, dispersion, and loss on RO4003,
* a T splitter and a 1.4 GHz Wilkinson divider solved through the MNA
  simulator, including the splitters' own noise.
"""

import numpy as np

from repro.core import format_series, format_table
from repro.passives import (
    MicrostripLine,
    MicrostripSubstrate,
    ResistiveSplitter,
    WilkinsonDivider,
    coilcraft_style_inductor,
    murata_style_capacitor,
    synthesize_width,
)
from repro.rf import FrequencyGrid


def main():
    f = np.array([0.5e9, 1.1e9, 1.4e9, 1.7e9, 2.5e9, 4.0e9])

    print("== real components: dispersion of Q and ESR ==")
    inductor = coilcraft_style_inductor(9.1e-9, name="L 9.1 nH")
    capacitor = murata_style_capacitor(8.2e-12, name="C 8.2 pF")
    print(format_series(
        "f [GHz]",
        ["Q(L)", "ESR(L) [ohm]", "Q(C)", "ESR(C) [ohm]"],
        f / 1e9,
        [inductor.q_factor(f), inductor.esr(f),
         capacitor.q_factor(f), capacitor.esr(f)],
    ))
    print(f"inductor SRF: {inductor.srf_hz / 1e9:.2f} GHz, "
          f"capacitor SRF: {capacitor.srf_hz / 1e9:.2f} GHz\n")

    print("== microstrip on RO4003C ==")
    substrate = MicrostripSubstrate()
    width = synthesize_width(substrate, 50.0)
    line = MicrostripLine(substrate, width, 20e-3, name="feed")
    print(f"50-ohm strip width: {width * 1e3:.3f} mm")
    loss_db_per_m = 8.686 * (line.alpha_conductor(f)
                             + line.alpha_dielectric(f))
    print(format_series(
        "f [GHz]", ["eps_eff", "Z0 [ohm]", "loss [dB/m]"],
        f / 1e9, [line.eps_eff(f), line.z0(f), loss_db_per_m],
    ))

    print("\n== splitters (for multi-receiver antenna units) ==")
    fg = FrequencyGrid.linear(1.1e9, 1.7e9, 7)
    resistive = ResistiveSplitter().solve(fg)
    wilkinson = WilkinsonDivider(1.4e9).solve(fg)
    rows = []
    for label, result in (("resistive star", resistive),
                          ("Wilkinson @1.4 GHz", wilkinson)):
        s = result.s[fg.index_of(1.4e9)]
        rows.append((
            label,
            20 * np.log10(abs(s[0, 0]) + 1e-12),
            20 * np.log10(abs(s[1, 0])),
            20 * np.log10(abs(s[2, 1]) + 1e-12),
        ))
    print(format_table(
        ["splitter", "S11 [dB]", "S21 [dB]", "S32 (isolation) [dB]"],
        rows, float_format="{:.1f}",
    ))
    print("\nThe Wilkinson splits with ~3.1 dB (0.1 dB of real line loss)"
          "\nand >30 dB isolation; the resistive star pays 6 dB but is"
          "\nbroadband and compact.")


if __name__ == "__main__":
    main()
