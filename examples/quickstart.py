"""Quickstart: evaluate and optimize a GNSS LNA in ~a minute.

Run:  python examples/quickstart.py

Walks the core API end to end:
1. build the reference pHEMT (the synthetic stand-in for a measured
   ATF-54143-class device),
2. evaluate the default amplifier design through the MNA simulator,
3. run one (cheap) goal-attainment optimization,
4. print the before/after figures of merit.
"""

import numpy as np

from repro.core import DesignFlow, DesignVariables, format_table
from repro.devices import make_reference_device


def main():
    device = make_reference_device()
    flow = DesignFlow(device.small_signal)

    print("== GNSS LNA quickstart ==")
    print(f"device: {device.small_signal!r}")
    ids = device.dc.ids(0.52, 3.0)
    print(f"bias check: Ids(Vgs=0.52 V, Vds=3 V) = {ids * 1e3:.1f} mA\n")

    # 1) the hand-picked starting design
    start = flow.template.evaluate(DesignVariables())
    # 2) one standard goal-attainment solve (the quick path; the full
    #    improved method lives in examples/gnss_lna_design.py)
    result = flow.run_standard()
    optimized = flow.evaluator.performance(result.x)

    rows = []
    for label, value_start, value_opt in [
        ("NF max [dB]", start.nf_max_db, optimized.nf_max_db),
        ("GT min [dB]", start.gt_min_db, optimized.gt_min_db),
        ("gain ripple [dB]", start.gt_ripple_db, optimized.gt_ripple_db),
        ("S11 worst [dB]", float(np.max(start.s11_db)),
         float(np.max(optimized.s11_db))),
        ("S22 worst [dB]", float(np.max(start.s22_db)),
         float(np.max(optimized.s22_db))),
        ("mu min (0.1-6 GHz)", start.mu_min, optimized.mu_min),
        ("Ids [mA]", start.ids * 1e3, optimized.ids * 1e3),
    ]:
        rows.append((label, value_start, value_opt))
    print(format_table(["figure of merit", "start", "optimized"], rows,
                       title="design-band performance (1.1-1.7 GHz)"))
    print(f"\nobjective evaluations used: {result.nfev}")
    print(f"goal attainment factor gamma = {result.gamma:+.3f} "
          "(negative = goals over-attained)")


if __name__ == "__main__":
    main()
