"""pHEMT model extraction demo: the paper's three-step identification.

Run:  python examples/model_extraction.py

Fits all five compact models (Curtice quadratic/cubic, Statz, TOM,
Angelov) to the "measured" I-V grid of the reference device with the
three-step robust procedure, then extracts the small-signal intrinsic
elements from VNA data at the design bias.
"""

import numpy as np

from repro.core import format_table
from repro.devices import BiasPoint, MODEL_REGISTRY, make_reference_device
from repro.optimize import extract_dc_model, extract_small_signal
from repro.rf import FrequencyGrid


def main():
    device = make_reference_device()
    iv = device.iv_dataset()
    print("== DC model comparison (three-step robust identification) ==")
    rows = []
    best_name, best_error = None, np.inf
    for name, model_class in MODEL_REGISTRY.items():
        result = extract_dc_model(model_class, iv, seed=0,
                                  de_population=30, de_iterations=100)
        rows.append((
            name,
            len(model_class.parameter_names()),
            result.rms_error_percent,
            result.stage_errors["global"],
            result.stage_errors["robust"],
            result.nfev_total,
        ))
        if result.rms_error_percent < best_error:
            best_name, best_error = name, result.rms_error_percent
    rows.sort(key=lambda r: r[2])
    print(format_table(
        ["model", "params", "final RMS [%]", "after DE [%]",
         "after robust [%]", "nfev"],
        rows,
    ))
    print(f"\nbest model: {best_name} ({best_error:.3f}% of Imax)\n")

    print("== small-signal intrinsic extraction at the design bias ==")
    bias = BiasPoint(0.52, 3.0)
    frequency = FrequencyGrid.linear(0.5e9, 3.0e9, 21)
    record = device.sparam_record(frequency, bias)
    ss_result = extract_small_signal(record,
                                     device.small_signal.extrinsics,
                                     seed=0)
    truth = device.small_signal.intrinsic_at(bias.vgs, bias.vds)
    fit = ss_result.intrinsic
    print(format_table(
        ["element", "extracted", "golden truth"],
        [
            ("gm [mS]", fit.gm * 1e3, truth.gm * 1e3),
            ("gds [mS]", fit.gds * 1e3, truth.gds * 1e3),
            ("Cgs [pF]", fit.cgs * 1e12, truth.cgs * 1e12),
            ("Cgd [pF]", fit.cgd * 1e12, truth.cgd * 1e12),
            ("Cds [pF]", fit.cds * 1e12, truth.cds * 1e12),
            ("Ri [ohm]", fit.ri, truth.ri),
            ("tau [ps]", fit.tau * 1e12, truth.tau * 1e12),
        ],
    ))
    print(f"\nfit residual (normalized RMS): {ss_result.rms_error:.4f}")
    print(f"extracted fT: {fit.ft_hz / 1e9:.1f} GHz "
          f"(truth {truth.ft_hz / 1e9:.1f} GHz)")

    print("\n== cold-FET (Vds = 0) extrinsic extraction ==")
    from repro.optimize import extract_extrinsics_cold_fet

    cold_grid = FrequencyGrid.linear(0.5e9, 6.0e9, 23)
    cold_record = device.sparam_record(cold_grid, BiasPoint(0.55, 0.0))
    cold = extract_extrinsics_cold_fet(cold_record, seed=0)
    true_ext = device.small_signal.extrinsics
    print(format_table(
        ["parasitic", "extracted", "golden truth"],
        [
            ("Lg [nH]", cold.extrinsics.lg * 1e9, true_ext.lg * 1e9),
            ("Ld [nH]", cold.extrinsics.ld * 1e9, true_ext.ld * 1e9),
            ("Ls [nH]", cold.extrinsics.ls * 1e9, true_ext.ls * 1e9),
            ("Cpg [fF]", cold.extrinsics.cpg * 1e15, true_ext.cpg * 1e15),
            ("Cpd [fF]", cold.extrinsics.cpd * 1e15, true_ext.cpd * 1e15),
        ],
    ))
    print(
        "(access resistances are degenerate with the cold channel at a\n"
        " single gate bias — the textbook reason Dambrine's method sweeps\n"
        " Vgs; the identifiable total drain-path resistance is recovered)"
    )


if __name__ == "__main__":
    main()
