"""Receiver-chain noise budget: the reason the preamplifier exists.

Run:  python examples/antenna_system_budget.py

Composes the full antenna installation the paper's introduction
motivates — antenna, the optimized preamplifier, a long coax downlead,
and a splitter feeding two receivers (e.g. a GPS unit and a
GLONASS/Galileo unit) — and prints the system noise figure at the
receiver plane with and without the preamplifier, for three cable
classes and lengths.
"""

import numpy as np

from repro.core import DesignVariables, SystemBudget, format_table
from repro.core.amplifier import AmplifierTemplate
from repro.devices import make_reference_device
from repro.passives import WilkinsonDivider, lmr240_like, rg58_like, rg174_like
from repro.rf import FrequencyGrid


def main():
    device = make_reference_device()
    template = AmplifierTemplate(device.small_signal)
    variables = DesignVariables()
    frequency = FrequencyGrid.linear(1.1e9, 1.7e9, 13)
    splitter = WilkinsonDivider(1.4e9)

    print("== system noise figure at the receiver input ==")
    print("(preamp at the antenna, coax downlead, 2-way splitter)\n")
    rows = []
    for cable_factory, length in [
        (rg174_like, 5.0),
        (rg58_like, 15.0),
        (lmr240_like, 30.0),
    ]:
        cable = cable_factory(length)
        budget = SystemBudget(template, variables, downlead=cable,
                              splitter=splitter)
        result = budget.evaluate(frequency)
        summary = result.summary()
        rows.append((
            f"{cable.name} x {length:.0f} m",
            float(np.mean(cable.loss_db(frequency.f_hz))),
            summary["NF_without_preamp_max_dB"],
            summary["NF_with_preamp_max_dB"],
            summary["improvement_min_dB"],
            summary["gain_with_preamp_min_dB"],
        ))
    print(format_table(
        ["downlead", "cable loss [dB]", "NF no preamp [dB]",
         "NF with preamp [dB]", "improvement [dB]", "net gain [dB]"],
        rows, float_format="{:.2f}",
    ))
    print(
        "\nWithout the antenna preamplifier the receiver noise figure is"
        "\nthe full passive loss; with it, every installation sees an"
        "\nalmost cable-independent sub-3 dB system NF — the premise of"
        "\nthe paper's multi-constellation antenna unit."
    )


if __name__ == "__main__":
    main()
