"""Real (lossy, dispersive) lumped components: capacitors, inductors, resistors.

The paper's third step insists that the passive elements entering the
optimization carry the **frequency dispersion of their parameters — Q,
ESR, etc.** — rather than ideal textbook values.  Each model here is a
small parasitic network whose loss terms scale with frequency:

* conductor (electrode/winding) loss grows as ``sqrt(f)`` (skin effect);
* dielectric loss enters through ``tan δ`` (capacitors) or a parallel
  resistance (inductor packages);
* every part has a series inductance / parallel capacitance giving it a
  self-resonant frequency (SRF), above which a capacitor looks
  inductive and vice versa.

Each component exposes its complex impedance versus frequency, the
derived ``Q(f)`` and ``ESR(f)`` curves the paper plots, conversion to
:class:`~repro.rf.twoport.TwoPort` series/shunt elements, and insertion
into an MNA :class:`~repro.analysis.netlist.Circuit` as a passive
``YBlock`` with physically consistent thermal noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.netlist import Circuit
from repro.guards import contracts as _contracts
from repro.guards import modes as _guard_modes
from repro.rf.frequency import FrequencyGrid
from repro.rf.twoport import TwoPort, series_impedance, shunt_impedance
from repro.util.constants import BOLTZMANN, T_AMBIENT

__all__ = [
    "RealCapacitor",
    "RealInductor",
    "RealResistor",
    "murata_style_capacitor",
    "coilcraft_style_inductor",
    "thin_film_resistor",
]

_F_SKIN_REF = 1e9  # skin-effect losses are specified at 1 GHz


def _two_terminal_stack(y: np.ndarray) -> np.ndarray:
    """Stack per-frequency scalars y into [[y, -y], [-y, y]] matrices."""
    out = np.empty(y.shape + (2, 2), dtype=complex)
    out[..., 0, 0] = y
    out[..., 0, 1] = -y
    out[..., 1, 0] = -y
    out[..., 1, 1] = y
    return out


class _PassiveTwoTerminal:
    """Shared behaviour of two-terminal dispersive components."""

    name: str
    temperature: float

    def impedance(self, f_hz) -> np.ndarray:
        raise NotImplementedError

    def admittance(self, f_hz) -> np.ndarray:
        """Complex admittance [S] at the given frequencies."""
        return 1.0 / self.impedance(f_hz)

    def esr(self, f_hz) -> np.ndarray:
        """Equivalent series resistance: Re(Z)."""
        return np.real(self.impedance(f_hz))

    def reactance(self, f_hz) -> np.ndarray:
        """Series reactance: Im(Z)."""
        return np.imag(self.impedance(f_hz))

    def q_factor(self, f_hz) -> np.ndarray:
        """Quality factor |Im Z| / Re Z."""
        z = self.impedance(f_hz)
        return np.abs(z.imag) / np.maximum(z.real, 1e-300)

    def _checked_impedance(self, f_hz) -> np.ndarray:
        """Impedance with the dissipativity contract enforced.

        A passive two-terminal component must not have negative series
        resistance: ``Re(Z) ≥ 0`` at every frequency (a broken
        parasitic model that crosses zero would synthesize an active
        network and silently poison every passivity budget downstream).
        """
        z = self.impedance(f_hz)
        if _guard_modes.enabled():
            esr = np.real(np.atleast_1d(z))
            scale = max(float(np.max(np.abs(z))), 1.0)
            worst = float(np.min(esr))
            if not np.all(np.isfinite(z)) or worst < -1e-9 * scale:
                _contracts.report_violation(
                    "dissipative",
                    f"{self.name}: Re(Z) must be >= 0 for a passive "
                    f"component, min is {worst:.3e} ohm",
                )
        return z

    # -- conversion to network elements -----------------------------------
    def as_series(self, frequency: FrequencyGrid, z0=50.0) -> TwoPort:
        """A series two-port on the given grid."""
        return series_impedance(frequency,
                                self._checked_impedance(frequency.f_hz),
                                z0=z0, name=f"{self.name}(series)")

    def as_shunt(self, frequency: FrequencyGrid, z0=50.0) -> TwoPort:
        """A shunt-to-ground two-port on the given grid."""
        return shunt_impedance(frequency,
                               self._checked_impedance(frequency.f_hz),
                               z0=z0, name=f"{self.name}(shunt)")

    def add_to(self, circuit: Circuit, node_a: str, node_b: str) -> Circuit:
        """Insert into a netlist as a noisy passive admittance block.

        The block callables are vectorized: given an ``(F,)`` frequency
        array they return ``(F, 2, 2)`` stacks, which lets the MNA
        solver assemble the whole sweep in one pass.
        """
        temperature = self.temperature

        def y_function(f_hz) -> np.ndarray:
            y = np.atleast_1d(self.admittance(f_hz)).astype(complex)
            return _two_terminal_stack(y)

        def cy_function(f_hz) -> np.ndarray:
            # Passive element in equilibrium: CY = 2kT Re(Y).
            g = np.atleast_1d(np.real(self.admittance(f_hz)))
            scale = (2.0 * BOLTZMANN * temperature * g).astype(complex)
            return _two_terminal_stack(scale)

        circuit.y_block(self.name, (node_a, node_b), y_function, cy_function)
        return circuit


@dataclass
class RealCapacitor(_PassiveTwoTerminal):
    """A chip capacitor with ESL, electrode loss, and dielectric loss.

    Parameters
    ----------
    capacitance:
        Nominal capacitance [F].
    esr_conductor_1ghz:
        Electrode/termination resistance at 1 GHz [ohm]; scales as
        ``sqrt(f)``.
    tan_delta:
        Dielectric loss tangent (adds ``tanδ / (ω C)`` to the ESR, so
        this loss *falls* with frequency — the classic crossover that
        makes measured ESR curves U-shaped).
    esl:
        Equivalent series inductance [H].
    name, temperature:
        Label and physical temperature for noise.
    """

    capacitance: float
    esr_conductor_1ghz: float = 0.05
    tan_delta: float = 1e-3
    esl: float = 0.5e-9
    name: str = "C"
    temperature: float = T_AMBIENT

    def __post_init__(self):
        # np.any keeps the checks valid for vectorized (array) values,
        # which the compiled batch engine feeds through these models.
        if np.any(np.asarray(self.capacitance) <= 0):
            raise ValueError(f"{self.name}: capacitance must be positive")
        if (np.any(np.asarray(self.esl) < 0)
                or np.any(np.asarray(self.esr_conductor_1ghz) < 0)
                or np.any(np.asarray(self.tan_delta) < 0)):
            raise ValueError(f"{self.name}: parasitics must be non-negative")

    def impedance(self, f_hz) -> np.ndarray:
        f = np.asarray(f_hz, dtype=float)
        omega = 2.0 * np.pi * f
        r_conductor = self.esr_conductor_1ghz * np.sqrt(f / _F_SKIN_REF)
        r_dielectric = self.tan_delta / (omega * self.capacitance)
        reactance = omega * self.esl - 1.0 / (omega * self.capacitance)
        return r_conductor + r_dielectric + 1j * reactance

    @property
    def srf_hz(self) -> float:
        """Series self-resonant frequency [Hz]."""
        if self.esl == 0:
            return np.inf
        return 1.0 / (2.0 * np.pi * np.sqrt(self.esl * self.capacitance))


@dataclass
class RealInductor(_PassiveTwoTerminal):
    """A chip/air-core inductor with winding loss and parallel capacitance.

    The winding resistance is ``r_dc + r_ac_1ghz * sqrt(f / 1 GHz)``;
    the parallel capacitance sets the SRF and ``r_parallel`` models
    package/dielectric losses that dominate near resonance.  This
    reproduces the measured behaviour of catalogue parts: Q rises
    roughly as ``sqrt(f)`` at low frequency, peaks, then collapses at
    the SRF.
    """

    inductance: float
    r_dc: float = 0.1
    r_ac_1ghz: float = 0.5
    c_parallel: float = 0.1e-12
    r_parallel: float = 50e3
    name: str = "L"
    temperature: float = T_AMBIENT

    def __post_init__(self):
        if np.any(np.asarray(self.inductance) <= 0):
            raise ValueError(f"{self.name}: inductance must be positive")
        if (np.any(np.asarray(self.r_dc) < 0)
                or np.any(np.asarray(self.r_ac_1ghz) < 0)
                or np.any(np.asarray(self.c_parallel) < 0)):
            raise ValueError(f"{self.name}: parasitics must be non-negative")
        if np.any(np.asarray(self.r_parallel) <= 0):
            raise ValueError(f"{self.name}: r_parallel must be positive")

    def impedance(self, f_hz) -> np.ndarray:
        f = np.asarray(f_hz, dtype=float)
        omega = 2.0 * np.pi * f
        r_series = self.r_dc + self.r_ac_1ghz * np.sqrt(f / _F_SKIN_REF)
        z_winding = r_series + 1j * omega * self.inductance
        y_total = (
            1.0 / z_winding
            + 1j * omega * self.c_parallel
            + 1.0 / self.r_parallel
        )
        return 1.0 / y_total

    @property
    def srf_hz(self) -> float:
        """Parallel self-resonant frequency [Hz]."""
        if self.c_parallel == 0:
            return np.inf
        return 1.0 / (
            2.0 * np.pi * np.sqrt(self.inductance * self.c_parallel)
        )


@dataclass
class RealResistor(_PassiveTwoTerminal):
    """A thin-film chip resistor with series inductance and shunt capacitance."""

    resistance: float
    l_series: float = 0.4e-9
    c_parallel: float = 0.05e-12
    name: str = "R"
    temperature: float = T_AMBIENT

    def __post_init__(self):
        if np.any(np.asarray(self.resistance) <= 0):
            raise ValueError(f"{self.name}: resistance must be positive")
        if np.any(np.asarray(self.l_series) < 0) or np.any(
            np.asarray(self.c_parallel) < 0
        ):
            raise ValueError(f"{self.name}: parasitics must be non-negative")

    def impedance(self, f_hz) -> np.ndarray:
        f = np.asarray(f_hz, dtype=float)
        omega = 2.0 * np.pi * f
        z_series = self.resistance + 1j * omega * self.l_series
        y_total = 1.0 / z_series + 1j * omega * self.c_parallel
        return 1.0 / y_total


# ----------------------------------------------------------------------
# catalogue-style factories (values representative of 0402/0603 parts)
# ----------------------------------------------------------------------

def murata_style_capacitor(capacitance: float, name: str = "C",
                           temperature: float = T_AMBIENT) -> RealCapacitor:
    """A C0G/NP0 multilayer chip capacitor with size-typical parasitics.

    Accepts a scalar capacitance or an array of values (the compiled
    batch engine passes a whole candidate population at once).
    """
    # Smaller capacitors have slightly lower ESL and electrode loss.
    if np.ndim(capacitance) == 0:
        esl = 0.35e-9 if capacitance < 10e-12 else 0.5e-9
        esr = 0.04 if capacitance < 10e-12 else 0.08
    else:
        small = np.asarray(capacitance) < 10e-12
        esl = np.where(small, 0.35e-9, 0.5e-9)
        esr = np.where(small, 0.04, 0.08)
    return RealCapacitor(capacitance=capacitance, esr_conductor_1ghz=esr,
                         tan_delta=5e-4, esl=esl, name=name,
                         temperature=temperature)


def coilcraft_style_inductor(inductance: float, name: str = "L",
                             temperature: float = T_AMBIENT) -> RealInductor:
    """A wirewound 0402-class RF inductor with size-typical parasitics."""
    # Winding resistance roughly scales with the number of turns ~ sqrt(L).
    scale = np.sqrt(inductance / 10e-9)
    return RealInductor(
        inductance=inductance,
        r_dc=0.08 * scale,
        r_ac_1ghz=0.55 * scale,
        c_parallel=0.08e-12 * (1.0 + 0.4 * scale),
        r_parallel=60e3,
        name=name,
        temperature=temperature,
    )


def thin_film_resistor(resistance: float, name: str = "R",
                       temperature: float = T_AMBIENT) -> RealResistor:
    """A thin-film 0402 resistor with size-typical parasitics."""
    return RealResistor(resistance=resistance, l_series=0.4e-9,
                        c_parallel=0.04e-12, name=name,
                        temperature=temperature)
