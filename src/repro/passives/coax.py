"""Coaxial transmission lines (the antenna downlead).

A GNSS antenna preamplifier exists because tens of metres of coax sit
between the antenna and the receiver; the system-budget example uses
these models to show the preamplifier rescuing the cascade noise
figure.  Standard TEM formulas (Pozar): conductor loss with skin
effect, dielectric loss from tan δ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.frequency import FrequencyGrid
from repro.rf.noise import NoisyTwoPort
from repro.rf.twoport import TwoPort, transmission_line
from repro.util.constants import ETA_0, MU_0, SPEED_OF_LIGHT, T_AMBIENT

__all__ = ["CoaxLine", "rg58_like", "rg174_like", "lmr240_like"]


@dataclass(frozen=True)
class CoaxLine:
    """A coaxial cable segment.

    Parameters
    ----------
    inner_diameter, outer_diameter:
        Conductor geometry [m] (``a`` and ``b`` radii are the halves).
    epsilon_r, tan_delta:
        Dielectric constant and loss tangent of the fill.
    conductivity:
        Conductor conductivity [S/m].
    length:
        Physical length [m].
    temperature:
        Physical temperature for noise [K].
    """

    inner_diameter: float
    outer_diameter: float
    epsilon_r: float
    tan_delta: float
    conductivity: float
    length: float
    name: str = "coax"
    temperature: float = T_AMBIENT

    def __post_init__(self):
        if not 0 < self.inner_diameter < self.outer_diameter:
            raise ValueError(
                f"{self.name}: need 0 < inner < outer diameter"
            )
        if self.epsilon_r < 1.0 or self.tan_delta < 0:
            raise ValueError(f"{self.name}: invalid dielectric")
        if self.conductivity <= 0 or self.length <= 0:
            raise ValueError(f"{self.name}: invalid conductor/length")

    @property
    def z0(self) -> float:
        """Characteristic impedance [ohm]."""
        return (
            ETA_0
            / (2.0 * np.pi * np.sqrt(self.epsilon_r))
            * np.log(self.outer_diameter / self.inner_diameter)
        )

    def alpha_conductor(self, f_hz) -> np.ndarray:
        """Conductor attenuation [Np/m], ~ sqrt(f)."""
        f = np.asarray(f_hz, dtype=float)
        r_surface = np.sqrt(np.pi * f * MU_0 / self.conductivity)
        a = self.inner_diameter / 2.0
        b = self.outer_diameter / 2.0
        eta = ETA_0 / np.sqrt(self.epsilon_r)
        return r_surface * (1.0 / a + 1.0 / b) / (
            2.0 * eta * np.log(b / a)
        )

    def alpha_dielectric(self, f_hz) -> np.ndarray:
        """Dielectric attenuation [Np/m], ~ f."""
        f = np.asarray(f_hz, dtype=float)
        k = 2.0 * np.pi * f * np.sqrt(self.epsilon_r) / SPEED_OF_LIGHT
        return k * self.tan_delta / 2.0

    def gamma(self, f_hz) -> np.ndarray:
        """Complex propagation constant α + jβ [1/m]."""
        f = np.asarray(f_hz, dtype=float)
        beta = 2.0 * np.pi * f * np.sqrt(self.epsilon_r) / SPEED_OF_LIGHT
        return self.alpha_conductor(f) + self.alpha_dielectric(f) + 1j * beta

    def loss_db(self, f_hz) -> np.ndarray:
        """Total insertion loss of the segment [dB] (matched)."""
        alpha = self.alpha_conductor(f_hz) + self.alpha_dielectric(f_hz)
        return 8.685889638 * alpha * self.length

    def as_twoport(self, frequency: FrequencyGrid,
                   z0_ref: float = 50.0) -> TwoPort:
        """The cable as a (dispersive, lossy) TwoPort."""
        f = frequency.f_hz
        return transmission_line(frequency, self.z0,
                                 self.gamma(f) * self.length,
                                 z0=z0_ref, name=self.name)

    def as_noisy_twoport(self, frequency: FrequencyGrid,
                         z0_ref: float = 50.0) -> NoisyTwoPort:
        """The cable with its thermal noise at the physical temperature."""
        return NoisyTwoPort.from_passive(
            self.as_twoport(frequency, z0_ref), self.temperature
        )


def rg58_like(length: float, name: str = "RG-58") -> CoaxLine:
    """A RG-58-class cable (~0.4 dB/m at 1.5 GHz)."""
    return CoaxLine(
        inner_diameter=0.9e-3, outer_diameter=3.145e-3,
        epsilon_r=2.25, tan_delta=4e-4, conductivity=5.8e7,
        length=length, name=name,
    )


def rg174_like(length: float, name: str = "RG-174") -> CoaxLine:
    """A thin RG-174-class cable (~1 dB/m at 1.5 GHz)."""
    return CoaxLine(
        inner_diameter=0.48e-3, outer_diameter=1.677e-3,
        epsilon_r=2.25, tan_delta=5e-4, conductivity=5.8e7,
        length=length, name=name,
    )


def lmr240_like(length: float, name: str = "LMR-240") -> CoaxLine:
    """A low-loss LMR-240-class cable (~0.25 dB/m at 1.5 GHz)."""
    return CoaxLine(
        inner_diameter=1.42e-3, outer_diameter=3.877e-3,
        epsilon_r=1.45, tan_delta=2e-4, conductivity=5.8e7,
        length=length, name=name,
    )
