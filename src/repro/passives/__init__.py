"""Dispersive passive-element models (the paper's step 3).

* :mod:`repro.passives.rlc` — real capacitors/inductors/resistors with
  frequency-dependent Q and ESR;
* :mod:`repro.passives.microstrip` — Hammerstad-Jensen microstrip with
  Kobayashi dispersion and loss;
* :mod:`repro.passives.splitter` — T splitters and Wilkinson dividers;
* :mod:`repro.passives.networks` — matching sections, bias feeds,
  DC blocks assembled from real parts;
* :mod:`repro.passives.catalog` — standard value series (E12/E24).
"""

from repro.passives.rlc import (
    RealCapacitor,
    RealInductor,
    RealResistor,
    coilcraft_style_inductor,
    murata_style_capacitor,
    thin_film_resistor,
)
from repro.passives.microstrip import (
    MicrostripLine,
    MicrostripSubstrate,
    synthesize_width,
)
from repro.passives.splitter import (
    ResistiveSplitter,
    WilkinsonDivider,
    ideal_tee_sparams,
    tee_junction_parasitic_sparams,
)
from repro.passives.networks import BiasFeed, MatchingSection, dc_block
from repro.passives.coax import CoaxLine, lmr240_like, rg58_like, rg174_like
from repro.passives.catalog import E12, E24, series_values, snap_to_series

__all__ = [
    "RealCapacitor",
    "RealInductor",
    "RealResistor",
    "coilcraft_style_inductor",
    "murata_style_capacitor",
    "thin_film_resistor",
    "MicrostripLine",
    "MicrostripSubstrate",
    "synthesize_width",
    "ResistiveSplitter",
    "WilkinsonDivider",
    "ideal_tee_sparams",
    "tee_junction_parasitic_sparams",
    "BiasFeed",
    "MatchingSection",
    "dc_block",
    "CoaxLine",
    "lmr240_like",
    "rg58_like",
    "rg174_like",
    "E12",
    "E24",
    "series_values",
    "snap_to_series",
]
