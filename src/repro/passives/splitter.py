"""T splitters and power dividers as three-port networks.

A multi-constellation antenna unit often feeds several receivers, so
the paper's passive inventory includes **T splitters**.  Three models
of increasing realism are provided:

* :func:`ideal_tee_sparams` — the textbook lossless parallel junction;
* :class:`ResistiveSplitter` — the matched 3-resistor star (6 dB loss,
  all ports matched, noisy);
* :class:`WilkinsonDivider` — quarter-wave microstrip divider with an
  isolation resistor, built on the MNA simulator with full line
  dispersion and loss.

The latter two return :class:`~repro.analysis.acsolver.ACResult`
objects (3-port S + noise correlation) from the in-house simulator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.acsolver import ACResult, solve_ac
from repro.analysis.netlist import Circuit
from repro.guards import contracts as _contracts
from repro.passives.microstrip import (
    MicrostripLine,
    MicrostripSubstrate,
    synthesize_width,
)
from repro.rf.frequency import FrequencyGrid
from repro.util.constants import SPEED_OF_LIGHT, T_AMBIENT

__all__ = [
    "ideal_tee_sparams",
    "tee_junction_parasitic_sparams",
    "ResistiveSplitter",
    "WilkinsonDivider",
]


def ideal_tee_sparams(n_frequencies: int = 1) -> np.ndarray:
    """S-matrix of the ideal (lossless, unmatched) T junction.

    Three identical lines joined in parallel: ``Sii = -1/3``,
    ``Sij = 2/3``.  Returned with a leading frequency axis for symmetry
    with the simulator outputs.
    """
    s = np.full((3, 3), 2.0 / 3.0, dtype=complex)
    np.fill_diagonal(s, -1.0 / 3.0)
    return np.broadcast_to(s, (int(n_frequencies), 3, 3)).copy()


def tee_junction_parasitic_sparams(frequency: FrequencyGrid,
                                   shunt_capacitance: float = 30e-15,
                                   z0: float = 50.0) -> np.ndarray:
    """T junction with the discontinuity shunt capacitance at the node.

    Microstrip T junctions present an excess capacitance at the branch
    point (tens of fF for 50-ohm lines on thin laminates); this is the
    dominant deviation from the ideal junction below a few GHz.
    """
    circuit = Circuit("tee")
    for k in range(3):
        # Each port needs its own node (coincident port nodes make the
        # loaded impedance matrix singular); a negligible access
        # resistance stands in for the zero-length connection.
        circuit.port(f"p{k + 1}", f"arm{k + 1}", z0=z0)
        circuit.resistor(f"Racc{k + 1}", f"arm{k + 1}", "junction", 1e-6,
                         temperature=0.0)
    circuit.capacitor("Cj", "junction", "gnd", shunt_capacitance)
    s = solve_ac(circuit, frequency, compute_noise=False).s
    # The 1e-6-ohm access resistors put the lossless junction a hair on
    # the active side of |S| = 1 numerically; allow for that.
    _contracts.check_passive_network(s, "tee junction", tol=1e-6)
    return s


class ResistiveSplitter:
    """Matched three-resistor star splitter (Z0/3 in each arm)."""

    def __init__(self, z0: float = 50.0, temperature: float = T_AMBIENT,
                 name: str = "rsplit"):
        self.z0 = float(z0)
        self.temperature = float(temperature)
        self.name = name

    def build_circuit(self) -> Circuit:
        circuit = Circuit(self.name)
        arm = self.z0 / 3.0
        for k in range(3):
            circuit.port(f"p{k + 1}", f"n{k + 1}", z0=self.z0)
            circuit.resistor(f"R{k + 1}", f"n{k + 1}", "star", arm,
                             temperature=self.temperature)
        return circuit

    def solve(self, frequency: FrequencyGrid) -> ACResult:
        """3-port S-parameters and noise over the grid."""
        result = solve_ac(self.build_circuit(), frequency)
        _contracts.check_passive_network(
            result.s, f"resistive splitter {self.name!r}", cy=result.cy
        )
        return result


class WilkinsonDivider:
    """Single-section Wilkinson divider realized in microstrip.

    Two quarter-wave arms of impedance ``sqrt(2) z0`` and a ``2 z0``
    isolation resistor.  Arm lengths are set for *f_design*; dispersion
    and loss then shape the response across the band exactly as on a
    real board.
    """

    def __init__(self, f_design: float,
                 substrate: Optional[MicrostripSubstrate] = None,
                 z0: float = 50.0, name: str = "wilkinson"):
        if f_design <= 0:
            raise ValueError("f_design must be positive")
        self.f_design = float(f_design)
        self.substrate = substrate or MicrostripSubstrate()
        self.z0 = float(z0)
        self.name = name
        z_arm = np.sqrt(2.0) * self.z0
        width = synthesize_width(self.substrate, z_arm)
        # Quarter wavelength at the design frequency, using the static
        # effective permittivity for the initial cut (as a designer would).
        probe = MicrostripLine(self.substrate, width, 1e-3, name="probe")
        eps_eff = float(probe.eps_eff(self.f_design))
        quarter_wave = SPEED_OF_LIGHT / (
            4.0 * self.f_design * np.sqrt(eps_eff)
        )
        self.arm_a = MicrostripLine(self.substrate, width, quarter_wave,
                                    name=f"{name}_armA")
        self.arm_b = MicrostripLine(self.substrate, width, quarter_wave,
                                    name=f"{name}_armB")

    def build_circuit(self) -> Circuit:
        circuit = Circuit(self.name)
        circuit.port("p1", "common", z0=self.z0)
        circuit.port("p2", "out_a", z0=self.z0)
        circuit.port("p3", "out_b", z0=self.z0)
        self.arm_a.add_to(circuit, "common", "out_a")
        self.arm_b.add_to(circuit, "common", "out_b")
        circuit.resistor("Riso", "out_a", "out_b", 2.0 * self.z0,
                         temperature=self.substrate.temperature)
        return circuit

    def solve(self, frequency: FrequencyGrid) -> ACResult:
        """3-port S-parameters and noise over the grid."""
        result = solve_ac(self.build_circuit(), frequency)
        _contracts.check_passive_network(
            result.s, f"wilkinson divider {self.name!r}", cy=result.cy
        )
        return result
