"""Composite passive building blocks: matching sections, bias tee, DC block.

Each builder produces *real* components (dispersive, lossy) from the
catalogue factories in :mod:`repro.passives.rlc`, and can emit either a
fast cascade-algebra :class:`~repro.rf.noise.NoisyTwoPort` or netlist
insertions for the full MNA verification path.  The optimizer
manipulates the element values through these builders, so the loss and
dispersion of every part is inside the optimization loop — exactly the
paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.netlist import Circuit
from repro.guards import contracts as _contracts
from repro.passives.microstrip import MicrostripLine
from repro.passives.rlc import (
    coilcraft_style_inductor,
    murata_style_capacitor,
    thin_film_resistor,
)
from repro.rf.frequency import FrequencyGrid
from repro.rf.noise import NoisyTwoPort
from repro.rf.twoport import thru

__all__ = [
    "MatchingSection",
    "BiasFeed",
    "dc_block",
]


@dataclass
class MatchingSection:
    """An L-section of real parts, optionally preceded by a microstrip stub.

    Topology (signal left to right)::

        in --[line]--+--[series element]-- out
                     |
                  [shunt element]
                     |
                    gnd

    ``shunt_first`` swaps the order (shunt at the input side).  Any of
    the three branches may be omitted (``None`` value).

    Element kinds are ``("L", henries)`` or ``("C", farads)``.
    """

    name: str
    series: Optional[tuple] = None
    shunt: Optional[tuple] = None
    line: Optional[MicrostripLine] = None
    shunt_first: bool = False

    def _series_component(self):
        return _make_component(self.series, f"{self.name}_ser")

    def _shunt_component(self):
        return _make_component(self.shunt, f"{self.name}_sh")

    # -- fast path ---------------------------------------------------------
    def as_noisy_twoport(self, frequency: FrequencyGrid,
                         z0: float = 50.0) -> NoisyTwoPort:
        """Cascade-algebra network with correct passive noise."""
        chain = NoisyTwoPort.from_passive(thru(frequency, z0=z0))
        if self.line is not None:
            line_tp = self.line.as_twoport(frequency, z0_ref=z0)
            chain = chain ** NoisyTwoPort.from_passive(
                line_tp, self.line.substrate.temperature
            )
        stages = []
        series_part = self._series_component()
        shunt_part = self._shunt_component()
        if shunt_part is not None:
            shunt_net = NoisyTwoPort.from_passive(
                shunt_part.as_shunt(frequency, z0), shunt_part.temperature
            )
        if series_part is not None:
            series_net = NoisyTwoPort.from_passive(
                series_part.as_series(frequency, z0), series_part.temperature
            )
        if self.shunt_first:
            if shunt_part is not None:
                stages.append(shunt_net)
            if series_part is not None:
                stages.append(series_net)
        else:
            if series_part is not None:
                stages.append(series_net)
            if shunt_part is not None:
                stages.append(shunt_net)
        for stage in stages:
            chain = chain ** stage
        _contracts.check_passive_network(
            chain.network.s, f"matching section {self.name!r}"
        )
        return chain

    # -- netlist path --------------------------------------------------------
    def add_to(self, circuit: Circuit, node_in: str, node_out: str) -> Circuit:
        """Insert the section between two nodes of an MNA netlist."""
        current = node_in
        if self.line is not None:
            line_out = f"{self.name}_nline"
            self.line.add_to(circuit, current, line_out)
            current = line_out
        series_part = self._series_component()
        shunt_part = self._shunt_component()
        if self.shunt_first and shunt_part is not None:
            shunt_part.add_to(circuit, current, "gnd")
        if series_part is not None:
            series_part.add_to(circuit, current, node_out)
        else:
            # No series element: the section is a shunt tap on a through
            # node, so just merge the nodes with a negligible resistance.
            circuit.resistor(f"{self.name}_thru", current, node_out, 1e-6,
                             temperature=0.0)
        if not self.shunt_first and shunt_part is not None:
            shunt_part.add_to(circuit, node_out, "gnd")
        return circuit


def _make_component(spec, name):
    if spec is None:
        return None
    kind, value = spec
    if kind == "L":
        return coilcraft_style_inductor(value, name=name)
    if kind == "C":
        return murata_style_capacitor(value, name=name)
    raise ValueError(f"unknown element kind {kind!r} (expected 'L' or 'C')")


@dataclass
class BiasFeed:
    """An RF choke + decoupling network feeding DC into the signal path.

    Topology: choke inductor from the signal node up to the supply
    node, decoupling capacitor from supply to ground, and a small
    series resistor for de-Qing.  At RF this looks like a shunt branch
    on the signal node, which is how :meth:`as_noisy_twoport` models it.
    """

    name: str
    choke_inductance: float = 33e-9
    decoupling_capacitance: float = 100e-12
    damping_resistance: float = 10.0

    def shunt_impedance(self, f_hz):
        """RF impedance of the whole feed seen from the signal node."""
        choke = coilcraft_style_inductor(self.choke_inductance,
                                         name=f"{self.name}_Lch")
        decap = murata_style_capacitor(self.decoupling_capacitance,
                                       name=f"{self.name}_Cd")
        damp = thin_film_resistor(self.damping_resistance,
                                  name=f"{self.name}_Rd")
        return (
            choke.impedance(f_hz)
            + 1.0 / (1.0 / damp.impedance(f_hz)
                     + 1.0 / decap.impedance(f_hz))
        )

    def as_noisy_twoport(self, frequency: FrequencyGrid,
                         z0: float = 50.0) -> NoisyTwoPort:
        """The feed as a shunt two-port on the RF path."""
        from repro.rf.twoport import shunt_impedance as shunt_tp

        z = self.shunt_impedance(frequency.f_hz)
        network = shunt_tp(frequency, z, z0=z0, name=self.name)
        _contracts.check_passive_network(
            network.s, f"bias feed {self.name!r}"
        )
        return NoisyTwoPort.from_passive(network)

    def add_to(self, circuit: Circuit, signal_node: str,
               supply_node: str) -> Circuit:
        """Insert the feed into a netlist (supply node is RF ground)."""
        choke = coilcraft_style_inductor(self.choke_inductance,
                                         name=f"{self.name}_Lch")
        decap = murata_style_capacitor(self.decoupling_capacitance,
                                       name=f"{self.name}_Cd")
        choke.add_to(circuit, signal_node, supply_node)
        mid = f"{self.name}_damp"
        circuit.resistor(f"{self.name}_Rd", supply_node, mid,
                         self.damping_resistance)
        decap.add_to(circuit, mid, "gnd")
        return circuit


def dc_block(frequency: FrequencyGrid, capacitance: float = 47e-12,
             z0: float = 50.0, name: str = "dcblock") -> NoisyTwoPort:
    """A series DC-blocking capacitor as a noisy two-port."""
    cap = murata_style_capacitor(capacitance, name=name)
    block = NoisyTwoPort.from_passive(cap.as_series(frequency, z0),
                                      cap.temperature)
    _contracts.check_passive_network(block.network.s, f"dc block {name!r}")
    return block


