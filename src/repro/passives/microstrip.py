"""Microstrip transmission lines with full frequency dispersion and loss.

Static parameters use the Hammerstad–Jensen equations (the standard for
CAD-accuracy microstrip synthesis); effective-permittivity dispersion
uses the Kobayashi model; conductor loss includes skin effect and a
surface-roughness correction; dielectric loss uses the standard
loss-tangent formula.  Together these give the frequency-dispersive
line parameters the paper's step 3 calls for.

References: Hammerstad & Jensen (1980); Kobayashi (1988).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.netlist import Circuit
from repro.guards import contracts as _contracts
from repro.guards import modes as _guard_modes
from repro.rf.frequency import FrequencyGrid
from repro.rf.twoport import TwoPort, transmission_line
from repro.util.constants import (
    BOLTZMANN,
    ETA_0,
    MU_0,
    SPEED_OF_LIGHT,
    T_AMBIENT,
)

__all__ = ["MicrostripSubstrate", "MicrostripLine", "synthesize_width"]


@dataclass(frozen=True)
class MicrostripSubstrate:
    """A PCB laminate for microstrip construction.

    Defaults approximate Rogers RO4003C, a typical low-loss laminate
    for GNSS front ends.
    """

    epsilon_r: float = 3.38
    height: float = 0.508e-3          # dielectric thickness [m]
    conductor_thickness: float = 35e-6  # copper cladding [m]
    tan_delta: float = 0.0027
    conductivity: float = 5.8e7       # copper [S/m]
    roughness_rms: float = 0.5e-6     # surface roughness [m]
    temperature: float = T_AMBIENT

    def __post_init__(self):
        if self.epsilon_r < 1.0:
            raise ValueError("epsilon_r must be >= 1")
        if min(self.height, self.conductor_thickness, self.conductivity) <= 0:
            raise ValueError("substrate dimensions must be positive")
        if self.tan_delta < 0 or self.roughness_rms < 0:
            raise ValueError("loss parameters must be non-negative")


def _hammerstad_jensen_static(u: float, epsilon_r: float):
    """Static (quasi-TEM) εeff and Z0 for normalized width u = w/h."""
    fu = 6.0 + (2.0 * np.pi - 6.0) * np.exp(-((30.666 / u) ** 0.7528))
    z0_air = ETA_0 / (2.0 * np.pi) * np.log(
        fu / u + np.sqrt(1.0 + (2.0 / u) ** 2)
    )
    a = (
        1.0
        + np.log((u**4 + (u / 52.0) ** 2) / (u**4 + 0.432)) / 49.0
        + np.log(1.0 + (u / 18.1) ** 3) / 18.7
    )
    b = 0.564 * ((epsilon_r - 0.9) / (epsilon_r + 3.0)) ** 0.053
    eps_eff = (epsilon_r + 1.0) / 2.0 + (epsilon_r - 1.0) / 2.0 * (
        1.0 + 10.0 / u
    ) ** (-a * b)
    return eps_eff, z0_air / np.sqrt(eps_eff)


def _thickness_corrected_u(width: float, substrate: MicrostripSubstrate):
    """Hammerstad-Jensen strip-thickness correction to u = w/h."""
    u = width / substrate.height
    t_norm = substrate.conductor_thickness / substrate.height
    if t_norm <= 0:
        return u
    coth = 1.0 / np.tanh(np.sqrt(6.517 * u))
    delta_u = t_norm / np.pi * np.log(
        1.0 + 4.0 * np.e / (t_norm * coth**2)
    )
    return u + delta_u


class MicrostripLine:
    """A microstrip segment of given strip width and physical length."""

    def __init__(self, substrate: MicrostripSubstrate, width: float,
                 length: float, name: str = "msline"):
        if width <= 0 or length <= 0:
            raise ValueError(f"{name}: width and length must be positive")
        self.substrate = substrate
        self.width = float(width)
        self.length = float(length)
        self.name = name
        u = _thickness_corrected_u(self.width, substrate)
        self._eps_eff_static, self._z0_static = _hammerstad_jensen_static(
            u, substrate.epsilon_r
        )
        self._u = u

    # -- dispersive parameters ---------------------------------------------
    def eps_eff(self, f_hz) -> np.ndarray:
        """Effective permittivity vs frequency (Kobayashi dispersion)."""
        f = np.asarray(f_hz, dtype=float)
        er = self.substrate.epsilon_r
        ee0 = self._eps_eff_static
        h = self.substrate.height
        u = self._u
        if er - ee0 < 1e-12:
            return np.full_like(f, ee0)
        # Kobayashi's 50%-dispersion-point frequency.
        f_tm0 = (
            SPEED_OF_LIGHT
            * np.arctan(er * np.sqrt((ee0 - 1.0) / (er - ee0)))
            / (2.0 * np.pi * h * np.sqrt(er - ee0))
        )
        f50 = f_tm0 / (0.75 + (0.75 - 0.332 / er**1.73) * u)
        m0 = (
            1.0
            + 1.0 / (1.0 + np.sqrt(u))
            + 0.32 * (1.0 / (1.0 + np.sqrt(u))) ** 3
        )
        if u < 0.7:
            mc = 1.0 + 1.4 / (1.0 + u) * (
                0.15 - 0.235 * np.exp(-0.45 * f / f50)
            )
        else:
            mc = np.ones_like(f)
        m = np.minimum(m0 * mc, 2.32)
        return er - (er - ee0) / (1.0 + (f / f50) ** m)

    def z0(self, f_hz) -> np.ndarray:
        """Characteristic impedance vs frequency (HJ dispersion relation)."""
        ee_f = self.eps_eff(f_hz)
        ee0 = self._eps_eff_static
        return (
            self._z0_static
            * (ee_f - 1.0)
            / (ee0 - 1.0)
            * np.sqrt(ee0 / ee_f)
        )

    def alpha_conductor(self, f_hz) -> np.ndarray:
        """Conductor attenuation [Np/m] with skin effect and roughness."""
        f = np.asarray(f_hz, dtype=float)
        sub = self.substrate
        r_surface = np.sqrt(np.pi * f * MU_0 / sub.conductivity)
        skin_depth = 1.0 / (r_surface * sub.conductivity)
        roughness = 1.0 + (2.0 / np.pi) * np.arctan(
            1.4 * (sub.roughness_rms / skin_depth) ** 2
        )
        return r_surface * roughness / (self.z0(f) * self.width)

    def alpha_dielectric(self, f_hz) -> np.ndarray:
        """Dielectric attenuation [Np/m] from the substrate loss tangent."""
        f = np.asarray(f_hz, dtype=float)
        sub = self.substrate
        ee = self.eps_eff(f)
        k0 = 2.0 * np.pi * f / SPEED_OF_LIGHT
        return (
            k0
            * sub.epsilon_r
            * (ee - 1.0)
            * sub.tan_delta
            / (2.0 * np.sqrt(ee) * (sub.epsilon_r - 1.0))
        )

    def gamma(self, f_hz) -> np.ndarray:
        """Complex propagation constant α + jβ [1/m]."""
        f = np.asarray(f_hz, dtype=float)
        beta = 2.0 * np.pi * f * np.sqrt(self.eps_eff(f)) / SPEED_OF_LIGHT
        alpha = self.alpha_conductor(f) + self.alpha_dielectric(f)
        return alpha + 1j * beta

    def electrical_length_deg(self, f_hz) -> np.ndarray:
        """Electrical length in degrees at the given frequencies."""
        return np.rad2deg(np.imag(self.gamma(f_hz)) * self.length)

    def q_factor(self, f_hz) -> np.ndarray:
        """Line quality factor β / (2α)."""
        g = self.gamma(f_hz)
        return g.imag / (2.0 * np.maximum(g.real, 1e-30))

    # -- network views -------------------------------------------------------
    def as_twoport(self, frequency: FrequencyGrid, z0_ref=50.0) -> TwoPort:
        """The line as a dispersive, lossy TwoPort."""
        f = frequency.f_hz
        gamma = self.gamma(f)
        if _guard_modes.enabled():
            # Dissipativity contract of the line model: attenuation
            # must be non-negative (alpha < 0 means the loss model
            # turned the line into an amplifier) and the quasi-TEM
            # effective permittivity must stay physical (>= 1).
            alpha = np.real(np.atleast_1d(gamma))
            if not np.all(np.isfinite(gamma)) or np.min(alpha) < -1e-12:
                _contracts.report_violation(
                    "dissipative",
                    f"{self.name}: attenuation alpha must be >= 0, "
                    f"min is {float(np.min(alpha)):.3e} Np/m",
                )
            eps = np.atleast_1d(self.eps_eff(f))
            if np.min(eps) < 1.0 - 1e-9:
                _contracts.report_violation(
                    "dissipative",
                    f"{self.name}: eps_eff must be >= 1, "
                    f"min is {float(np.min(eps)):.6f}",
                )
        return transmission_line(
            frequency,
            self.z0(f),
            gamma * self.length,
            z0=z0_ref,
            name=self.name,
        )

    def y_matrix(self, f_hz) -> np.ndarray:
        """2x2 admittance matrix of the segment.

        Vectorized: a scalar gives ``(2, 2)``, an ``(F,)`` array gives
        ``(F, 2, 2)``.
        """
        scalar_input = np.isscalar(f_hz)
        f = np.atleast_1d(np.asarray(f_hz, dtype=float))
        gl = self.gamma(f) * self.length
        zc = self.z0(f)
        sinh_gl = np.sinh(gl)
        cosh_gl = np.cosh(gl)
        y0 = 1.0 / (zc * sinh_gl)
        out = np.empty(f.shape + (2, 2), dtype=complex)
        out[..., 0, 0] = cosh_gl * y0
        out[..., 0, 1] = -y0
        out[..., 1, 0] = -y0
        out[..., 1, 1] = cosh_gl * y0
        return out[0] if scalar_input else out

    def add_to(self, circuit: Circuit, node_a: str, node_b: str) -> Circuit:
        """Insert into a netlist as a noisy passive block.

        A lossy line in thermal equilibrium contributes ``2kT Re(Y)``
        noise, which the ``YBlock`` machinery handles exactly.
        """
        temperature = self.substrate.temperature

        def cy_function(f_hz) -> np.ndarray:
            y = self.y_matrix(f_hz)
            return 2.0 * BOLTZMANN * temperature * y.real.astype(complex)

        circuit.y_block(self.name, (node_a, node_b), self.y_matrix,
                        cy_function)
        return circuit

    def __repr__(self):
        return (
            f"<MicrostripLine {self.name!r} w={self.width * 1e3:.3f} mm "
            f"l={self.length * 1e3:.2f} mm Z0~{self._z0_static:.1f} ohm>"
        )


def synthesize_width(substrate: MicrostripSubstrate, z0_target: float,
                     tolerance: float = 1e-4) -> float:
    """Find the strip width realizing *z0_target* on *substrate* (static).

    Bisection over u = w/h in [0.05, 40]; raises if the target is
    outside the realizable range.
    """
    if z0_target <= 0:
        raise ValueError("z0_target must be positive")

    def z_of(u_physical):
        # Include the strip-thickness correction so the synthesized strip
        # realizes the target when analyzed by MicrostripLine.
        width = u_physical * substrate.height
        u_corrected = _thickness_corrected_u(width, substrate)
        return _hammerstad_jensen_static(u_corrected, substrate.epsilon_r)[1]

    u_low, u_high = 0.05, 40.0
    z_low, z_high = z_of(u_low), z_of(u_high)  # z decreases with u
    if not z_high <= z0_target <= z_low:
        raise ValueError(
            f"Z0 = {z0_target:.1f} ohm unrealizable on this substrate "
            f"(range {z_high:.1f}-{z_low:.1f} ohm)"
        )
    while u_high - u_low > tolerance * u_low:
        u_mid = np.sqrt(u_low * u_high)
        if z_of(u_mid) > z0_target:
            u_low = u_mid
        else:
            u_high = u_mid
    return 0.5 * (u_low + u_high) * substrate.height
