"""Standard component value series and catalogue snapping.

The final step of the design flow rounds optimized element values to
purchasable parts (E24 for inductors/resistors, E24 for capacitors),
then re-verifies the circuit — exactly what a board designer does after
an optimizer hands back 3.1416 nH.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "E12",
    "E24",
    "series_values",
    "snap_to_series",
]

E12 = (1.0, 1.2, 1.5, 1.8, 2.2, 2.7, 3.3, 3.9, 4.7, 5.6, 6.8, 8.2)
E24 = (
    1.0, 1.1, 1.2, 1.3, 1.5, 1.6, 1.8, 2.0, 2.2, 2.4, 2.7, 3.0,
    3.3, 3.6, 3.9, 4.3, 4.7, 5.1, 5.6, 6.2, 6.8, 7.5, 8.2, 9.1,
)


def series_values(series=E24, decade_min: int = -12,
                  decade_max: int = -6) -> np.ndarray:
    """All values of a series across the given power-of-ten decades."""
    decades = 10.0 ** np.arange(decade_min, decade_max + 1)
    values = np.outer(decades, np.asarray(series, dtype=float)).ravel()
    return np.sort(values)


def snap_to_series(value: float, series=E24) -> float:
    """The closest standard value (geometric distance) to *value*."""
    if value <= 0:
        raise ValueError(f"component value must be positive, got {value}")
    decade = np.floor(np.log10(value))
    candidates = np.asarray(series, dtype=float) * 10.0**decade
    candidates = np.concatenate(
        [candidates / 10.0, candidates, candidates * 10.0]
    )
    ratios = np.abs(np.log(candidates / value))
    return float(candidates[np.argmin(ratios)])
