"""E8 (Table IV): the selected operating point and element values.

One improved-goal-attainment run, finalized: element values snapped to
the E24 catalogue and the snapped board re-verified.  Expected shape:
a sub-50 mA operating point around Vds 3-4 V; NF well under 1 dB and
GT above ~14 dB in every GNSS signal band; the snapped board still
unconditionally stable.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional

from repro.core.design import DesignFlow, FinalDesign
from repro.core.report import format_table
from repro.experiments.common import reference_device, selected_design
from repro.obs import tracer as _obs_tracer
from repro.obs.runs import recorded_run

__all__ = ["E8Result", "run", "submit", "format_report"]


def submit(service, profile: str = "full", engine: str = "compiled",
           workers: Optional[int] = None,
           deadline_s: Optional[float] = None, max_retries: int = 1,
           **run_kwargs):
    """Submit the selected-design run to a job service.

    See :func:`repro.service.api.submit_experiment`; the run executes
    in whichever service process leases the job, supervised (deadline,
    retry, crash recovery).
    """
    from repro.service.api import submit_experiment
    kwargs = dict(profile=profile, engine=engine, workers=workers,
                  **run_kwargs)
    return submit_experiment(service, "e8_selected_design", kwargs,
                             deadline_s=deadline_s,
                             max_retries=max_retries)


@dataclass
class E8Result:
    design: FinalDesign


def run(profile: str = "full", engine: str = "compiled",
        workers: Optional[int] = None,
        record_to: Optional[str] = None) -> E8Result:
    """Fetch (or compute) the cached selected design.

    ``workers > 1`` shards the flow's population-level evaluations
    across threads — results stay bit-identical, so the cached and
    parallel designs agree.  ``record_to`` names a runs root; the
    optimization is then executed outside the process-wide cache so its
    convergence trace lands in a fresh flight-recorder journal.
    """
    if record_to is None and workers is None:
        with _obs_tracer.span("e8.run", profile=profile):
            return E8Result(design=selected_design(profile, engine))
    recording = (
        recorded_run(record_to, name="e8",
                     config={"experiment": "e8", "engine": engine,
                             "profile": profile},
                     seeds={"seed": 11})
        if record_to is not None else nullcontext()
    )
    with recording as run_dir:
        with _obs_tracer.span("e8.run", profile=profile), \
                DesignFlow(reference_device().small_signal,
                           engine=engine, workers=workers) as flow:
            if profile == "full":
                result = flow.run_improved(
                    seed=11, n_probe=40, n_starts=3, tighten_rounds=2,
                    on_generation=(run_dir.journal
                                   if run_dir is not None else None),
                )
            elif profile == "fast":
                result = flow.run_standard()
            else:
                raise ValueError(f"unknown profile {profile!r}")
            return E8Result(design=flow.finalize(result))


def format_report(result: E8Result) -> str:
    design = result.design
    element_table = format_table(
        ["quantity", "optimized", "snapped (E24)"],
        [
            (label,
             f"{_lookup(design, label):.3f}",
             f"{value:.3f}")
            for label, value in design.summary_rows()
        ],
        title="Table IV - selected operating point and element values",
    )
    perf = design.snapped_performance.summary()
    perf_table = format_table(
        ["figure of merit", "value"],
        [(key, value) for key, value in perf.items()],
        title="snapped-board verification",
    )
    band_table = format_table(
        ["GNSS band", "NF [dB]", "GT [dB]"],
        [
            (band, vals["NF_dB"], vals["GT_dB"])
            for band, vals in design.per_band.items()
        ],
        title="per-band performance (snapped board)",
    )
    return "\n\n".join([element_table, perf_table, band_table])


_LABEL_TO_ATTR = {
    "Vgs [V]": ("vgs", 1.0),
    "Vds [V]": ("vds", 1.0),
    "Lin [nH]": ("l_in", 1e9),
    "Ldeg [nH]": ("l_deg", 1e9),
    "Cin [pF]": ("c_in", 1e12),
    "Cout [pF]": ("c_out", 1e12),
    "Lchoke [nH]": ("l_choke", 1e9),
    "Rstab [ohm]": ("r_stab", 1.0),
    "Rsh [ohm]": ("r_sh", 1.0),
    "Csh [pF]": ("c_sh", 1e12),
}


def _lookup(design: FinalDesign, label: str) -> float:
    if label == "Ids [mA]":
        return design.performance.ids * 1e3
    attr, scale = _LABEL_TO_ATTR[label]
    return getattr(design.variables, attr) * scale
