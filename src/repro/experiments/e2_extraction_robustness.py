"""E2 (Table II): robustness of the three-step identification.

Repeats the extraction of the Angelov model under independent random
conditions (different optimizer seeds, freshly corrupted datasets)
with three procedures: the full three-step method, DE-only, and a
local fit from a perturbed engineering guess.  Expected shape: the
three-step method succeeds essentially always with a tight error
spread; DE-only is nearly as reliable but leaves accuracy on the
table (no polish); local-only fails on a substantial fraction of
starts (local minima of the tanh model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.report import format_table
from repro.devices.dcmodels import AngelovModel
from repro.devices.reference import ReferencePHEMT
from repro.optimize.extraction import (
    extract_dc_model,
    extract_de_only,
    extract_local_only,
)

__all__ = ["E2Result", "run", "format_report"]

#: An extraction "succeeds" when it lands within 2x the noise floor of
#: the best achievable fit (~0.35 % for the golden dataset).
SUCCESS_THRESHOLD_PERCENT = 0.7


@dataclass
class E2Result:
    rows: List[dict]
    errors: Dict[str, np.ndarray]


def _methods(de_population: int, de_iterations: int):
    return {
        "three-step (paper)": lambda iv, seed: extract_dc_model(
            AngelovModel, iv, seed=seed, de_population=de_population,
            de_iterations=de_iterations,
        ),
        "DE only": lambda iv, seed: extract_de_only(
            AngelovModel, iv, seed=seed, de_population=de_population,
            de_iterations=de_iterations,
        ),
        "local only": lambda iv, seed: extract_local_only(
            AngelovModel, iv, seed=seed,
        ),
    }


def run(n_trials: int = 10, de_population: int = 25,
        de_iterations: int = 80) -> E2Result:
    """Repeat each extraction procedure over independent trials."""
    rows = []
    errors: Dict[str, np.ndarray] = {}
    for method_name, method in _methods(de_population,
                                        de_iterations).items():
        trial_errors = []
        trial_nfev = []
        for trial in range(n_trials):
            device = ReferencePHEMT(seed=1000 + trial)
            iv = device.iv_dataset()
            result = method(iv, trial)
            trial_errors.append(result.rms_error_percent)
            trial_nfev.append(result.nfev_total)
        trial_errors = np.asarray(trial_errors)
        errors[method_name] = trial_errors
        success = trial_errors < SUCCESS_THRESHOLD_PERCENT
        rows.append({
            "method": method_name,
            "success_rate": float(np.mean(success)),
            "median_rms": float(np.median(trial_errors)),
            "worst_rms": float(np.max(trial_errors)),
            "spread_iqr": float(
                np.percentile(trial_errors, 75)
                - np.percentile(trial_errors, 25)
            ),
            "mean_nfev": float(np.mean(trial_nfev)),
        })
    return E2Result(rows=rows, errors=errors)


def format_report(result: E2Result) -> str:
    return format_table(
        ["method", "success", "median RMS [%]", "worst RMS [%]",
         "IQR [%]", "mean nfev"],
        [
            (r["method"], f"{100 * r['success_rate']:.0f}%",
             r["median_rms"], r["worst_rms"], r["spread_iqr"],
             int(r["mean_nfev"]))
            for r in result.rows
        ],
        title=(
            "Table II - extraction robustness over independent trials "
            f"(success: RMS < {SUCCESS_THRESHOLD_PERCENT}%)"
        ),
    )
