"""E10 (Fig. 6): designed vs "measured" noise figure of the preamplifier.

The snapped design's noise figure over the GNSS band, from the full
MNA noise analysis, against the simulated NF-meter readings.  Expected
shape: NF well below 1 dB across 1.1-1.7 GHz, the measured points
scattered around the designed curve by the meter jitter plus the small
ENR systematic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import MeasuredPerformance, simulate_measurement
from repro.core.report import format_series
from repro.experiments.common import design_flow, selected_design
from repro.rf.frequency import FrequencyGrid

__all__ = ["E10Result", "run", "format_report"]


@dataclass
class E10Result:
    measurement: MeasuredPerformance
    nf_designed_max_db: float
    nf_measured_max_db: float


def run(n_points: int = 31, profile: str = "full") -> E10Result:
    """Measure the snapped design's noise figure on the simulated bench."""
    design = selected_design(profile)
    template = design_flow().template
    frequency = FrequencyGrid.linear(1.1e9, 1.7e9, n_points)
    measurement = simulate_measurement(template, design.snapped, frequency)
    return E10Result(
        measurement=measurement,
        nf_designed_max_db=float(np.max(measurement.nf_designed_db)),
        nf_measured_max_db=float(np.max(measurement.nf_measured_db)),
    )


def format_report(result: E10Result) -> str:
    m = result.measurement
    title = (
        "Fig. 6 - preamplifier noise figure, designed vs measured "
        f"(max designed {result.nf_designed_max_db:.3f} dB, "
        f"max measured {result.nf_measured_max_db:.3f} dB)"
    )
    return format_series(
        "f [GHz]",
        ["NF designed [dB]", "NF measured [dB]"],
        m.frequency.f_ghz,
        [m.nf_designed_db, m.nf_measured_db],
        title=title,
    )
