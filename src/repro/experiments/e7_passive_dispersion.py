"""E7 (Fig. 4): frequency dispersion of the passive elements.

Tabulates the Q(f) / ESR(f) curves of the catalogue inductor and
capacitor models actually used in the LNA, plus the dispersive
microstrip parameters, over 0.1-6 GHz.  Expected shape: inductor Q
rises, peaks (mid-GHz), and collapses at the SRF; capacitor ESR is
U-shaped (dielectric loss falling, conductor loss rising); microstrip
eps_eff rises monotonically with frequency (Kobayashi dispersion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.report import format_series
from repro.guards import contracts as _contracts
from repro.passives.microstrip import (
    MicrostripLine,
    MicrostripSubstrate,
    synthesize_width,
)
from repro.passives.rlc import (
    coilcraft_style_inductor,
    murata_style_capacitor,
)
from repro.rf.frequency import FrequencyGrid

__all__ = ["E7Result", "run", "format_report"]


@dataclass
class E7Result:
    frequency: FrequencyGrid
    inductor_q: np.ndarray
    inductor_esr: np.ndarray
    capacitor_q: np.ndarray
    capacitor_esr: np.ndarray
    eps_eff: np.ndarray
    z0_line: np.ndarray
    line_loss_db_per_m: np.ndarray
    inductor_srf_ghz: float
    capacitor_srf_ghz: float
    splitter_insertion_db: Optional[np.ndarray] = None
    splitter_isolation_db: Optional[np.ndarray] = None
    splitter_match_db: Optional[np.ndarray] = None


def run(inductance: float = 9.1e-9, capacitance: float = 8.2e-12,
        n_points: int = 25, splitter=None) -> E7Result:
    """Sweep the element models used by the selected design.

    When *splitter* (an object with a ``solve(frequency)`` method, e.g.
    a :class:`~repro.passives.splitter.ResistiveSplitter`) is given, its
    three-port response is swept on the same grid and checked against
    the passive-network contract — an antenna splitter that amplifies
    is a model bug, and this experiment is the natural boundary where a
    user-supplied splitter enters the report pipeline.
    """
    frequency = FrequencyGrid.logarithmic(0.1e9, 6.0e9, n_points)
    f = frequency.f_hz
    inductor = coilcraft_style_inductor(inductance)
    capacitor = murata_style_capacitor(capacitance)
    substrate = MicrostripSubstrate()
    line = MicrostripLine(substrate, synthesize_width(substrate, 50.0),
                          10e-3)
    alpha = line.alpha_conductor(f) + line.alpha_dielectric(f)
    splitter_insertion = splitter_isolation = splitter_match = None
    if splitter is not None:
        result = splitter.solve(frequency)
        _contracts.check_passive_network(result.s, "e7 splitter",
                                         cy=getattr(result, "cy", None))
        with np.errstate(divide="ignore"):
            splitter_insertion = 20.0 * np.log10(np.abs(result.s[:, 1, 0]))
            splitter_isolation = 20.0 * np.log10(np.abs(result.s[:, 2, 1]))
            splitter_match = 20.0 * np.log10(np.abs(result.s[:, 0, 0]))
    return E7Result(
        frequency=frequency,
        inductor_q=inductor.q_factor(f),
        inductor_esr=inductor.esr(f),
        capacitor_q=capacitor.q_factor(f),
        capacitor_esr=capacitor.esr(f),
        eps_eff=line.eps_eff(f),
        z0_line=line.z0(f),
        line_loss_db_per_m=8.685889638 * alpha,
        inductor_srf_ghz=inductor.srf_hz / 1e9,
        capacitor_srf_ghz=capacitor.srf_hz / 1e9,
        splitter_insertion_db=splitter_insertion,
        splitter_isolation_db=splitter_isolation,
        splitter_match_db=splitter_match,
    )


def format_report(result: E7Result) -> str:
    title = (
        "Fig. 4 - passive element dispersion "
        f"(L SRF {result.inductor_srf_ghz:.2f} GHz, "
        f"C SRF {result.capacitor_srf_ghz:.2f} GHz)"
    )
    labels = ["Q(L)", "ESR(L) [ohm]", "Q(C)", "ESR(C) [ohm]", "eps_eff",
              "Z0 [ohm]", "loss [dB/m]"]
    columns = [
        result.inductor_q,
        result.inductor_esr,
        result.capacitor_q,
        result.capacitor_esr,
        result.eps_eff,
        result.z0_line,
        result.line_loss_db_per_m,
    ]
    if result.splitter_insertion_db is not None:
        labels += ["split S21 [dB]", "split S32 [dB]", "split S11 [dB]"]
        columns += [
            result.splitter_insertion_db,
            result.splitter_isolation_db,
            result.splitter_match_db,
        ]
    return format_series(
        "f [GHz]",
        labels,
        result.frequency.f_ghz,
        columns,
        title=title,
        float_format="{:.3f}",
    )
