"""E7 (Fig. 4): frequency dispersion of the passive elements.

Tabulates the Q(f) / ESR(f) curves of the catalogue inductor and
capacitor models actually used in the LNA, plus the dispersive
microstrip parameters, over 0.1-6 GHz.  Expected shape: inductor Q
rises, peaks (mid-GHz), and collapses at the SRF; capacitor ESR is
U-shaped (dielectric loss falling, conductor loss rising); microstrip
eps_eff rises monotonically with frequency (Kobayashi dispersion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.report import format_series
from repro.passives.microstrip import (
    MicrostripLine,
    MicrostripSubstrate,
    synthesize_width,
)
from repro.passives.rlc import (
    coilcraft_style_inductor,
    murata_style_capacitor,
)
from repro.rf.frequency import FrequencyGrid

__all__ = ["E7Result", "run", "format_report"]


@dataclass
class E7Result:
    frequency: FrequencyGrid
    inductor_q: np.ndarray
    inductor_esr: np.ndarray
    capacitor_q: np.ndarray
    capacitor_esr: np.ndarray
    eps_eff: np.ndarray
    z0_line: np.ndarray
    line_loss_db_per_m: np.ndarray
    inductor_srf_ghz: float
    capacitor_srf_ghz: float


def run(inductance: float = 9.1e-9, capacitance: float = 8.2e-12,
        n_points: int = 25) -> E7Result:
    """Sweep the element models used by the selected design."""
    frequency = FrequencyGrid.logarithmic(0.1e9, 6.0e9, n_points)
    f = frequency.f_hz
    inductor = coilcraft_style_inductor(inductance)
    capacitor = murata_style_capacitor(capacitance)
    substrate = MicrostripSubstrate()
    line = MicrostripLine(substrate, synthesize_width(substrate, 50.0),
                          10e-3)
    alpha = line.alpha_conductor(f) + line.alpha_dielectric(f)
    return E7Result(
        frequency=frequency,
        inductor_q=inductor.q_factor(f),
        inductor_esr=inductor.esr(f),
        capacitor_q=capacitor.q_factor(f),
        capacitor_esr=capacitor.esr(f),
        eps_eff=line.eps_eff(f),
        z0_line=line.z0(f),
        line_loss_db_per_m=8.685889638 * alpha,
        inductor_srf_ghz=inductor.srf_hz / 1e9,
        capacitor_srf_ghz=capacitor.srf_hz / 1e9,
    )


def format_report(result: E7Result) -> str:
    title = (
        "Fig. 4 - passive element dispersion "
        f"(L SRF {result.inductor_srf_ghz:.2f} GHz, "
        f"C SRF {result.capacitor_srf_ghz:.2f} GHz)"
    )
    return format_series(
        "f [GHz]",
        ["Q(L)", "ESR(L) [ohm]", "Q(C)", "ESR(C) [ohm]", "eps_eff",
         "Z0 [ohm]", "loss [dB/m]"],
        result.frequency.f_ghz,
        [
            result.inductor_q,
            result.inductor_esr,
            result.capacitor_q,
            result.capacitor_esr,
            result.eps_eff,
            result.z0_line,
            result.line_loss_db_per_m,
        ],
        title=title,
        float_format="{:.3f}",
    )
