"""Shared fixtures for the experiment drivers.

Experiments E8-E11 all analyze the *selected design*, which is the
output of one (expensive) improved-goal-attainment run.  It is computed
once per process and cached here so the benchmark modules do not repeat
the optimization four times.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.design import DesignFlow, FinalDesign
from repro.devices.reference import ReferencePHEMT, make_reference_device

__all__ = ["reference_device", "design_flow", "selected_design"]


@lru_cache(maxsize=1)
def reference_device() -> ReferencePHEMT:
    """The canonical golden device (fixed seed)."""
    return make_reference_device()


@lru_cache(maxsize=2)
def design_flow(engine: str = "compiled") -> DesignFlow:
    """A design flow bound to the golden device."""
    return DesignFlow(reference_device().small_signal, engine=engine)


@lru_cache(maxsize=4)
def selected_design(profile: str = "full",
                    engine: str = "compiled") -> FinalDesign:
    """The selected design, finalized (snapped + verified).

    ``profile="full"`` runs the improved goal-attainment method at the
    paper's budget; ``profile="fast"`` runs the standard method once —
    a cheaper design of the same topology used by the test suite to
    exercise E8-E11 without the full optimization cost.
    """
    flow = design_flow(engine)
    if profile == "full":
        result = flow.run_improved(seed=11, n_probe=40, n_starts=3,
                                   tighten_rounds=2)
    elif profile == "fast":
        result = flow.run_standard()
    else:
        raise ValueError(f"unknown profile {profile!r}")
    return flow.finalize(result)
