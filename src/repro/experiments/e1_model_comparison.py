"""E1 (Table I): pHEMT model comparison during extraction.

Fits every candidate compact model to the golden device's measured
I-V grid with the full three-step robust identification and reports
the fit quality.  Expected shape: the Angelov model fits the
(tanh-drive) E-pHEMT best, Statz/TOM land mid-pack, and the Curtice
quadratic — whose fixed square law cannot reproduce the gm rollover —
comes last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.report import format_table
from repro.devices.dcmodels import MODEL_REGISTRY
from repro.experiments.common import reference_device
from repro.optimize.extraction import ExtractionResult, extract_dc_model

__all__ = ["E1Result", "run", "format_report"]

_DESIGN_BIAS = (0.52, 3.0)


@dataclass
class E1Result:
    rows: List[dict]
    extractions: Dict[str, ExtractionResult]


def run(seed: int = 0, de_population: int = 30,
        de_iterations: int = 120) -> E1Result:
    """Extract every registered model from the golden I-V dataset."""
    device = reference_device()
    iv = device.iv_dataset()
    vgs, vds = _DESIGN_BIAS
    gm_true = float(device.dc.gm(vgs, vds))

    rows = []
    extractions = {}
    for name, model_class in MODEL_REGISTRY.items():
        result = extract_dc_model(model_class, iv, seed=seed,
                                  de_population=de_population,
                                  de_iterations=de_iterations)
        extractions[name] = result
        gm_fit = float(result.model.gm(vgs, vds))
        rows.append({
            "model": name,
            "n_params": len(model_class.parameter_names()),
            "rms_iv_percent": result.rms_error_percent,
            "gm_error_percent": 100.0 * abs(gm_fit - gm_true) / gm_true,
            "nfev": result.nfev_total,
        })
    rows.sort(key=lambda r: r["rms_iv_percent"])
    return E1Result(rows=rows, extractions=extractions)


def format_report(result: E1Result) -> str:
    return format_table(
        ["model", "params", "RMS I-V [%]", "gm err @bias [%]", "nfev"],
        [
            (r["model"], r["n_params"], r["rms_iv_percent"],
             r["gm_error_percent"], r["nfev"])
            for r in result.rows
        ],
        title="Table I - pHEMT model comparison (three-step extraction)",
    )
