"""E3 (Fig. 1): measured vs fitted output characteristics.

The best model from E1 (Angelov) is extracted from the golden I-V grid
and its output characteristics overlaid on the measurements.  Expected
shape: the fitted curves track the measured family through the knee and
saturation regions at every gate voltage, with residuals at the
measurement-noise level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.report import format_series
from repro.devices.dcmodels import AngelovModel
from repro.experiments.common import reference_device
from repro.optimize.extraction import extract_dc_model

__all__ = ["E3Result", "run", "format_report"]


@dataclass
class E3Result:
    vds: np.ndarray
    curves: List[dict]          # per-Vgs: measured + fitted currents [mA]
    rms_error_percent: float


def run(seed: int = 0, vgs_curves=(0.35, 0.45, 0.55, 0.65),
        de_population: int = 25, de_iterations: int = 80) -> E3Result:
    """Fit the Angelov model and tabulate the Fig. 1 curve family."""
    device = reference_device()
    iv = device.iv_dataset()
    extraction = extract_dc_model(AngelovModel, iv, seed=seed,
                                  de_population=de_population,
                                  de_iterations=de_iterations)
    model = extraction.model
    vds = np.linspace(0.0, 4.0, 21)
    curves = []
    for vgs in vgs_curves:
        # "Measured" curve: the golden device re-sampled on this slice
        # (the dense Fig. 1 sweep the bench would take).
        measured = device.dc.ids(vgs, vds) * 1e3
        fitted = model.ids(vgs, vds) * 1e3
        curves.append({"vgs": vgs, "measured_ma": measured,
                       "fitted_ma": fitted})
    return E3Result(vds=vds, curves=curves,
                    rms_error_percent=extraction.rms_error_percent)


def format_report(result: E3Result) -> str:
    labels = []
    columns = []
    for curve in result.curves:
        labels.append(f"meas Vgs={curve['vgs']:.2f} [mA]")
        columns.append(curve["measured_ma"])
        labels.append(f"fit Vgs={curve['vgs']:.2f} [mA]")
        columns.append(curve["fitted_ma"])
    return format_series(
        "Vds [V]", labels, result.vds, columns,
        title=(
            "Fig. 1 - output characteristics, measured vs Angelov fit "
            f"(RMS {result.rms_error_percent:.2f}%)"
        ),
        float_format="{:.2f}",
    )
