"""E12: the yield-aware robust Pareto front.

NSGA-II optimizes ``(NFworst, -GTworst, -yield)`` — worst-case figures
over a component-tolerance + bias corner set plus the shipping yield —
instead of the nominal paper objectives.  Expected shape: the robust
front sits above-right of the nominal E6 front (worst-case NF is
always >= nominal NF), and the high-yield end trades a few tenths of a
dB of noise figure for designs that survive loose parts.

Every candidate's corner sweep is one batched MNA call; a quadratic
surrogate trained on the run's own evaluation history pre-screens each
generation so only the shortlisted fraction pays for a sweep.  The
corner RNG and surrogate state ride the NSGA-II checkpoint (via
:class:`~repro.optimize.robust.RobustStateSink`), so a SIGKILLed run
resumes bit-for-bit.  The reported front is re-evaluated with the
screen off — published numbers are always swept, never predicted.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.amplifier import AmplifierTemplate
from repro.core.bands import design_grid, stability_grid
from repro.core.objectives import DesignSpec
from repro.core.tolerance import ToleranceSpec
from repro.experiments.common import reference_device
from repro.obs import tracer as _obs_tracer
from repro.obs.runs import recorded_run
from repro.optimize.nsga2 import nsga2
from repro.optimize.pareto import pareto_filter
from repro.optimize.robust import (
    RobustEvaluator,
    RobustStateSink,
    build_robust_problem,
)

__all__ = ["E12Result", "run", "submit", "format_report"]


def submit(service, population_size: int = 24, n_generations: int = 25,
           n_trials: int = 8, seed: int = 0,
           deadline_s: Optional[float] = None, max_retries: int = 1,
           **run_kwargs):
    """Submit the robust front to a job service instead of running inline.

    See :func:`repro.service.api.submit_experiment`; the sweep runs in
    whichever service process leases the job, supervised (deadline,
    retry, crash recovery).
    """
    from repro.service.api import submit_experiment
    kwargs = dict(population_size=population_size,
                  n_generations=n_generations, n_trials=n_trials,
                  seed=seed, **run_kwargs)
    return submit_experiment(service, "e12_robust_front", kwargs,
                             deadline_s=deadline_s,
                             max_retries=max_retries)


@dataclass
class E12Result:
    front_x: np.ndarray          # (m, n_vars) unit decision vectors
    front: np.ndarray            # (m, 3) [NFworst_dB, -GTworst_dB, -yield]
    yield_fraction: np.ndarray   # (m,) swept (never predicted) yield
    best_yield: float
    nf_worst_best_db: float
    n_corner_evals: int
    n_screened: int
    nfev: int

    @property
    def n_points(self) -> int:
        return self.front.shape[0]


def run(population_size: int = 24, n_generations: int = 25,
        n_trials: int = 8, seed: int = 0,
        tolerances: Optional[ToleranceSpec] = None,
        spec: Optional[DesignSpec] = None,
        solver: str = "auto",
        screen_fraction: float = 0.5,
        min_screen_history: int = 24,
        n_band: int = 9, n_guard: int = 12,
        nf_ship_limit_db: float = 0.8,
        gt_ship_limit_db: float = 11.0,
        checkpoint_store=None, checkpoint_every: int = 1,
        resume: bool = True,
        record_to: Optional[str] = None,
        warm_start: Optional[str] = None) -> E12Result:
    """Trace the robust front with NSGA-II over a corner-swept evaluator.

    ``record_to`` names a runs root; generations are then journaled
    with yield / worst-case-NF columns (``repro-obs summary`` reports
    them).  With a *checkpoint_store* the run — including the corner
    RNG and surrogate history — is SIGKILL-recoverable: rerunning with
    the same arguments resumes bit-for-bit.  ``warm_start`` names a
    runs root: NSGA-II's initial population is then seeded from the
    nearest archived run's final population (see
    :func:`repro.obs.analytics.warm_start_population`).
    """
    config = {"experiment": "e12",
              "population_size": int(population_size),
              "n_generations": int(n_generations),
              "n_trials": int(n_trials)}
    recording = (
        recorded_run(record_to, name="e12", config=config,
                     seeds={"seed": int(seed)})
        if record_to is not None else nullcontext()
    )
    with recording as run_dir, _obs_tracer.span(
            "e12.run", population=population_size,
            generations=n_generations):
        journal = run_dir.journal if run_dir is not None else None
        seeds = None
        if warm_start is not None:
            from repro.obs.analytics import warm_start_population
            seeds = warm_start_population(
                config, warm_start, algorithm="nsga2",
                population_size=population_size)
        template = AmplifierTemplate(reference_device().small_signal)
        # The per-corner shipping limits already carry the design
        # margins (every corner must meet NF/GT/stability for the
        # board to count as yield); the nominal constraints here only
        # keep the search inside buildable territory, so they are
        # looser than the nominal-optimization DesignSpec.
        spec = spec or DesignSpec(rl_spec_db=6.0, ripple_spec_db=5.0,
                                  mu_margin=1.02)
        evaluator = RobustEvaluator(
            template,
            tolerances=tolerances,
            n_mc_trials=n_trials,
            seed=seed,
            band_grid=design_grid(n_band),
            guard_grid=stability_grid(n_guard),
            solver=solver,
            nf_ship_limit_db=nf_ship_limit_db,
            gt_ship_limit_db=gt_ship_limit_db,
            screen_fraction=screen_fraction,
            min_screen_history=min_screen_history,
        )
        problem = build_robust_problem(template, spec=spec,
                                       evaluator=evaluator)
        sink = RobustStateSink(evaluator, inner=journal)
        result = nsga2(
            problem,
            population_size=population_size,
            n_generations=n_generations,
            seed=seed,
            initial_population=seeds,
            checkpoint_store=checkpoint_store,
            checkpoint_every=checkpoint_every,
            resume=resume,
            on_generation=sink,
        )

        # Published numbers are swept, never surrogate predictions:
        # re-evaluate the reported front with the screen off.
        front_x = np.atleast_2d(result.x)
        swept = evaluator.evaluate_batch(front_x, screen=False)
        objectives = np.column_stack([
            swept.nf_worst_db,
            -swept.gt_worst_db,
            -swept.yield_fraction,
        ])
        keep = pareto_filter(objectives)
        front_x = front_x[keep]
        objectives = objectives[keep]
        order = np.argsort(objectives[:, 0], kind="stable")
        front_x = front_x[order]
        objectives = objectives[order]

    return E12Result(
        front_x=front_x,
        front=objectives,
        yield_fraction=-objectives[:, 2],
        best_yield=float(np.max(-objectives[:, 2]))
        if objectives.size else 0.0,
        nf_worst_best_db=float(np.min(objectives[:, 0]))
        if objectives.size else float("inf"),
        n_corner_evals=evaluator.n_corner_evals,
        n_screened=evaluator.n_screened,
        nfev=int(result.nfev),
    )


def format_report(result: E12Result) -> str:
    lines = [
        "E12 - yield-aware robust Pareto front "
        f"({result.n_points} points)",
        f"  {'NFworst [dB]':>13} {'GTworst [dB]':>13} {'yield':>7}",
    ]
    for row in result.front:
        lines.append(
            f"  {row[0]:>13.3f} {-row[1]:>13.2f} {-row[2]:>7.2f}")
    lines.append(
        f"best yield {result.best_yield:.2f}, best worst-case NF "
        f"{result.nf_worst_best_db:.3f} dB"
    )
    lines.append(
        f"corner evaluations {result.n_corner_evals} "
        f"({result.n_screened} candidates surrogate-screened, "
        f"{result.nfev} front evaluations)"
    )
    return "\n".join(lines)
