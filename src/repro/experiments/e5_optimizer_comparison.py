"""E5 (Table III): improved goal attainment vs the standard baselines.

All methods attack the identical LNA problem (same evaluator, same
constraints, same goals where applicable).  Expected shape: the
improved method reaches a feasible non-dominated design reliably; the
standard method's outcome depends on its single start and its
units-carrying default weights; the weighted sum — even when feasible —
cannot steer to a balanced NF/GT compromise and tends to pile onto one
objective.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.design import DEFAULT_GOALS, DesignFlow
from repro.core.report import format_table
from repro.experiments.common import reference_device
from repro.obs import tracer as _obs_tracer
from repro.obs.runs import recorded_run

__all__ = ["E5Result", "run", "submit", "format_report"]


def submit(service, seed: int = 0, engine: str = "compiled",
           workers: Optional[int] = None,
           deadline_s: Optional[float] = None, max_retries: int = 1,
           **run_kwargs):
    """Submit this experiment to a job service instead of running inline.

    *service* is a service root path, ``ServiceClient``, or live
    ``JobService``; the returned ``JobRecord``'s ``job_id`` is what you
    poll (``client.wait``) and fetch with.  The driver executes inside
    whichever service process leases the job, with crash recovery and
    retry handled by the supervisor.
    """
    from repro.service.api import submit_experiment
    kwargs = dict(seed=seed, engine=engine, workers=workers, **run_kwargs)
    return submit_experiment(service, "e5_optimizer_comparison", kwargs,
                             deadline_s=deadline_s,
                             max_retries=max_retries)


@dataclass
class E5Result:
    rows: List[dict]
    goals: np.ndarray


def run(seed: int = 0, goals=DEFAULT_GOALS, engine: str = "compiled",
        workers: Optional[int] = None,
        record_to: Optional[str] = None,
        warm_start: Optional[str] = None) -> E5Result:
    """Run the three optimizers on a fresh LNA problem each.

    ``engine`` selects the evaluation path ("compiled" batches the
    improved method's probe stage through one MNA factorization;
    "scalar" forces the original per-candidate circuit build).
    ``workers > 1`` additionally shards each flow's population-level
    evaluations across threads (bit-identical results, see
    :class:`~repro.core.design.DesignFlow`).
    ``record_to`` names a runs root: the experiment is then recorded as
    a run directory (flight-recorder journal + metrics/trace exports,
    see :mod:`repro.obs.runs`) addressable with ``repro-obs``.
    ``warm_start`` names a runs root to consult for the nearest
    archived run's final population (see
    :func:`repro.obs.analytics.warm_start_population`); the improved
    method's probe stage is seeded from it, and the
    ``warmstart_decision`` is journaled when ``record_to`` is active.
    """
    goals = np.asarray(goals, dtype=float)
    rows = []
    config = {"experiment": "e5", "engine": engine,
              "goals": goals.tolist()}

    def record(name, flow, result):
        perf = flow.evaluator.performance(result.x)
        rows.append({
            "method": name,
            "nf_max_db": float(result.objectives[0]),
            "gt_min_db": float(-result.objectives[1]),
            "gamma": float(result.gamma),
            "feasible": result.constraint_violation <= 1e-6,
            "mu_min": perf.mu_min,
            "nfev": int(result.nfev),
        })

    recording = (
        recorded_run(record_to, name="e5", config=config,
                     seeds={"seed": int(seed)})
        if record_to is not None else nullcontext()
    )
    with recording as run_dir, _obs_tracer.span("e5.run"):
        journal = run_dir.journal if run_dir is not None else None
        device = reference_device()
        seeds = None
        if warm_start is not None:
            from repro.obs.analytics import warm_start_population
            seeds = warm_start_population(config, warm_start,
                                          population_size=40)

        with _obs_tracer.span("e5.improved_goal_attainment"), \
                DesignFlow(device.small_signal, engine=engine,
                           workers=workers) as flow:
            record("improved goal attainment", flow,
                   flow.run_improved(goals=goals, seed=seed, n_probe=40,
                                     n_starts=3, tighten_rounds=2,
                                     initial_population=seeds,
                                     on_generation=journal))

        with _obs_tracer.span("e5.standard_goal_attainment"), \
                DesignFlow(device.small_signal, engine=engine,
                           workers=workers) as flow:
            record("standard goal attainment", flow,
                   flow.run_standard(goals=goals))

        with _obs_tracer.span("e5.weighted_sum"), \
                DesignFlow(device.small_signal, engine=engine,
                           workers=workers) as flow:
            record("weighted sum", flow,
                   flow.run_weighted_sum(weights=(1.0, 0.1), seed=seed,
                                         n_starts=4))
    return E5Result(rows=rows, goals=goals)


def format_report(result: E5Result) -> str:
    return format_table(
        ["method", "NFmax [dB]", "GTmin [dB]", "gamma", "feasible",
         "mu_min", "nfev"],
        [
            (r["method"], r["nf_max_db"], r["gt_min_db"], r["gamma"],
             "yes" if r["feasible"] else "NO", r["mu_min"], r["nfev"])
            for r in result.rows
        ],
        title=(
            "Table III - optimizer comparison on the LNA problem "
            f"(goals: NF <= {result.goals[0]:.2f} dB, "
            f"GT >= {-result.goals[1]:.1f} dB)"
        ),
    )
