"""E6 (Fig. 3): the noise-figure / transducer-gain trade-off front.

The improved goal-attainment method is swept along a family of goal
vectors from "quietest" to "loudest"; each solve lands one point of
the NF/GT Pareto front.  The weighted-sum baseline is swept over the
same budget for comparison.  Expected shape: a smooth front falling
from (low NF, modest GT) to (higher NF, high GT); the goal-attainment
points spread along it while the weighted-sum points cluster at the
extremes (the classic convex-combination failure).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.design import DesignFlow
from repro.core.report import format_series
from repro.experiments.common import reference_device
from repro.obs import tracer as _obs_tracer
from repro.obs.runs import recorded_run
from repro.optimize.pareto import hypervolume_2d, pareto_filter

__all__ = ["E6Result", "run", "submit", "format_report"]


def submit(service, n_points: int = 5, seed: int = 0,
           engine: str = "compiled", workers: Optional[int] = None,
           deadline_s: Optional[float] = None, max_retries: int = 1,
           **run_kwargs):
    """Submit the front sweep to a job service instead of running inline.

    See :func:`repro.service.api.submit_experiment`; the sweep runs in
    whichever service process leases the job, supervised (deadline,
    retry, crash recovery).
    """
    from repro.service.api import submit_experiment
    kwargs = dict(n_points=n_points, seed=seed, engine=engine,
                  workers=workers, **run_kwargs)
    return submit_experiment(service, "e6_tradeoff_front", kwargs,
                             deadline_s=deadline_s,
                             max_retries=max_retries)


@dataclass
class E6Result:
    goal_points: np.ndarray      # (n, 2) attained [NFmax, -GTmin]
    wsum_points: np.ndarray      # (m, 2)
    front: np.ndarray            # non-dominated subset of goal_points
    hypervolume_goal: float
    hypervolume_wsum: float
    reference: np.ndarray


def run(n_points: int = 5, seed: int = 0, engine: str = "compiled",
        workers: Optional[int] = None,
        record_to: Optional[str] = None,
        warm_start: Optional[str] = None) -> E6Result:
    """Trace the front with both methods.

    ``workers > 1`` shards every flow's population-level evaluations
    across threads (bit-identical results, see
    :class:`~repro.core.design.DesignFlow`).  ``record_to`` names a
    runs root; the sweep is then journaled as one run (each goal
    point's generations carry distinct algorithm tags).
    ``warm_start`` names a runs root whose nearest archived final
    population seeds every goal point's probe stage (see
    :func:`repro.obs.analytics.warm_start_population`).
    """
    config = {"experiment": "e6", "engine": engine,
              "n_points": int(n_points)}
    recording = (
        recorded_run(record_to, name="e6", config=config,
                     seeds={"seed": int(seed)})
        if record_to is not None else nullcontext()
    )
    with recording as run_dir, _obs_tracer.span("e6.run",
                                                n_points=n_points):
        journal = run_dir.journal if run_dir is not None else None
        device = reference_device()
        seeds = None
        if warm_start is not None:
            from repro.obs.analytics import warm_start_population
            seeds = warm_start_population(config, warm_start,
                                          population_size=32)
        nf_goals = np.linspace(0.50, 0.85, n_points)
        gt_goals = np.linspace(18.0, 12.0, n_points)

        goal_points = []
        for k, (nf_goal, gt_goal) in enumerate(zip(nf_goals, gt_goals)):
            with _obs_tracer.span("e6.goal_point", index=k,
                                  nf_goal=float(nf_goal)), \
                    DesignFlow(device.small_signal, engine=engine,
                               workers=workers) as flow:
                result = flow.run_improved(
                    goals=np.array([nf_goal, -gt_goal]), seed=seed,
                    n_probe=32, n_starts=2, tighten_rounds=1,
                    initial_population=seeds,
                    on_generation=journal,
                )
            if result.constraint_violation <= 1e-6:
                goal_points.append(result.objectives)
        goal_points = np.asarray(goal_points)

        wsum_points = []
        for k, w_nf in enumerate(np.linspace(0.1, 4.0, n_points)):
            with _obs_tracer.span("e6.wsum_point", index=k), \
                    DesignFlow(device.small_signal, engine=engine,
                               workers=workers) as flow:
                result = flow.run_weighted_sum(weights=(w_nf, 0.2),
                                               seed=seed, n_starts=3)
            if result.constraint_violation <= 1e-6:
                wsum_points.append(result.objectives)
        wsum_points = (
            np.asarray(wsum_points) if wsum_points else np.empty((0, 2))
        )

    front = goal_points[pareto_filter(goal_points)]
    front = front[np.argsort(front[:, 0])]
    reference = np.array([1.2, -10.0])  # NF 1.2 dB / GT 10 dB corner
    return E6Result(
        goal_points=goal_points,
        wsum_points=wsum_points,
        front=front,
        hypervolume_goal=hypervolume_2d(goal_points, reference),
        hypervolume_wsum=(
            hypervolume_2d(wsum_points, reference)
            if wsum_points.size else 0.0
        ),
        reference=reference,
    )


def format_report(result: E6Result) -> str:
    lines = [format_series(
        "NFmax [dB]", ["GTmin [dB]"],
        result.front[:, 0], [-result.front[:, 1]],
        title="Fig. 3 - NF/GT trade-off front (improved goal attainment)",
    )]
    lines.append(
        f"hypervolume vs ref (NF {result.reference[0]:.2f} dB, "
        f"GT {-result.reference[1]:.1f} dB): "
        f"goal attainment {result.hypervolume_goal:.3f}, "
        f"weighted sum {result.hypervolume_wsum:.3f}"
    )
    if result.wsum_points.size:
        lines.append("weighted-sum points (NFmax dB, GTmin dB): " + ", ".join(
            f"({p[0]:.3f}, {-p[1]:.2f})" for p in result.wsum_points
        ))
    else:
        lines.append("weighted-sum points: none feasible")
    return "\n".join(lines)
