"""E11 (Table V): third-order intermodulation check of the preamplifier.

Two-tone power-series analysis of the snapped selected design at three
in-band centre frequencies.  Expected shape: IM3 products slope 3 dB/dB
against the fundamental's 1 dB/dB; OIP3 in the tens of dBm — ample
margin for a receiver front end whose largest in-band interferers are
far below the tone powers swept here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.intermod import TwoToneResult, two_tone_analysis
from repro.core.report import format_series, format_table
from repro.experiments.common import design_flow, selected_design

__all__ = ["E11Result", "run", "format_report"]


@dataclass
class E11Result:
    results: List[TwoToneResult]


def run(frequencies=(1.2e9, 1.4e9, 1.6e9),
        profile: str = "full") -> E11Result:
    """Two-tone analysis at several in-band centre frequencies."""
    design = selected_design(profile)
    template = design_flow().template
    results = [
        two_tone_analysis(template, design.snapped, f_center=f)
        for f in frequencies
    ]
    return E11Result(results=results)


def format_report(result: E11Result) -> str:
    table = format_table(
        ["f0 [GHz]", "GT [dB]", "IIP3 [dBm]", "OIP3 [dBm]",
         "IM3 slope [dB/dB]"],
        [
            (r.f_center / 1e9, r.gt_db, r.iip3_dbm, r.oip3_dbm,
             r.im3_slope())
            for r in result.results
        ],
        title="Table V - two-tone third-order intermodulation",
        float_format="{:.2f}",
    )
    sweep = result.results[len(result.results) // 2]
    sweep_table = format_series(
        "Pin/tone [dBm]",
        ["Pout fund [dBm]", "Pout IM3 [dBm]"],
        sweep.pin_dbm,
        [sweep.pout_fund_dbm, sweep.pout_im3_dbm],
        title=f"two-tone sweep at {sweep.f_center / 1e9:.2f} GHz",
        float_format="{:.1f}",
    )
    return table + "\n\n" + sweep_table
