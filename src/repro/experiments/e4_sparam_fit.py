"""E4 (Fig. 2): measured vs modelled S-parameters at the design bias.

The seven intrinsic small-signal elements are extracted from the
VNA-corrupted S-parameter sweep (parasitic shell known from fixture
calibration) and the modelled S-parameters overlaid on the
measurement.  Expected shape: all four S-parameters track to within the
instrument ripple across 0.5-3 GHz, and the recovered gm/Cgs land close
to the golden small-signal values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.report import format_series
from repro.devices.datasets import BiasPoint
from repro.devices.smallsignal import embed_intrinsic
from repro.experiments.common import reference_device
from repro.optimize.extraction import (
    SmallSignalExtractionResult,
    extract_small_signal,
)
from repro.rf.frequency import FrequencyGrid

__all__ = ["E4Result", "run", "format_report"]


@dataclass
class E4Result:
    frequency: FrequencyGrid
    s_measured: np.ndarray
    s_modelled: np.ndarray
    extraction: SmallSignalExtractionResult
    gm_true: float
    cgs_true: float


def run(seed: int = 0, bias: BiasPoint = BiasPoint(0.52, 3.0),
        n_points: int = 21, de_population: int = 30,
        de_iterations: int = 120) -> E4Result:
    """Extract the intrinsic elements and rebuild the S-parameters."""
    device = reference_device()
    frequency = FrequencyGrid.linear(0.5e9, 3.0e9, n_points)
    record = device.sparam_record(frequency, bias)
    extraction = extract_small_signal(
        record, device.small_signal.extrinsics, seed=seed,
        de_population=de_population, de_iterations=de_iterations,
    )
    modelled = embed_intrinsic(
        extraction.intrinsic, device.small_signal.extrinsics, frequency,
        z0=record.network.z0,
    )
    truth = device.small_signal.intrinsic_at(bias.vgs, bias.vds)
    return E4Result(
        frequency=frequency,
        s_measured=record.network.s,
        s_modelled=modelled.s,
        extraction=extraction,
        gm_true=truth.gm,
        cgs_true=truth.cgs,
    )


def format_report(result: E4Result) -> str:
    def mag_db(s, i, j):
        return 20.0 * np.log10(np.abs(s[:, i, j]))

    intrinsic = result.extraction.intrinsic
    header = (
        "Fig. 2 - S-parameters, measured vs extracted model "
        f"(RMS {result.extraction.rms_error:.4f}; "
        f"gm {intrinsic.gm * 1e3:.1f} mS vs true "
        f"{result.gm_true * 1e3:.1f} mS; "
        f"Cgs {intrinsic.cgs * 1e12:.2f} pF vs true "
        f"{result.cgs_true * 1e12:.2f} pF)"
    )
    return format_series(
        "f [GHz]",
        ["S11 meas [dB]", "S11 model [dB]", "S21 meas [dB]",
         "S21 model [dB]", "S22 meas [dB]", "S22 model [dB]"],
        result.frequency.f_ghz,
        [
            mag_db(result.s_measured, 0, 0),
            mag_db(result.s_modelled, 0, 0),
            mag_db(result.s_measured, 1, 0),
            mag_db(result.s_modelled, 1, 0),
            mag_db(result.s_measured, 1, 1),
            mag_db(result.s_modelled, 1, 1),
        ],
        title=header,
        float_format="{:.2f}",
    )
