"""Experiment drivers, one per reconstructed paper table/figure.

Each module exposes ``run(...) -> <E*Result>`` and
``format_report(result) -> str``.  ``REGISTRY`` maps experiment ids to
modules for the benchmark harness and the examples.
"""

from repro.experiments import (
    e1_model_comparison,
    e2_extraction_robustness,
    e3_iv_curves,
    e4_sparam_fit,
    e5_optimizer_comparison,
    e6_tradeoff_front,
    e7_passive_dispersion,
    e8_selected_design,
    e9_measured_sparams,
    e10_measured_nf,
    e11_intermodulation,
    e12_robust_front,
)

REGISTRY = {
    "E1": e1_model_comparison,
    "E2": e2_extraction_robustness,
    "E3": e3_iv_curves,
    "E4": e4_sparam_fit,
    "E5": e5_optimizer_comparison,
    "E6": e6_tradeoff_front,
    "E7": e7_passive_dispersion,
    "E8": e8_selected_design,
    "E9": e9_measured_sparams,
    "E10": e10_measured_nf,
    "E11": e11_intermodulation,
    "E12": e12_robust_front,
}

__all__ = [
    "REGISTRY",
    "e1_model_comparison",
    "e2_extraction_robustness",
    "e3_iv_curves",
    "e4_sparam_fit",
    "e5_optimizer_comparison",
    "e6_tradeoff_front",
    "e7_passive_dispersion",
    "e8_selected_design",
    "e9_measured_sparams",
    "e10_measured_nf",
    "e11_intermodulation",
    "e12_robust_front",
]
