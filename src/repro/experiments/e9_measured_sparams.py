"""E9 (Fig. 5): designed vs "measured" S-parameters of the preamplifier.

The snapped selected design is pushed through the measurement
simulator (VNA-class corruption; see DESIGN.md for the substitution).
Expected shape: the measured S11/S21/S22 traces ride on the designed
curves with sub-dB deviations; gain stays above ~14 dB and both return
losses better than ~9 dB across 1.1-1.7 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluation import MeasuredPerformance, simulate_measurement
from repro.core.report import format_series
from repro.experiments.common import design_flow, selected_design
from repro.rf.frequency import FrequencyGrid

__all__ = ["E9Result", "run", "format_report"]


@dataclass
class E9Result:
    measurement: MeasuredPerformance
    worst_s21_deviation_db: float


def run(n_points: int = 41, profile: str = "full") -> E9Result:
    """Measure the snapped selected design on the simulated bench."""
    design = selected_design(profile)
    template = design_flow().template
    frequency = FrequencyGrid.linear(1.0e9, 1.8e9, n_points)
    measurement = simulate_measurement(template, design.snapped, frequency)
    return E9Result(
        measurement=measurement,
        worst_s21_deviation_db=measurement.worst_deviation_db(2, 1),
    )


def format_report(result: E9Result) -> str:
    m = result.measurement
    title = (
        "Fig. 5 - preamplifier S-parameters, designed vs measured "
        f"(worst S21 deviation {result.worst_s21_deviation_db:.3f} dB)"
    )
    return format_series(
        "f [GHz]",
        ["S11 des [dB]", "S11 meas [dB]", "S21 des [dB]",
         "S21 meas [dB]", "S22 des [dB]", "S22 meas [dB]"],
        m.frequency.f_ghz,
        [
            m.sparam_db(1, 1, measured=False),
            m.sparam_db(1, 1, measured=True),
            m.sparam_db(2, 1, measured=False),
            m.sparam_db(2, 1, measured=True),
            m.sparam_db(2, 2, measured=False),
            m.sparam_db(2, 2, measured=True),
        ],
        title=title,
        float_format="{:.2f}",
    )
