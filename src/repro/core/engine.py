"""Compiled LNA evaluation engine: netlist stamps lowered to tensors.

The scalar path (:meth:`AmplifierTemplate.evaluate`) rebuilds the whole
:class:`~repro.analysis.netlist.Circuit` in Python for every candidate
and re-stamps every element into the admittance tensor — fine for one
design, ruinous for population-based optimization where thousands of
candidates share one topology.  :class:`CompiledTemplate` lowers the
netlist **once** into a *stamp plan*:

* a constant base tensor holding every design-invariant element
  (access lines, bias resistor, decoupling, device parasitic shell),
  assembled one time by the ordinary scalar stamping code;
* a short list of :class:`StampSlot` records — precomputed node-index
  arrays for the handful of elements whose value depends on the design
  vector (matching passives, stabilization branches, and the intrinsic
  bias-dependent device elements);
* the matching noise-source plan (constant sources pre-evaluated,
  variable PSDs computed per candidate).

Per-candidate assembly is then pure vectorized NumPy — broadcast the
base tensor to ``(B, F, n, n)``, add ``signs * value`` at the
precomputed indices — and one call to
:func:`repro.analysis.compiled.solve_tensor_batch` solves the design
grid *and* the stability guard grid for all candidates at once (the two
grids are fused along the frequency axis; rows are independent in MNA,
so the fused solve is exact).

Element values are computed by the *same* component models as the
scalar path (:mod:`repro.passives.rlc` factories, the device's DC and
capacitance models), evaluated on ``(B, 1)`` value arrays, so the
numbers agree with the scalar path to floating-point roundoff.  Because
the constant/variable split is an assumption about
:meth:`AmplifierTemplate.build_circuit`, compilation **verifies** it:
the compiled engine is checked against the scalar path at two probe
design points and :class:`CompileError` is raised on any mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.acsolver import (
    _assemble_tensor,
    _collect_noise_sources,
    _injection,
)
from repro.analysis.compiled import (
    BatchNoiseSource,
    solve_tensor_batch,
    solve_tensor_batch_isolated,
)
from repro.analysis.netlist import (
    Capacitor,
    NoiseCurrent,
    Resistor,
    Vccs,
    YBlock,
)
from repro.core.amplifier import (
    AmplifierPerformance,
    AmplifierTemplate,
    DesignVariables,
)
from repro.core.bands import design_grid, stability_grid
from repro.guards import contracts as _contracts
from repro.guards import modes as _guard_modes
from repro.obs import journal as _obs_journal
from repro.obs import metrics as _obs_metrics
from repro.obs import tracer as _obs_tracer
from repro.optimize.faults import (
    CATEGORY_BAD_BIAS,
    CATEGORY_CONTRACT,
    CATEGORY_NON_FINITE,
    CATEGORY_SINGULAR,
    EvaluationFailure,
    FAILURE_EXCEPTIONS,
    classify_exception,
)
from repro.passives.rlc import (
    _two_terminal_stack,
    coilcraft_style_inductor,
    murata_style_capacitor,
)
from repro.rf import conversions as cv
from repro.rf.frequency import FrequencyGrid
from repro.rf.noise import ca_from_cy
from repro.rf.stability import mu_source
from repro.util.constants import BOLTZMANN, T_AMBIENT

__all__ = [
    "CompileError",
    "CompiledTemplate",
    "CompiledMetricObjective",
    "BatchPerformance",
    "StampSlot",
    "VARIABLE_ELEMENT_NAMES",
]

_2KT0 = 2.0 * BOLTZMANN * 290.0

#: Elements of :meth:`AmplifierTemplate.build_circuit` whose stamped
#: value depends on the design vector.  Everything else goes into the
#: constant base tensor; compilation verifies this classification.
VARIABLE_ELEMENT_NAMES = frozenset({
    "Cin", "Lin", "Ldeg", "Lchoke", "Cout", "Csh",   # matching passives
    "Rstab", "Rsh",                                  # stabilization
    "Q_Cgs", "Q_Cgd", "Q_gm", "Q_Gds", "Q_ind",      # bias-dependent
})


def _performance_is_finite(perf: AmplifierPerformance) -> bool:
    """Whether every figure of merit of a scalar evaluation is finite."""
    return bool(
        np.all(np.isfinite(perf.nf_db))
        and np.all(np.isfinite(perf.gt_db))
        and np.all(np.isfinite(perf.s11_db))
        and np.all(np.isfinite(perf.s22_db))
        and np.isfinite(perf.mu_min)
        and np.isfinite(perf.ids)
    )


class CompileError(RuntimeError):
    """The stamp plan disagrees with the scalar path.

    Raised when :meth:`AmplifierTemplate.build_circuit` produced a
    topology the compiled constant/variable split cannot represent —
    usually because an element was added or renamed without updating
    ``VARIABLE_ELEMENT_NAMES``.
    """


@dataclass(frozen=True)
class StampSlot:
    """Precomputed index arrays of one design-dependent element.

    ``y_batch[..., rows, cols] += signs * value[..., None]`` applies the
    slot; the (row, col) pairs within one slot are unique, so the fancy
    indexing accumulates correctly.
    """

    name: str
    rows: np.ndarray   # (k,) int
    cols: np.ndarray   # (k,) int
    signs: np.ndarray  # (k,) float


@dataclass
class BatchPerformance:
    """Figures of merit of a batch of evaluated designs (arrays over B)."""

    frequency: FrequencyGrid
    nf_db: np.ndarray          # (B, F)
    gt_db: np.ndarray          # (B, F)
    s11_db: np.ndarray         # (B, F)
    s22_db: np.ndarray         # (B, F)
    mu_min: np.ndarray         # (B,)
    ids: np.ndarray            # (B,)
    nf_max_db: np.ndarray      # (B,)
    gt_min_db: np.ndarray      # (B,)
    gt_ripple_db: np.ndarray   # (B,)

    def __len__(self) -> int:
        return self.nf_db.shape[0]

    def candidate(self, index: int) -> AmplifierPerformance:
        """The scalar :class:`AmplifierPerformance` of one batch member."""
        return AmplifierPerformance(
            frequency=self.frequency,
            nf_db=self.nf_db[index],
            gt_db=self.gt_db[index],
            s11_db=self.s11_db[index],
            s22_db=self.s22_db[index],
            mu_min=float(self.mu_min[index]),
            ids=float(self.ids[index]),
            nf_max_db=float(self.nf_max_db[index]),
            gt_min_db=float(self.gt_min_db[index]),
            gt_ripple_db=float(self.gt_ripple_db[index]),
        )


class CompiledTemplate:
    """An :class:`AmplifierTemplate` lowered to a batched stamp plan.

    Parameters
    ----------
    template:
        The amplifier template to compile.
    band_grid, guard_grid:
        Objective and stability-guard frequency grids (defaults match
        :class:`repro.core.objectives.LnaEvaluator`).
    verify:
        Check the compiled engine against the scalar path at two probe
        design points (recommended; a few scalar solves at compile
        time).
    """

    def __init__(self, template: AmplifierTemplate,
                 band_grid: Optional[FrequencyGrid] = None,
                 guard_grid: Optional[FrequencyGrid] = None,
                 verify: bool = True):
        self.template = template
        self.band_grid = band_grid or design_grid(17)
        self.guard_grid = guard_grid or stability_grid(24)
        self._n_band = len(self.band_grid)
        # Fused frequency axis: objective band first, guard band after.
        # MNA rows are independent per frequency, so one solve of the
        # fused axis is exact for both grids.
        self._f_fused = np.concatenate([self.band_grid.f_hz,
                                        self.guard_grid.f_hz])
        self._compile()
        if verify:
            self._verify()

    # -- pickling -----------------------------------------------------------
    # A compiled engine is mostly derived state (stamp tensors, index
    # arrays, noise injections), all reproducible from the constructor
    # inputs.  Pickling therefore ships only (template, grids) and the
    # receiver recompiles — which is exactly what a spawned evaluator
    # worker wants: the compile runs once per worker, locally, instead
    # of megabytes of tensors crossing the pipe.  Verification is
    # skipped on unpickle: the sender's compile already verified this
    # same template, and the stamp plan is deterministic.
    def __getstate__(self):
        return {
            "template": self.template,
            "band_grid": self.band_grid,
            "guard_grid": self.guard_grid,
        }

    def __setstate__(self, state):
        self.__init__(state["template"], state["band_grid"],
                      state["guard_grid"], verify=False)

    # -- compilation --------------------------------------------------------
    def _compile(self):
        proto = self.template.build_circuit(DesignVariables())
        names = {element.name for element in proto.elements}
        missing = VARIABLE_ELEMENT_NAMES - names
        if missing:
            raise CompileError(
                f"template netlist lacks expected design-dependent "
                f"elements: {sorted(missing)}"
            )
        self._n_nodes = len(proto.node_names)
        self._port_rows = np.array(
            [proto.node_index(p.node) for p in proto.ports], dtype=int
        )
        z0_values = {p.z0 for p in proto.ports}
        if len(z0_values) != 1:
            raise CompileError("ports must share one reference impedance")
        self._z0 = proto.ports[0].z0
        self._port_names = [p.name for p in proto.ports]

        constant = [e for e in proto.elements
                    if e.name not in VARIABLE_ELEMENT_NAMES]
        variable = {e.name: e for e in proto.elements
                    if e.name in VARIABLE_ELEMENT_NAMES}

        # Constant part: stamped once by the ordinary scalar assembler.
        self._base = _assemble_tensor(proto, self._f_fused, self._n_nodes,
                                      elements=constant)
        self._const_noise = [
            BatchNoiseSource(np.stack(src.columns, axis=1), src.psd_array)
            for src in _collect_noise_sources(proto, self._f_fused,
                                              elements=constant)
        ]

        # Variable part: precompute index arrays and noise injections.
        self._slots: Dict[str, StampSlot] = {}
        self._scalar_noise: List[tuple] = []   # (name, columns (n, 1))
        self._block_noise: List[tuple] = []    # (name, columns (n, 2))
        for name, element in variable.items():
            if isinstance(element, Vccs):
                self._slots[name] = self._vccs_slot(proto, element)
                continue
            if isinstance(element, YBlock):
                node_a, node_b = element.nodes
            else:
                node_a, node_b = element.node_a, element.node_b
            if isinstance(element, NoiseCurrent):
                self._scalar_noise.append((name, _injection(
                    proto, node_a, node_b, self._n_nodes
                )[:, None]))
                continue
            self._slots[name] = self._two_terminal_slot(proto, name,
                                                        node_a, node_b)
            if isinstance(element, Resistor):
                if element.temperature > 0:
                    self._scalar_noise.append((name, _injection(
                        proto, node_a, node_b, self._n_nodes
                    )[:, None]))
            elif isinstance(element, YBlock):
                if element.cy_function is not None:
                    columns = np.zeros((self._n_nodes, 2), dtype=complex)
                    for k, node in enumerate(element.nodes):
                        idx = proto.node_index(node)
                        if idx >= 0:
                            columns[idx, k] = 1.0
                    self._block_noise.append((name, columns))

    @staticmethod
    def _two_terminal_slot(circuit, name, node_a, node_b) -> StampSlot:
        a = circuit.node_index(node_a)
        b = circuit.node_index(node_b)
        entries = []
        if a >= 0:
            entries.append((a, a, +1.0))
        if b >= 0:
            entries.append((b, b, +1.0))
        if a >= 0 and b >= 0:
            entries.append((a, b, -1.0))
            entries.append((b, a, -1.0))
        if not entries:
            raise CompileError(f"element {name!r} connects ground to ground")
        rows, cols, signs = (np.array(v) for v in zip(*entries))
        return StampSlot(name, rows.astype(int), cols.astype(int),
                         signs.astype(float))

    @staticmethod
    def _vccs_slot(circuit, element: Vccs) -> StampSlot:
        op = circuit.node_index(element.out_p)
        on = circuit.node_index(element.out_n)
        cp = circuit.node_index(element.ctrl_p)
        cn = circuit.node_index(element.ctrl_n)
        entries = []
        for out_idx, sign in ((op, +1.0), (on, -1.0)):
            if out_idx < 0:
                continue
            if cp >= 0:
                entries.append((out_idx, cp, sign))
            if cn >= 0:
                entries.append((out_idx, cn, -sign))
        if not entries:
            raise CompileError(
                f"vccs {element.name!r} has no stamped entries"
            )
        rows, cols, signs = (np.array(v) for v in zip(*entries))
        return StampSlot(element.name, rows.astype(int), cols.astype(int),
                         signs.astype(float))

    # -- per-candidate values ----------------------------------------------
    def _candidate_values(self, x_physical: np.ndarray,
                          bad_bias: str = "raise"):
        """Vectorized element values for a (B, n_vars) design matrix.

        Returns ``(admittances, scalar_psds, block_psds, ids, bad_mask)``
        where admittances maps slot name -> (B, F) complex, scalar_psds
        maps noise-source name -> (B, 1) or (B, F), block_psds maps
        YBlock name -> (B, F, 2, 2), and bad_mask is a (B,) bool array
        flagging candidates whose bias point is unusable (``gds <= 0``
        or non-finite small-signal parameters).

        ``bad_bias="raise"`` (the default, used by :meth:`solve_batch`)
        raises ``ValueError`` when any candidate is flagged;
        ``bad_bias="mask"`` substitutes a benign placeholder bias for
        the flagged rows — keeping the tensor solvable for the healthy
        rows — and leaves the caller to overwrite them with penalties.
        """
        index = {name: k for k, name in enumerate(DesignVariables.NAMES)}
        col = lambda name: x_physical[:, index[name]]  # noqa: E731
        f = self._f_fused
        omega = 2.0 * np.pi * f
        device = self.template.device

        admittances: Dict[str, np.ndarray] = {}
        scalar_psds: Dict[str, np.ndarray] = {}
        block_psds: Dict[str, np.ndarray] = {}

        # Matching passives: the same catalogue models as build_circuit,
        # evaluated on (B, 1) value columns so each row is bitwise the
        # scalar computation.
        passives = {
            "Cin": murata_style_capacitor(col("c_in")[:, None], name="Cin"),
            "Cout": murata_style_capacitor(col("c_out")[:, None],
                                           name="Cout"),
            "Csh": murata_style_capacitor(col("c_sh")[:, None], name="Csh"),
            "Lin": coilcraft_style_inductor(col("l_in")[:, None],
                                            name="Lin"),
            "Ldeg": coilcraft_style_inductor(col("l_deg")[:, None],
                                             name="Ldeg"),
            "Lchoke": coilcraft_style_inductor(col("l_choke")[:, None],
                                               name="Lchoke"),
        }
        for name, component in passives.items():
            y = np.asarray(component.admittance(f), dtype=complex)
            admittances[name] = y
            g = np.real(y)
            block_psds[name] = _two_terminal_stack(
                (2.0 * BOLTZMANN * T_AMBIENT * g).astype(complex)
            )

        # Stabilization resistors: ideal (the scalar path uses
        # circuit.resistor), admittance flat over frequency.
        for name, var in (("Rstab", "r_stab"), ("Rsh", "r_sh")):
            r = col(var)[:, None]
            admittances[name] = (1.0 / r).astype(complex)
            scalar_psds[name] = 2.0 * BOLTZMANN * T_AMBIENT / r

        # Bias-dependent intrinsic device elements, from the same DC and
        # capacitance models the scalar path calls in intrinsic_at().
        vgs = col("vgs")
        vds = col("vds")
        dc = device.dc_model
        caps = device.capacitances
        gm = np.asarray(dc.gm(vgs, vds), dtype=float)
        gds = np.asarray(dc.gds(vgs, vds), dtype=float)
        ids = np.asarray(dc.ids(vgs, vds), dtype=float)
        bad_mask = (
            ~np.isfinite(gm) | ~np.isfinite(gds) | ~np.isfinite(ids)
            | (np.nan_to_num(gds, nan=-1.0) <= 0)
        )
        if np.any(bad_mask):
            if bad_bias != "mask":
                bad = np.flatnonzero(bad_mask)
                raise ValueError(
                    f"candidates {bad.tolist()} bias the device outside "
                    "the saturated forward region (gds <= 0)"
                )
            # Placeholder bias keeps the stamped tensor well-defined for
            # the healthy rows; the flagged rows are overwritten with
            # penalty figures by performance_batch_isolated.
            gm = np.where(bad_mask, 0.0, gm)
            gds = np.where(bad_mask, 1e-3, gds)
            ids = np.where(bad_mask, 0.0, ids)
        cgs = np.asarray(caps.cgs(vgs), dtype=float)
        cgd = np.asarray(caps.cgd(vds), dtype=float)

        admittances["Q_Cgs"] = 1j * omega * cgs[:, None]
        admittances["Q_Cgd"] = 1j * omega * cgd[:, None]
        # The scalar path stamps 1 / resistance with resistance set to
        # 1 / gds; replicate the double reciprocal for exactness.
        admittances["Q_Gds"] = (1.0 / (1.0 / gds[:, None])).astype(complex)
        admittances["Q_gm"] = gm[:, None] * np.exp(
            -1j * omega * caps.tau
        )[None, :]
        td = device.td0 + device.td_slope * ids
        scalar_psds["Q_ind"] = (2.0 * BOLTZMANN * td * gds)[:, None]
        return admittances, scalar_psds, block_psds, ids, bad_mask

    # -- solving ------------------------------------------------------------
    def solve_batch(self, x_physical: np.ndarray):
        """Fused-grid batch solve for (B, n_vars) physical design vectors.

        Returns ``(s, cy_band, ids)``: S-parameters ``(B, F_fused, 2, 2)``
        over the fused band+guard axis, the port noise correlation on
        the design band only (``(B, n_band, 2, 2)`` — the guard grid
        feeds the stability margin, which needs no noise), and the
        drain bias currents ``(B,)``.
        """
        x_physical = np.atleast_2d(np.asarray(x_physical, dtype=float))
        values = self._candidate_values(x_physical)
        ids = values[3]
        y_batch, noise_sources = self._stamped_batch(x_physical.shape[0],
                                                     *values[:3])
        n_band = self._n_band

        # Two batched solves sharing the stamped tensor: the band slice
        # carries the signal *and* noise right-hand sides, the guard
        # slice only the two port columns (its noise response is never
        # consumed).  Per-frequency independence makes the split exact.
        s_band, cy_band, _ = solve_tensor_batch(
            y_batch[:, :n_band], self._port_rows, self._z0, noise_sources
        )
        s_guard, _, _ = solve_tensor_batch(
            y_batch[:, n_band:], self._port_rows, self._z0
        )
        s = np.concatenate([s_band, s_guard], axis=1)
        return s, cy_band, ids

    def _stamped_batch(self, n_batch: int, admittances, scalar_psds,
                       block_psds):
        """Stamp the (B, F, n, n) tensor and band noise-source list."""
        y_batch = np.broadcast_to(
            self._base, (n_batch,) + self._base.shape
        ).copy()
        for name, slot in self._slots.items():
            y_batch[..., slot.rows, slot.cols] += (
                slot.signs * admittances[name][..., None]
            )
        n_band = self._n_band
        noise_sources = [
            BatchNoiseSource(src.columns, src.psd[:n_band])
            for src in self._const_noise
        ]
        for name, columns in self._scalar_noise:
            noise_sources.append(BatchNoiseSource(columns, scalar_psds[name]))
        for name, columns in self._block_noise:
            noise_sources.append(
                BatchNoiseSource(columns, block_psds[name][:, :n_band])
            )
        return y_batch, noise_sources

    @staticmethod
    def _to_physical(unit_x: np.ndarray) -> np.ndarray:
        lower, upper = DesignVariables.LOWER, DesignVariables.UPPER
        return lower + np.clip(unit_x, 0.0, 1.0) * (upper - lower)

    def performance_batch(self, unit_x: np.ndarray) -> BatchPerformance:
        """Figures of merit for a (B, n_vars) batch of unit-box vectors.

        Matches ``[template.evaluate(DesignVariables.from_unit(u), band,
        guard) for u in unit_x]`` to ~1e-10.
        """
        unit_x = np.atleast_2d(np.asarray(unit_x, dtype=float))
        with _obs_tracer.span("engine.performance_batch",
                              batch=unit_x.shape[0]):
            s, cy_band, ids = self.solve_batch(self._to_physical(unit_x))
            figures = self._figures(s, cy_band, ids)
        _obs_metrics.inc("engine.batch_solves")
        _obs_metrics.inc("engine.candidates", unit_x.shape[0])
        if _guard_modes.enabled():
            # Physical-sanity contract on the reported figures.  The
            # check is read-only: strict mode raises, warn mode counts
            # and warns — the returned values are bit-for-bit those of
            # the unguarded path either way.
            bad = _contracts.noise_figure_violation_mask(figures.nf_db)
            if np.any(bad):
                rows = np.flatnonzero(bad)
                _contracts.report_violation(
                    "performance",
                    f"candidates {rows.tolist()} report NF < 0 dB "
                    f"(min {float(np.min(figures.nf_db[rows])):.3e} dB): "
                    f"negative noise power is unphysical",
                )
        return figures

    def _figures(self, s: np.ndarray, cy_band: np.ndarray,
                 ids: np.ndarray) -> BatchPerformance:
        """Figures of merit from solved S-parameters and noise data."""
        n_band = self._n_band
        s_band = s[:, :n_band]
        s_guard = s[:, n_band:]

        # Noise figure exactly as NoisyTwoPort.noise_factor with the
        # port reference source: ca from cy via the network ABCD.
        abcd = cv.s_to_abcd(s_band, self._z0)
        ca = ca_from_cy(cy_band, abcd)
        zs = 1.0 / (1.0 / self._z0)
        e_total = (
            ca[..., 0, 0]
            + np.conjugate(zs) * ca[..., 0, 1]
            + zs * ca[..., 1, 0]
            + np.abs(zs) ** 2 * ca[..., 1, 1]
        ).real
        noise_factor = 1.0 + e_total / (_2KT0 * np.real(zs))
        nf_db = 10.0 * np.log10(noise_factor)

        gt_db = 20.0 * np.log10(
            np.maximum(np.abs(s_band[..., 1, 0]), 1e-12)
        )
        s11_db = 20.0 * np.log10(
            np.maximum(np.abs(s_band[..., 0, 0]), 1e-12)
        )
        s22_db = 20.0 * np.log10(
            np.maximum(np.abs(s_band[..., 1, 1]), 1e-12)
        )
        mu_min = np.min(mu_source(s_guard), axis=1)
        return BatchPerformance(
            frequency=self.band_grid,
            nf_db=nf_db,
            gt_db=gt_db,
            s11_db=s11_db,
            s22_db=s22_db,
            mu_min=mu_min,
            ids=ids,
            nf_max_db=np.max(nf_db, axis=1),
            gt_min_db=np.min(gt_db, axis=1),
            gt_ripple_db=np.max(gt_db, axis=1) - np.min(gt_db, axis=1),
        )

    def performance(self, unit_x: np.ndarray) -> AmplifierPerformance:
        """Single-candidate convenience wrapper over the batch path."""
        return self.performance_batch(np.atleast_2d(unit_x)).candidate(0)

    # -- fault-isolated solving ---------------------------------------------
    def performance_batch_isolated(self, unit_x: np.ndarray):
        """Like :meth:`performance_batch`, but no candidate can sink it.

        Degradation chain per candidate: the fused compiled solve first;
        rows that make it fail (singular tensors, non-finite figures,
        unusable bias) are retried one at a time, then through the
        scalar :meth:`AmplifierTemplate.evaluate` path, and finally —
        if nothing can evaluate them — filled with the finite
        worst-case figures of :meth:`AmplifierPerformance.penalty`.
        Healthy rows are numerically identical to the plain batch path.

        Returns ``(batch, failures, n_fallbacks)``: the
        :class:`BatchPerformance`, a per-candidate list of
        ``Optional[EvaluationFailure]`` (``None`` for healthy rows,
        including rows recovered by the scalar fallback), and the count
        of rows the scalar fallback recovered.
        """
        unit_x = np.atleast_2d(np.asarray(unit_x, dtype=float))
        with _obs_tracer.span("engine.performance_batch_isolated",
                              batch=unit_x.shape[0]):
            batch, failures, n_fallbacks = self._batch_isolated(unit_x)
        _obs_metrics.inc("engine.batch_solves")
        _obs_metrics.inc("engine.candidates", unit_x.shape[0])
        if n_fallbacks:
            _obs_metrics.inc("engine.scalar_fallbacks", n_fallbacks)
        n_penalties = sum(1 for f in failures if f is not None)
        if n_penalties:
            _obs_metrics.inc("engine.penalty_rows", n_penalties)
        if n_fallbacks or n_penalties:
            _obs_journal.emit("engine_degraded",
                              batch=int(unit_x.shape[0]),
                              scalar_fallbacks=int(n_fallbacks),
                              penalty_rows=int(n_penalties))
        return batch, failures, n_fallbacks

    def _batch_isolated(self, unit_x: np.ndarray):
        x_physical = self._to_physical(unit_x)
        n_batch = x_physical.shape[0]
        failures: List[Optional[EvaluationFailure]] = [None] * n_batch

        (admittances, scalar_psds, block_psds, ids,
         bad_bias) = self._candidate_values(x_physical, bad_bias="mask")
        y_batch, noise_sources = self._stamped_batch(
            n_batch, admittances, scalar_psds, block_psds
        )
        n_band = self._n_band
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            s_band, cy_band, _, failed_band = solve_tensor_batch_isolated(
                y_batch[:, :n_band], self._port_rows, self._z0,
                noise_sources,
            )
            s_guard, _, _, failed_guard = solve_tensor_batch_isolated(
                y_batch[:, n_band:], self._port_rows, self._z0
            )
            s = np.concatenate([s_band, s_guard], axis=1)
            batch = self._figures(s, cy_band, ids)

        solver_failed = failed_band | failed_guard
        finite = (
            np.isfinite(batch.nf_db).all(axis=1)
            & np.isfinite(batch.gt_db).all(axis=1)
            & np.isfinite(batch.s11_db).all(axis=1)
            & np.isfinite(batch.s22_db).all(axis=1)
            & np.isfinite(batch.mu_min)
            & np.isfinite(batch.ids)
        )

        for i in np.flatnonzero(bad_bias):
            failures[i] = EvaluationFailure(
                CATEGORY_BAD_BIAS,
                "device biased outside the saturated forward region "
                "(gds <= 0)",
                x=unit_x[i].copy(),
            )
            self._fill_row(batch, i, AmplifierPerformance.penalty(
                self.band_grid, failures[i]))

        n_fallbacks = 0
        for i in np.flatnonzero((solver_failed | ~finite) & ~bad_bias):
            category = (CATEGORY_SINGULAR if solver_failed[i]
                        else CATEGORY_NON_FINITE)
            with np.errstate(divide="ignore", invalid="ignore"):
                try:
                    scalar = self.template.evaluate(
                        DesignVariables.from_unit(unit_x[i]),
                        self.band_grid, self.guard_grid,
                    )
                except FAILURE_EXCEPTIONS as exc:
                    failures[i] = EvaluationFailure(
                        classify_exception(exc), str(exc),
                        x=unit_x[i].copy(),
                    )
                    self._fill_row(batch, i, AmplifierPerformance.penalty(
                        self.band_grid, failures[i]))
                    continue
            if not _performance_is_finite(scalar):
                failures[i] = EvaluationFailure(
                    category,
                    "scalar fallback also produced non-finite figures",
                    x=unit_x[i].copy(),
                )
                self._fill_row(batch, i, AmplifierPerformance.penalty(
                    self.band_grid, failures[i]))
                continue
            n_fallbacks += 1
            self._fill_row(batch, i, scalar)

        if _guard_modes.enabled():
            # Physical-sanity contract: a noise figure below 0 dB means
            # the noise model produced negative noise power.  Strict
            # mode raises; warn mode quarantines the row through the
            # standard failure taxonomy (penalty figures), leaving
            # healthy rows bit-for-bit untouched.
            nf_bad = _contracts.noise_figure_violation_mask(batch.nf_db)
            for i in np.flatnonzero(nf_bad):
                if failures[i] is not None:
                    continue  # already quarantined with penalty figures
                message = (
                    f"candidate {i} reports NF < 0 dB "
                    f"(min {float(np.min(batch.nf_db[i])):.3e} dB): "
                    f"negative noise power is unphysical"
                )
                _contracts.report_violation("performance", message)
                failures[i] = EvaluationFailure(
                    CATEGORY_CONTRACT, message, x=unit_x[i].copy()
                )
                self._fill_row(batch, i, AmplifierPerformance.penalty(
                    self.band_grid, failures[i]))
        return batch, failures, n_fallbacks

    @staticmethod
    def _fill_row(batch: BatchPerformance, index: int,
                  perf: AmplifierPerformance) -> None:
        """Overwrite one batch row with a scalar performance record."""
        batch.nf_db[index] = perf.nf_db
        batch.gt_db[index] = perf.gt_db
        batch.s11_db[index] = perf.s11_db
        batch.s22_db[index] = perf.s22_db
        batch.mu_min[index] = perf.mu_min
        batch.ids[index] = perf.ids
        batch.nf_max_db[index] = perf.nf_max_db
        batch.gt_min_db[index] = perf.gt_min_db
        batch.gt_ripple_db[index] = perf.gt_ripple_db

    # -- verification -------------------------------------------------------
    def _verify(self, tolerance: float = 1e-8):
        """Cross-check the stamp plan against the scalar path.

        Two probe points (the template defaults and an off-centre
        design) catch any element that varies with the design vector
        but was classified constant — its stamp would be frozen at the
        compile-time value and the probes would disagree.
        """
        probes = np.vstack([
            DesignVariables().to_unit(),
            DesignVariables.from_unit(
                np.full(len(DesignVariables.NAMES), 0.3)
            ).to_unit(),
        ])
        batch = self.performance_batch(probes)
        for k in range(probes.shape[0]):
            scalar = self.template.evaluate(
                DesignVariables.from_unit(probes[k]),
                self.band_grid, self.guard_grid,
            )
            compiled = batch.candidate(k)
            checks = [
                ("nf_db", scalar.nf_db, compiled.nf_db),
                ("gt_db", scalar.gt_db, compiled.gt_db),
                ("s11_db", scalar.s11_db, compiled.s11_db),
                ("s22_db", scalar.s22_db, compiled.s22_db),
                ("mu_min", scalar.mu_min, compiled.mu_min),
                ("ids", scalar.ids, compiled.ids),
            ]
            for label, expected, got in checks:
                error = float(np.max(np.abs(
                    np.asarray(got) - np.asarray(expected)
                )))
                if not np.isfinite(error) or error > tolerance:
                    raise CompileError(
                        f"compiled engine disagrees with the scalar path "
                        f"on {label!r} at probe {k} (max error {error:.3e});"
                        f" the netlist changed — update "
                        f"VARIABLE_ELEMENT_NAMES in repro.core.engine"
                    )


class CompiledMetricObjective:
    """Picklable recipe for metric objectives built *inside* a worker.

    The evaluator fleet (:class:`repro.optimize.fleet.WorkerFleet`)
    accepts an ``objective_factory`` that each worker process calls
    once at startup.  This class is that factory for the common case —
    "compile the template and optimize one figure of merit": it
    carries only the template and grids (cheap to pickle), and
    :meth:`__call__` compiles a :class:`CompiledTemplate` locally and
    returns the ``(scalar, batch)`` objective pair over *metric*.

    Because the compile happens independently in every worker from the
    same deterministic inputs, each worker's stamp plan — and therefore
    every row it evaluates — is bit-identical to the parent's.
    """

    #: ``(B,)`` figures of merit a batch evaluation exposes directly.
    METRICS = ("nf_max_db", "gt_min_db", "gt_ripple_db", "mu_min", "ids")

    def __init__(self, template: AmplifierTemplate,
                 metric: str = "nf_max_db",
                 band_grid: Optional[FrequencyGrid] = None,
                 guard_grid: Optional[FrequencyGrid] = None,
                 sign: float = 1.0):
        if metric not in self.METRICS:
            raise ValueError(
                f"metric must be one of {self.METRICS}, got {metric!r}"
            )
        self.template = template
        self.metric = metric
        self.band_grid = band_grid
        self.guard_grid = guard_grid
        self.sign = float(sign)

    def __call__(self):
        engine = CompiledTemplate(self.template, self.band_grid,
                                  self.guard_grid, verify=False)
        metric, sign = self.metric, self.sign

        def scalar(unit_x: np.ndarray) -> float:
            batch = engine.performance_batch(np.atleast_2d(unit_x))
            return sign * float(getattr(batch, metric)[0])

        def batch_fn(unit_pop: np.ndarray) -> np.ndarray:
            batch = engine.performance_batch(unit_pop)
            return sign * np.asarray(getattr(batch, metric), dtype=float)

        return scalar, batch_fn
