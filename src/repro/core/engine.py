"""Compiled LNA evaluation engine: netlist stamps lowered to tensors.

The scalar path (:meth:`AmplifierTemplate.evaluate`) rebuilds the whole
:class:`~repro.analysis.netlist.Circuit` in Python for every candidate
and re-stamps every element into the admittance tensor — fine for one
design, ruinous for population-based optimization where thousands of
candidates share one topology.  :class:`CompiledTemplate` lowers the
netlist **once** into a *stamp plan*:

* a constant base tensor holding every design-invariant element
  (access lines, bias resistor, decoupling, device parasitic shell),
  assembled one time by the ordinary scalar stamping code;
* a short list of :class:`StampSlot` records — precomputed node-index
  arrays for the handful of elements whose value depends on the design
  vector (matching passives, stabilization branches, and the intrinsic
  bias-dependent device elements);
* the matching noise-source plan (constant sources pre-evaluated,
  variable PSDs computed per candidate).

Per-candidate assembly is then pure vectorized NumPy — broadcast the
base tensor to ``(B, F, n, n)``, add ``signs * value`` at the
precomputed indices — and one call to
:func:`repro.analysis.compiled.solve_tensor_batch` solves the design
grid *and* the stability guard grid for all candidates at once (the two
grids are fused along the frequency axis; rows are independent in MNA,
so the fused solve is exact).

Element values are computed by the *same* component models as the
scalar path (:mod:`repro.passives.rlc` factories, the device's DC and
capacitance models), evaluated on ``(B, 1)`` value arrays, so the
numbers agree with the scalar path to floating-point roundoff.  Because
the constant/variable split is an assumption about
:meth:`AmplifierTemplate.build_circuit`, compilation **verifies** it:
the compiled engine is checked against the scalar path at two probe
design points and :class:`CompileError` is raised on any mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.acsolver import (
    _assemble_tensor,
    _collect_noise_sources,
    _injection,
)
from repro.analysis.compiled import (
    BatchNoiseSource,
    solve_tensor_batch,
    solve_tensor_batch_isolated,
)
from repro.analysis.conditioning import observe_condition
from repro.analysis.sparsemna import (
    MutableGroup,
    PatternError,
    build_plan,
    structural_costs,
)
from repro.analysis.netlist import (
    Capacitor,
    NoiseCurrent,
    Resistor,
    Vccs,
    YBlock,
)
from repro.core.amplifier import (
    AmplifierPerformance,
    AmplifierTemplate,
    DesignVariables,
)
from repro.core.bands import design_grid, stability_grid
from repro.guards import contracts as _contracts
from repro.guards import modes as _guard_modes
from repro.obs import journal as _obs_journal
from repro.obs import metrics as _obs_metrics
from repro.obs import tracer as _obs_tracer
from repro.optimize.faults import (
    CATEGORY_BAD_BIAS,
    CATEGORY_CONTRACT,
    CATEGORY_NON_FINITE,
    CATEGORY_SINGULAR,
    EvaluationFailure,
    FAILURE_EXCEPTIONS,
    classify_exception,
)
from repro.passives.rlc import (
    _two_terminal_stack,
    coilcraft_style_inductor,
    murata_style_capacitor,
)
from repro.rf import conversions as cv
from repro.rf.frequency import FrequencyGrid
from repro.rf.noise import ca_from_cy
from repro.rf.stability import mu_source
from repro.util.constants import BOLTZMANN, T_AMBIENT

__all__ = [
    "CompileError",
    "CompiledTemplate",
    "CompiledMetricObjective",
    "BatchPerformance",
    "StampSlot",
    "VARIABLE_ELEMENT_NAMES",
]

_2KT0 = 2.0 * BOLTZMANN * 290.0

#: Elements of :meth:`AmplifierTemplate.build_circuit` whose stamped
#: value depends on the design vector.  Everything else goes into the
#: constant base tensor; compilation verifies this classification.
VARIABLE_ELEMENT_NAMES = frozenset({
    "Cin", "Lin", "Ldeg", "Lchoke", "Cout", "Csh",   # matching passives
    "Rstab", "Rsh",                                  # stabilization
    "Q_Cgs", "Q_Cgd", "Q_gm", "Q_Gds", "Q_ind",      # bias-dependent
})


def _performance_is_finite(perf: AmplifierPerformance) -> bool:
    """Whether every figure of merit of a scalar evaluation is finite."""
    return bool(
        np.all(np.isfinite(perf.nf_db))
        and np.all(np.isfinite(perf.gt_db))
        and np.all(np.isfinite(perf.s11_db))
        and np.all(np.isfinite(perf.s22_db))
        and np.isfinite(perf.mu_min)
        and np.isfinite(perf.ids)
    )


class CompileError(RuntimeError):
    """The stamp plan disagrees with the scalar path.

    Raised when :meth:`AmplifierTemplate.build_circuit` produced a
    topology the compiled constant/variable split cannot represent —
    usually because an element was added or renamed without updating
    ``VARIABLE_ELEMENT_NAMES``.
    """


@dataclass(frozen=True)
class StampSlot:
    """Precomputed index arrays of one design-dependent element.

    ``y_batch[..., rows, cols] += signs * value[..., None]`` applies the
    slot; the (row, col) pairs within one slot are unique, so the fancy
    indexing accumulates correctly.
    """

    name: str
    rows: np.ndarray   # (k,) int
    cols: np.ndarray   # (k,) int
    signs: np.ndarray  # (k,) float


@dataclass
class BatchPerformance:
    """Figures of merit of a batch of evaluated designs (arrays over B)."""

    frequency: FrequencyGrid
    nf_db: np.ndarray          # (B, F)
    gt_db: np.ndarray          # (B, F)
    s11_db: np.ndarray         # (B, F)
    s22_db: np.ndarray         # (B, F)
    mu_min: np.ndarray         # (B,)
    ids: np.ndarray            # (B,)
    nf_max_db: np.ndarray      # (B,)
    gt_min_db: np.ndarray      # (B,)
    gt_ripple_db: np.ndarray   # (B,)

    def __len__(self) -> int:
        return self.nf_db.shape[0]

    def candidate(self, index: int) -> AmplifierPerformance:
        """The scalar :class:`AmplifierPerformance` of one batch member."""
        return AmplifierPerformance(
            frequency=self.frequency,
            nf_db=self.nf_db[index],
            gt_db=self.gt_db[index],
            s11_db=self.s11_db[index],
            s22_db=self.s22_db[index],
            mu_min=float(self.mu_min[index]),
            ids=float(self.ids[index]),
            nf_max_db=float(self.nf_max_db[index]),
            gt_min_db=float(self.gt_min_db[index]),
            gt_ripple_db=float(self.gt_ripple_db[index]),
        )


class CompiledTemplate:
    """An :class:`AmplifierTemplate` lowered to a batched stamp plan.

    Parameters
    ----------
    template:
        The amplifier template to compile.
    band_grid, guard_grid:
        Objective and stability-guard frequency grids (defaults match
        :class:`repro.core.objectives.LnaEvaluator`).
    verify:
        Check the compiled engine against the scalar path at two probe
        design points (recommended; a few scalar solves at compile
        time).
    solver:
        Factorization tier for the batched MNA solves.  ``"dense"``
        (default, the reference path) stamps full ``(B, F, n, n)``
        tensors; ``"sparse"`` compiles a Schur-condensed plan
        (:mod:`repro.analysis.sparsemna`) — the candidate-independent
        block is LU-factorized once per topology per frequency with a
        shared CSC pattern, and per candidate only the small reduced
        system is refactorized (or Sherman-Morrison-updated when few
        stamp groups vary).  ``"auto"`` picks by a deterministic
        structural cost model, so every process compiling the same
        template resolves identically; the decision is journaled as a
        ``solver_decision`` event.  The sparse tier agrees with dense
        to well under 1e-9 relative and is verified against the scalar
        path by the same compile-time probes.
    """

    def __init__(self, template: AmplifierTemplate,
                 band_grid: Optional[FrequencyGrid] = None,
                 guard_grid: Optional[FrequencyGrid] = None,
                 verify: bool = True,
                 solver: str = "dense"):
        if solver not in ("dense", "sparse", "auto"):
            raise ValueError(
                f"solver must be 'dense', 'sparse', or 'auto', "
                f"got {solver!r}"
            )
        self.template = template
        self.solver = solver
        self.band_grid = band_grid or design_grid(17)
        self.guard_grid = guard_grid or stability_grid(24)
        self._n_band = len(self.band_grid)
        # Fused frequency axis: objective band first, guard band after.
        # MNA rows are independent per frequency, so one solve of the
        # fused axis is exact for both grids.
        self._f_fused = np.concatenate([self.band_grid.f_hz,
                                        self.guard_grid.f_hz])
        self._compile()
        self._plan = None
        self._solver_resolved = self._resolve_solver()
        if verify:
            self._verify()

    # -- pickling -----------------------------------------------------------
    # A compiled engine is mostly derived state (stamp tensors, index
    # arrays, noise injections), all reproducible from the constructor
    # inputs.  Pickling therefore ships only (template, grids) and the
    # receiver recompiles — which is exactly what a spawned evaluator
    # worker wants: the compile runs once per worker, locally, instead
    # of megabytes of tensors crossing the pipe.  Verification is
    # skipped on unpickle: the sender's compile already verified this
    # same template, and the stamp plan is deterministic.
    def __getstate__(self):
        return {
            "template": self.template,
            "band_grid": self.band_grid,
            "guard_grid": self.guard_grid,
            "solver": self.solver,
        }

    def __setstate__(self, state):
        self.__init__(state["template"], state["band_grid"],
                      state["guard_grid"], verify=False,
                      solver=state.get("solver", "dense"))

    # -- compilation --------------------------------------------------------
    def _compile(self):
        proto = self.template.build_circuit(DesignVariables())
        names = {element.name for element in proto.elements}
        missing = VARIABLE_ELEMENT_NAMES - names
        if missing:
            raise CompileError(
                f"template netlist lacks expected design-dependent "
                f"elements: {sorted(missing)}"
            )
        self._n_nodes = len(proto.node_names)
        self._port_rows = np.array(
            [proto.node_index(p.node) for p in proto.ports], dtype=int
        )
        z0_values = {p.z0 for p in proto.ports}
        if len(z0_values) != 1:
            raise CompileError("ports must share one reference impedance")
        self._z0 = proto.ports[0].z0
        self._port_names = [p.name for p in proto.ports]

        constant = [e for e in proto.elements
                    if e.name not in VARIABLE_ELEMENT_NAMES]
        variable = {e.name: e for e in proto.elements
                    if e.name in VARIABLE_ELEMENT_NAMES}

        # Constant part: stamped once by the ordinary scalar assembler.
        self._base = _assemble_tensor(proto, self._f_fused, self._n_nodes,
                                      elements=constant)
        self._const_noise = [
            BatchNoiseSource(np.stack(src.columns, axis=1), src.psd_array)
            for src in _collect_noise_sources(proto, self._f_fused,
                                              elements=constant)
        ]

        # Variable part: precompute index arrays and noise injections.
        self._slots: Dict[str, StampSlot] = {}
        self._scalar_noise: List[tuple] = []   # (name, columns (n, 1))
        self._block_noise: List[tuple] = []    # (name, columns (n, 2))
        for name, element in variable.items():
            if isinstance(element, Vccs):
                self._slots[name] = self._vccs_slot(proto, element)
                continue
            if isinstance(element, YBlock):
                node_a, node_b = element.nodes
            else:
                node_a, node_b = element.node_a, element.node_b
            if isinstance(element, NoiseCurrent):
                self._scalar_noise.append((name, _injection(
                    proto, node_a, node_b, self._n_nodes
                )[:, None]))
                continue
            self._slots[name] = self._two_terminal_slot(proto, name,
                                                        node_a, node_b)
            if isinstance(element, Resistor):
                if element.temperature > 0:
                    self._scalar_noise.append((name, _injection(
                        proto, node_a, node_b, self._n_nodes
                    )[:, None]))
            elif isinstance(element, YBlock):
                if element.cy_function is not None:
                    columns = np.zeros((self._n_nodes, 2), dtype=complex)
                    for k, node in enumerate(element.nodes):
                        idx = proto.node_index(node)
                        if idx >= 0:
                            columns[idx, k] = 1.0
                    self._block_noise.append((name, columns))

    @staticmethod
    def _two_terminal_slot(circuit, name, node_a, node_b) -> StampSlot:
        a = circuit.node_index(node_a)
        b = circuit.node_index(node_b)
        entries = []
        if a >= 0:
            entries.append((a, a, +1.0))
        if b >= 0:
            entries.append((b, b, +1.0))
        if a >= 0 and b >= 0:
            entries.append((a, b, -1.0))
            entries.append((b, a, -1.0))
        if not entries:
            raise CompileError(f"element {name!r} connects ground to ground")
        rows, cols, signs = (np.array(v) for v in zip(*entries))
        return StampSlot(name, rows.astype(int), cols.astype(int),
                         signs.astype(float))

    @staticmethod
    def _vccs_slot(circuit, element: Vccs) -> StampSlot:
        op = circuit.node_index(element.out_p)
        on = circuit.node_index(element.out_n)
        cp = circuit.node_index(element.ctrl_p)
        cn = circuit.node_index(element.ctrl_n)
        entries = []
        for out_idx, sign in ((op, +1.0), (on, -1.0)):
            if out_idx < 0:
                continue
            if cp >= 0:
                entries.append((out_idx, cp, sign))
            if cn >= 0:
                entries.append((out_idx, cn, -sign))
        if not entries:
            raise CompileError(
                f"vccs {element.name!r} has no stamped entries"
            )
        rows, cols, signs = (np.array(v) for v in zip(*entries))
        return StampSlot(element.name, rows.astype(int), cols.astype(int),
                         signs.astype(float))

    # -- sparse plan --------------------------------------------------------
    def _noise_column_count(self) -> int:
        return (
            sum(src.columns.shape[1] for src in self._const_noise)
            + len(self._scalar_noise)
            + sum(c.shape[1] for _, c in self._block_noise)
        )

    def _resolve_solver(self) -> str:
        """Pick and prepare the factorization tier.

        ``"auto"`` resolves through :func:`structural_costs` — a pure
        function of the stamp structure, never of timing — so a fleet
        worker recompiling this template makes the identical choice,
        and its rows stay bit-identical to the parent's.  The decision
        is journaled like the population-backend ``backend_decision``.
        """
        if self.solver == "dense":
            return "dense"
        touched = set()
        for slot in self._slots.values():
            touched.update(slot.rows.tolist())
            touched.update(slot.cols.tolist())
        if not touched:
            touched = set(int(r) for r in self._port_rows)
        n_rhs = self._port_rows.size + self._noise_column_count()
        costs = structural_costs(self._n_nodes, len(touched), n_rhs,
                                 self._port_rows.size)
        if self.solver == "auto":
            chosen = "sparse" if costs["sparse"] < costs["dense"] else "dense"
            _obs_journal.emit(
                "solver_decision",
                chosen=chosen,
                candidates={k: float(v) for k, v in costs.items()},
                n_nodes=int(self._n_nodes),
                n_reduced=len(touched),
                rhs_columns=int(n_rhs),
            )
            if chosen == "dense":
                return "dense"
        try:
            self._plan = self._build_sparse_plan()
        except PatternError as exc:
            if self.solver == "sparse":
                raise CompileError(
                    f"solver='sparse' requested but the template's "
                    f"structure cannot be condensed: {exc}"
                ) from None
            _obs_metrics.inc("mna.sparse_pattern_fallbacks")
            return "dense"
        return "sparse"

    def _build_sparse_plan(self):
        """Compile the Schur-condensed plan over the fused grid.

        The shared right-hand side carries the two port injections and
        every noise-injection column; the plan condenses them once, so
        a candidate batch costs one small adjoint solve plus a
        ``matmul`` contraction.  The per-source column layout is
        recorded for the fused noise-correlation assembly.
        """
        n_ports = self._port_rows.size
        rhs = np.zeros(
            (self._n_nodes, n_ports + self._noise_column_count()),
            dtype=complex,
        )
        for col, row in enumerate(self._port_rows):
            rhs[row, col] = 1.0
        n_band = self._n_band
        # Noise-column bookkeeping, offsets relative to the noise block:
        # scalar-PSD entries fuse into one stacked matmul, (w, w) blocks
        # group by width into one batched triple product per width.
        sp_scalar: List[tuple] = []   # (col, "const" psd | "var" name)
        sp_blocks: Dict[int, List[tuple]] = {}
        offset = n_ports
        for src in self._const_noise:
            width = src.columns.shape[1]
            rhs[:, offset:offset + width] = src.columns
            psd = np.asarray(src.psd)
            if psd.ndim == 1:
                # A scalar PSD over w columns is w independent scalar
                # sources sharing one density (the dense kernel's
                # ``psd * (i @ i^H)`` sums identically).
                for k in range(width):
                    sp_scalar.append(
                        (offset + k - n_ports, "const", psd[:n_band])
                    )
            else:
                sp_blocks.setdefault(width, []).append(
                    (offset - n_ports, "const", psd[:n_band])
                )
            offset += width
        for name, columns in self._scalar_noise:
            rhs[:, offset] = columns[:, 0]
            sp_scalar.append((offset - n_ports, "var", name))
            offset += 1
        for name, columns in self._block_noise:
            width = columns.shape[1]
            rhs[:, offset:offset + width] = columns
            sp_blocks.setdefault(width, []).append(
                (offset - n_ports, "var", name)
            )
            offset += width

        # Freeze the PSD layout into index arrays and pre-stacked
        # constant tables so the per-batch assembly in
        # :meth:`_sparse_figures` only fills the bias-dependent slots.
        self._sc_cols = np.array([e[0] for e in sp_scalar], dtype=int)
        self._sc_const = np.zeros((n_band, len(sp_scalar)))
        self._sc_var: List[tuple] = []          # (stack index, source name)
        for idx, (_, kind, payload) in enumerate(sp_scalar):
            if kind == "const":
                self._sc_const[:, idx] = payload
            else:
                self._sc_var.append((idx, payload))
        self._blk_layout: Dict[int, tuple] = {}
        for width, entries in sp_blocks.items():
            cols = np.concatenate([
                np.arange(c0, c0 + width) for c0, _, _ in entries
            ])
            const_psd = np.zeros((n_band, len(entries), width, width),
                                 dtype=complex)
            var_entries = []
            for idx, (_, kind, payload) in enumerate(entries):
                if kind == "const":
                    const_psd[:, idx] = payload
                else:
                    var_entries.append((idx, payload))
            self._blk_layout[width] = (cols, const_psd, var_entries)

        groups = [MutableGroup(name, slot.rows, slot.cols, slot.signs)
                  for name, slot in self._slots.items()]
        return build_plan(self._base, groups, self._port_rows, self._z0,
                          rhs, out_rows=list(self._port_rows))

    @staticmethod
    def _inv2x2(a: np.ndarray) -> np.ndarray:
        """Explicit batched 2x2 inverse (the port count is fixed)."""
        det = a[..., 0, 0] * a[..., 1, 1] - a[..., 0, 1] * a[..., 1, 0]
        inv = np.empty_like(a)
        inv[..., 0, 0] = a[..., 1, 1]
        inv[..., 0, 1] = -a[..., 0, 1]
        inv[..., 1, 0] = -a[..., 1, 0]
        inv[..., 1, 1] = a[..., 0, 0]
        return inv / det[..., None, None]

    def _sparse_figures(self, v_ports: np.ndarray, n_batch: int,
                        scalar_psds, block_psds):
        """S-parameters and band noise correlation from the plan's
        port-row solution ``(B, F_fused, 2, K)``."""
        n_band = self._n_band
        # The port loads are stamped into the reduced matrix, so the
        # 2x2 port block of the solution is the *loaded* impedance
        # matrix Z_L and the network admittance is Y = Z_L^-1 - G0.
        # Substituting into y_to_s collapses the two inversions:
        #   S = (I + Y z0)^-1 (I - Y z0) = 2 Z_L / z0 - I.
        s = (2.0 / self._z0) * v_ports[..., :2]
        s[..., 0, 0] -= 1.0
        s[..., 1, 1] -= 1.0

        zi = self._inv2x2(v_ports[:, :n_band, :, :2])
        # Every noise transfer at once: one matmul instead of a
        # per-source loop (i_n = -(Y_net + G0) v_loaded, as dense).
        i_all = -(zi @ v_ports[:, :n_band, :, 2:])
        cy = np.zeros((n_batch, n_band, 2, 2), dtype=complex)
        if self._sc_cols.size:
            i_s = i_all[..., self._sc_cols]              # (B, Fb, 2, S)
            psd_stack = np.empty((n_batch, n_band, self._sc_cols.size))
            psd_stack[...] = self._sc_const
            for idx, name in self._sc_var:
                psd_stack[:, :, idx] = scalar_psds[name][:, :n_band]
            i_s_h = np.conjugate(np.swapaxes(i_s, -1, -2))
            cy += (i_s * psd_stack[..., None, :]) @ i_s_h
        for width, (cols, const_psd, var_entries) in self._blk_layout.items():
            nb = const_psd.shape[1]
            x = i_all[..., cols].reshape(
                n_batch, n_band, 2, nb, width)           # (B, Fb, 2, nb, w)
            if var_entries:
                psd = np.empty(
                    (n_batch, n_band, nb, width, width), dtype=complex)
                psd[...] = const_psd
                for idx, name in var_entries:
                    psd[:, :, idx] = block_psds[name][:, :n_band]
                psd = psd[:, :, None]                    # (B, Fb, 1, nb, w, w)
            else:
                psd = const_psd[None, :, None]           # (1, Fb, 1, nb, w, w)
            # y[..., p, k, v] = sum_u x[..., p, k, u] psd[..., k, u, v];
            # elementwise-and-sum beats batched matmul on 2x2 blocks.
            y = (x[..., :, None] * psd).sum(axis=-2)
            y = y.reshape(n_batch, n_band, 2, nb * width)
            xh = np.conjugate(
                x.reshape(n_batch, n_band, 2, nb * width))
            cy += y @ np.swapaxes(xh, -1, -2)
        return s, cy

    # -- per-candidate values ----------------------------------------------
    def _candidate_values(self, x_physical: np.ndarray,
                          bad_bias: str = "raise"):
        """Vectorized element values for a (B, n_vars) design matrix.

        Returns ``(admittances, scalar_psds, block_psds, ids, bad_mask)``
        where admittances maps slot name -> (B, F) complex, scalar_psds
        maps noise-source name -> (B, 1) or (B, F), block_psds maps
        YBlock name -> (B, F, 2, 2), and bad_mask is a (B,) bool array
        flagging candidates whose bias point is unusable (``gds <= 0``
        or non-finite small-signal parameters).

        ``bad_bias="raise"`` (the default, used by :meth:`solve_batch`)
        raises ``ValueError`` when any candidate is flagged;
        ``bad_bias="mask"`` substitutes a benign placeholder bias for
        the flagged rows — keeping the tensor solvable for the healthy
        rows — and leaves the caller to overwrite them with penalties.
        """
        index = {name: k for k, name in enumerate(DesignVariables.NAMES)}
        col = lambda name: x_physical[:, index[name]]  # noqa: E731
        f = self._f_fused
        omega = 2.0 * np.pi * f
        device = self.template.device

        admittances: Dict[str, np.ndarray] = {}
        scalar_psds: Dict[str, np.ndarray] = {}
        block_psds: Dict[str, np.ndarray] = {}

        # Matching passives: the same catalogue models as build_circuit,
        # evaluated on (B, 1) value columns so each row is bitwise the
        # scalar computation.
        passives = {
            "Cin": murata_style_capacitor(col("c_in")[:, None], name="Cin"),
            "Cout": murata_style_capacitor(col("c_out")[:, None],
                                           name="Cout"),
            "Csh": murata_style_capacitor(col("c_sh")[:, None], name="Csh"),
            "Lin": coilcraft_style_inductor(col("l_in")[:, None],
                                            name="Lin"),
            "Ldeg": coilcraft_style_inductor(col("l_deg")[:, None],
                                             name="Ldeg"),
            "Lchoke": coilcraft_style_inductor(col("l_choke")[:, None],
                                               name="Lchoke"),
        }
        for name, component in passives.items():
            y = np.asarray(component.admittance(f), dtype=complex)
            admittances[name] = y
            g = np.real(y)
            block_psds[name] = _two_terminal_stack(
                (2.0 * BOLTZMANN * T_AMBIENT * g).astype(complex)
            )

        # Stabilization resistors: ideal (the scalar path uses
        # circuit.resistor), admittance flat over frequency.
        for name, var in (("Rstab", "r_stab"), ("Rsh", "r_sh")):
            r = col(var)[:, None]
            admittances[name] = (1.0 / r).astype(complex)
            scalar_psds[name] = 2.0 * BOLTZMANN * T_AMBIENT / r

        # Bias-dependent intrinsic device elements, from the same DC and
        # capacitance models the scalar path calls in intrinsic_at().
        vgs = col("vgs")
        vds = col("vds")
        dc = device.dc_model
        caps = device.capacitances
        gm = np.asarray(dc.gm(vgs, vds), dtype=float)
        gds = np.asarray(dc.gds(vgs, vds), dtype=float)
        ids = np.asarray(dc.ids(vgs, vds), dtype=float)
        bad_mask = (
            ~np.isfinite(gm) | ~np.isfinite(gds) | ~np.isfinite(ids)
            | (np.nan_to_num(gds, nan=-1.0) <= 0)
        )
        if np.any(bad_mask):
            if bad_bias != "mask":
                bad = np.flatnonzero(bad_mask)
                raise ValueError(
                    f"candidates {bad.tolist()} bias the device outside "
                    "the saturated forward region (gds <= 0)"
                )
            # Placeholder bias keeps the stamped tensor well-defined for
            # the healthy rows; the flagged rows are overwritten with
            # penalty figures by performance_batch_isolated.
            gm = np.where(bad_mask, 0.0, gm)
            gds = np.where(bad_mask, 1e-3, gds)
            ids = np.where(bad_mask, 0.0, ids)
        cgs = np.asarray(caps.cgs(vgs), dtype=float)
        cgd = np.asarray(caps.cgd(vds), dtype=float)

        admittances["Q_Cgs"] = 1j * omega * cgs[:, None]
        admittances["Q_Cgd"] = 1j * omega * cgd[:, None]
        # The scalar path stamps 1 / resistance with resistance set to
        # 1 / gds; replicate the double reciprocal for exactness.
        admittances["Q_Gds"] = (1.0 / (1.0 / gds[:, None])).astype(complex)
        admittances["Q_gm"] = gm[:, None] * np.exp(
            -1j * omega * caps.tau
        )[None, :]
        td = device.td0 + device.td_slope * ids
        scalar_psds["Q_ind"] = (2.0 * BOLTZMANN * td * gds)[:, None]
        return admittances, scalar_psds, block_psds, ids, bad_mask

    # -- solving ------------------------------------------------------------
    def solve_batch(self, x_physical: np.ndarray):
        """Fused-grid batch solve for (B, n_vars) physical design vectors.

        Returns ``(s, cy_band, ids)``: S-parameters ``(B, F_fused, 2, 2)``
        over the fused band+guard axis, the port noise correlation on
        the design band only (``(B, n_band, 2, 2)`` — the guard grid
        feeds the stability margin, which needs no noise), and the
        drain bias currents ``(B,)``.
        """
        x_physical = np.atleast_2d(np.asarray(x_physical, dtype=float))
        n_batch = x_physical.shape[0]
        values = self._candidate_values(x_physical)
        ids = values[3]
        if self._solver_resolved == "sparse":
            # One condensed adjoint solve of the whole fused axis; the
            # noise columns ride in the precomputed reduced RHS.
            admittances, scalar_psds, block_psds = values[:3]
            try:
                v_ports = self._plan.solve_rows(admittances, n_batch,
                                                update="auto")
            except np.linalg.LinAlgError as exc:
                raise ValueError(
                    "singular circuit (floating node or degenerate "
                    f"element): {exc}"
                ) from None
            with np.errstate(divide="ignore", invalid="ignore"):
                s, cy_band = self._sparse_figures(v_ports, n_batch,
                                                  scalar_psds, block_psds)
            return s, cy_band, ids
        y_batch, noise_sources = self._stamped_batch(n_batch, *values[:3])
        n_band = self._n_band

        # Two batched solves sharing the stamped tensor: the band slice
        # carries the signal *and* noise right-hand sides, the guard
        # slice only the two port columns (its noise response is never
        # consumed).  Per-frequency independence makes the split exact.
        s_band, cy_band, _ = solve_tensor_batch(
            y_batch[:, :n_band], self._port_rows, self._z0, noise_sources
        )
        s_guard, _, _ = solve_tensor_batch(
            y_batch[:, n_band:], self._port_rows, self._z0
        )
        s = np.concatenate([s_band, s_guard], axis=1)
        return s, cy_band, ids

    def _stamped_batch(self, n_batch: int, admittances, scalar_psds,
                       block_psds):
        """Stamp the (B, F, n, n) tensor and band noise-source list."""
        y_batch = np.broadcast_to(
            self._base, (n_batch,) + self._base.shape
        ).copy()
        for name, slot in self._slots.items():
            y_batch[..., slot.rows, slot.cols] += (
                slot.signs * admittances[name][..., None]
            )
        n_band = self._n_band
        noise_sources = [
            BatchNoiseSource(src.columns, src.psd[:n_band])
            for src in self._const_noise
        ]
        for name, columns in self._scalar_noise:
            noise_sources.append(BatchNoiseSource(columns, scalar_psds[name]))
        for name, columns in self._block_noise:
            noise_sources.append(
                BatchNoiseSource(columns, block_psds[name][:, :n_band])
            )
        return y_batch, noise_sources

    @staticmethod
    def _to_physical(unit_x: np.ndarray) -> np.ndarray:
        lower, upper = DesignVariables.LOWER, DesignVariables.UPPER
        return lower + np.clip(unit_x, 0.0, 1.0) * (upper - lower)

    def performance_batch(self, unit_x: np.ndarray) -> BatchPerformance:
        """Figures of merit for a (B, n_vars) batch of unit-box vectors.

        Matches ``[template.evaluate(DesignVariables.from_unit(u), band,
        guard) for u in unit_x]`` to ~1e-10.
        """
        unit_x = np.atleast_2d(np.asarray(unit_x, dtype=float))
        with _obs_tracer.span("engine.performance_batch",
                              batch=unit_x.shape[0]):
            s, cy_band, ids = self.solve_batch(self._to_physical(unit_x))
            figures = self._figures(s, cy_band, ids)
        _obs_metrics.inc("engine.batch_solves")
        _obs_metrics.inc("engine.candidates", unit_x.shape[0])
        self._guard_batch_figures(figures)
        return figures

    def performance_batch_physical(self, x_physical: np.ndarray
                                   ) -> BatchPerformance:
        """Figures of merit for a (B, n_vars) batch of *physical* vectors.

        Unlike :meth:`performance_batch` no unit-box clip is applied:
        robust corner sweeps legitimately evaluate component values
        outside the optimization box (a +5 % inductor above ``UPPER``
        is still a buildable board).  Matches
        ``[template.evaluate(DesignVariables.from_vector(v), band,
        guard) for v in x_physical]`` to ~1e-10.
        """
        x_physical = np.atleast_2d(np.asarray(x_physical, dtype=float))
        with _obs_tracer.span("engine.performance_batch",
                              batch=x_physical.shape[0]):
            s, cy_band, ids = self.solve_batch(x_physical)
            figures = self._figures(s, cy_band, ids)
        _obs_metrics.inc("engine.batch_solves")
        _obs_metrics.inc("engine.candidates", x_physical.shape[0])
        self._guard_batch_figures(figures)
        return figures

    @staticmethod
    def _guard_batch_figures(figures: BatchPerformance) -> None:
        if not _guard_modes.enabled():
            return
        # Physical-sanity contract on the reported figures.  The
        # check is read-only: strict mode raises, warn mode counts
        # and warns — the returned values are bit-for-bit those of
        # the unguarded path either way.
        bad = _contracts.noise_figure_violation_mask(figures.nf_db)
        if np.any(bad):
            rows = np.flatnonzero(bad)
            _contracts.report_violation(
                "performance",
                f"candidates {rows.tolist()} report NF < 0 dB "
                f"(min {float(np.min(figures.nf_db[rows])):.3e} dB): "
                f"negative noise power is unphysical",
            )

    def _figures(self, s: np.ndarray, cy_band: np.ndarray,
                 ids: np.ndarray) -> BatchPerformance:
        """Figures of merit from solved S-parameters and noise data."""
        n_band = self._n_band
        s_band = s[:, :n_band]
        s_guard = s[:, n_band:]

        # Noise figure exactly as NoisyTwoPort.noise_factor with the
        # port reference source: ca from cy via the network ABCD.
        abcd = cv.s_to_abcd(s_band, self._z0)
        ca = ca_from_cy(cy_band, abcd)
        zs = 1.0 / (1.0 / self._z0)
        e_total = (
            ca[..., 0, 0]
            + np.conjugate(zs) * ca[..., 0, 1]
            + zs * ca[..., 1, 0]
            + np.abs(zs) ** 2 * ca[..., 1, 1]
        ).real
        noise_factor = 1.0 + e_total / (_2KT0 * np.real(zs))
        nf_db = 10.0 * np.log10(noise_factor)

        gt_db = 20.0 * np.log10(
            np.maximum(np.abs(s_band[..., 1, 0]), 1e-12)
        )
        s11_db = 20.0 * np.log10(
            np.maximum(np.abs(s_band[..., 0, 0]), 1e-12)
        )
        s22_db = 20.0 * np.log10(
            np.maximum(np.abs(s_band[..., 1, 1]), 1e-12)
        )
        mu_min = np.min(mu_source(s_guard), axis=1)
        return BatchPerformance(
            frequency=self.band_grid,
            nf_db=nf_db,
            gt_db=gt_db,
            s11_db=s11_db,
            s22_db=s22_db,
            mu_min=mu_min,
            ids=ids,
            nf_max_db=np.max(nf_db, axis=1),
            gt_min_db=np.min(gt_db, axis=1),
            gt_ripple_db=np.max(gt_db, axis=1) - np.min(gt_db, axis=1),
        )

    def performance(self, unit_x: np.ndarray) -> AmplifierPerformance:
        """Single-candidate convenience wrapper over the batch path."""
        return self.performance_batch(np.atleast_2d(unit_x)).candidate(0)

    # -- fault-isolated solving ---------------------------------------------
    def performance_batch_isolated(self, unit_x: np.ndarray):
        """Like :meth:`performance_batch`, but no candidate can sink it.

        Degradation chain per candidate: the fused compiled solve first;
        rows that make it fail (singular tensors, non-finite figures,
        unusable bias) are retried one at a time, then through the
        scalar :meth:`AmplifierTemplate.evaluate` path, and finally —
        if nothing can evaluate them — filled with the finite
        worst-case figures of :meth:`AmplifierPerformance.penalty`.
        Healthy rows are numerically identical to the plain batch path.

        Returns ``(batch, failures, n_fallbacks)``: the
        :class:`BatchPerformance`, a per-candidate list of
        ``Optional[EvaluationFailure]`` (``None`` for healthy rows,
        including rows recovered by the scalar fallback), and the count
        of rows the scalar fallback recovered.
        """
        unit_x = np.atleast_2d(np.asarray(unit_x, dtype=float))
        with _obs_tracer.span("engine.performance_batch_isolated",
                              batch=unit_x.shape[0]):
            batch, failures, n_fallbacks = self._batch_isolated(
                self._to_physical(unit_x), unit_x,
                lambda i: DesignVariables.from_unit(unit_x[i]),
            )
        self._record_isolated(unit_x.shape[0], failures, n_fallbacks)
        return batch, failures, n_fallbacks

    def performance_batch_physical_isolated(self, x_physical: np.ndarray):
        """Fault-isolated twin of :meth:`performance_batch_physical`.

        The same degradation chain as
        :meth:`performance_batch_isolated` (compiled batch -> per-row
        scalar fallback -> finite penalty figures) applied to raw
        physical design vectors with no unit-box clip — robust corner
        sweeps use this so one unsolvable corner quarantines through
        the :class:`EvaluationFailure` taxonomy while the healthy
        corners stay bit-identical to the plain physical batch path.
        ``EvaluationFailure.x`` carries the *physical* row.
        """
        x_physical = np.atleast_2d(np.asarray(x_physical, dtype=float))
        with _obs_tracer.span("engine.performance_batch_isolated",
                              batch=x_physical.shape[0]):
            batch, failures, n_fallbacks = self._batch_isolated(
                x_physical, x_physical,
                lambda i: DesignVariables.from_vector(x_physical[i]),
            )
        self._record_isolated(x_physical.shape[0], failures, n_fallbacks)
        return batch, failures, n_fallbacks

    @staticmethod
    def _record_isolated(n_batch: int, failures, n_fallbacks: int) -> None:
        _obs_metrics.inc("engine.batch_solves")
        _obs_metrics.inc("engine.candidates", n_batch)
        if n_fallbacks:
            _obs_metrics.inc("engine.scalar_fallbacks", n_fallbacks)
        n_penalties = sum(1 for f in failures if f is not None)
        if n_penalties:
            _obs_metrics.inc("engine.penalty_rows", n_penalties)
        if n_fallbacks or n_penalties:
            _obs_journal.emit("engine_degraded",
                              batch=int(n_batch),
                              scalar_fallbacks=int(n_fallbacks),
                              penalty_rows=int(n_penalties))

    def _batch_isolated(self, x_physical: np.ndarray, x_report: np.ndarray,
                        decode):
        """Shared isolated solve; ``x_report`` rows label failures and
        ``decode(i)`` rebuilds row *i* for the scalar fallback."""
        n_batch = x_physical.shape[0]
        failures: List[Optional[EvaluationFailure]] = [None] * n_batch

        (admittances, scalar_psds, block_psds, ids,
         bad_bias) = self._candidate_values(x_physical, bad_bias="mask")
        n_band = self._n_band
        if self._solver_resolved == "sparse":
            s, cy_band, solver_failed = self._isolated_sparse(
                n_batch, admittances, scalar_psds, block_psds
            )
            with np.errstate(divide="ignore", invalid="ignore",
                             over="ignore"):
                batch = self._figures(s, cy_band, ids)
        else:
            y_batch, noise_sources = self._stamped_batch(
                n_batch, admittances, scalar_psds, block_psds
            )
            with np.errstate(divide="ignore", invalid="ignore",
                             over="ignore"):
                s_band, cy_band, _, failed_band = (
                    solve_tensor_batch_isolated(
                        y_batch[:, :n_band], self._port_rows, self._z0,
                        noise_sources,
                    )
                )
                s_guard, _, _, failed_guard = solve_tensor_batch_isolated(
                    y_batch[:, n_band:], self._port_rows, self._z0
                )
                s = np.concatenate([s_band, s_guard], axis=1)
                batch = self._figures(s, cy_band, ids)
            solver_failed = failed_band | failed_guard
        finite = (
            np.isfinite(batch.nf_db).all(axis=1)
            & np.isfinite(batch.gt_db).all(axis=1)
            & np.isfinite(batch.s11_db).all(axis=1)
            & np.isfinite(batch.s22_db).all(axis=1)
            & np.isfinite(batch.mu_min)
            & np.isfinite(batch.ids)
        )

        for i in np.flatnonzero(bad_bias):
            failures[i] = EvaluationFailure(
                CATEGORY_BAD_BIAS,
                "device biased outside the saturated forward region "
                "(gds <= 0)",
                x=x_report[i].copy(),
            )
            self._fill_row(batch, i, AmplifierPerformance.penalty(
                self.band_grid, failures[i]))

        n_fallbacks = 0
        for i in np.flatnonzero((solver_failed | ~finite) & ~bad_bias):
            category = (CATEGORY_SINGULAR if solver_failed[i]
                        else CATEGORY_NON_FINITE)
            with np.errstate(divide="ignore", invalid="ignore"):
                try:
                    scalar = self.template.evaluate(
                        decode(i), self.band_grid, self.guard_grid,
                    )
                except FAILURE_EXCEPTIONS as exc:
                    failures[i] = EvaluationFailure(
                        classify_exception(exc), str(exc),
                        x=x_report[i].copy(),
                    )
                    self._fill_row(batch, i, AmplifierPerformance.penalty(
                        self.band_grid, failures[i]))
                    continue
            if not _performance_is_finite(scalar):
                failures[i] = EvaluationFailure(
                    category,
                    "scalar fallback also produced non-finite figures",
                    x=x_report[i].copy(),
                )
                self._fill_row(batch, i, AmplifierPerformance.penalty(
                    self.band_grid, failures[i]))
                continue
            n_fallbacks += 1
            self._fill_row(batch, i, scalar)

        if _guard_modes.enabled():
            # Physical-sanity contract: a noise figure below 0 dB means
            # the noise model produced negative noise power.  Strict
            # mode raises; warn mode quarantines the row through the
            # standard failure taxonomy (penalty figures), leaving
            # healthy rows bit-for-bit untouched.
            nf_bad = _contracts.noise_figure_violation_mask(batch.nf_db)
            for i in np.flatnonzero(nf_bad):
                if failures[i] is not None:
                    continue  # already quarantined with penalty figures
                message = (
                    f"candidate {i} reports NF < 0 dB "
                    f"(min {float(np.min(batch.nf_db[i])):.3e} dB): "
                    f"negative noise power is unphysical"
                )
                _contracts.report_violation("performance", message)
                failures[i] = EvaluationFailure(
                    CATEGORY_CONTRACT, message, x=x_report[i].copy()
                )
                self._fill_row(batch, i, AmplifierPerformance.penalty(
                    self.band_grid, failures[i]))
        return batch, failures, n_fallbacks

    def _isolated_sparse(self, n_batch: int, admittances, scalar_psds,
                         block_psds):
        """Failure-isolated sparse solve of one candidate batch.

        The happy path is the condensed adjoint solve.  Candidates it
        cannot represent — a singular reduced system or non-finite
        results — are re-run through the *dense* isolated machinery as
        a sub-batch, which carries the full PR 2-4 degradation chain
        (per-row refactorization, equilibrated rescue, zero-fill +
        ``failed`` flag) and is spliced back row-for-row.  Healthy rows
        never leave the sparse path.
        """
        n_band = self._n_band
        if _guard_modes.enabled():
            # The sparse twin of the dense path's conditioning sample:
            # the mid-grid *reduced* matrix of the first candidate is
            # what this tier actually factorizes.
            observe_condition(self._plan.sample_matrix(admittances), "mna")
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            try:
                v_ports = self._plan.solve_rows(admittances, n_batch,
                                                update="auto")
            except np.linalg.LinAlgError:
                v_ports = None
                _obs_metrics.inc("mna.batch_refactorizations")
            if v_ports is not None:
                s, cy_band = self._sparse_figures(v_ports, n_batch,
                                                  scalar_psds, block_psds)
                bad = ~(
                    np.isfinite(s).reshape(n_batch, -1).all(axis=1)
                    & np.isfinite(cy_band).reshape(n_batch, -1).all(axis=1)
                )
            else:
                s = np.zeros((n_batch, self._f_fused.size, 2, 2),
                             dtype=complex)
                cy_band = np.zeros((n_batch, n_band, 2, 2), dtype=complex)
                bad = np.ones(n_batch, dtype=bool)

        failed = np.zeros(n_batch, dtype=bool)
        if np.any(bad):
            idx = np.flatnonzero(bad)
            _obs_metrics.inc("mna.sparse_isolated_fallbacks", int(idx.size))
            sub_adm = {k: v[idx] for k, v in admittances.items()}
            sub_scalar = {k: v[idx] for k, v in scalar_psds.items()}
            sub_block = {k: v[idx] for k, v in block_psds.items()}
            y_sub, noise_sub = self._stamped_batch(
                idx.size, sub_adm, sub_scalar, sub_block
            )
            with np.errstate(divide="ignore", invalid="ignore",
                             over="ignore"):
                s_b, cy_b, _, f_band = solve_tensor_batch_isolated(
                    y_sub[:, :n_band], self._port_rows, self._z0,
                    noise_sub,
                )
                s_g, _, _, f_guard = solve_tensor_batch_isolated(
                    y_sub[:, n_band:], self._port_rows, self._z0
                )
            s[idx] = np.concatenate([s_b, s_g], axis=1)
            cy_band[idx] = cy_b
            failed[idx] = f_band | f_guard
        return s, cy_band, failed

    @staticmethod
    def _fill_row(batch: BatchPerformance, index: int,
                  perf: AmplifierPerformance) -> None:
        """Overwrite one batch row with a scalar performance record."""
        batch.nf_db[index] = perf.nf_db
        batch.gt_db[index] = perf.gt_db
        batch.s11_db[index] = perf.s11_db
        batch.s22_db[index] = perf.s22_db
        batch.mu_min[index] = perf.mu_min
        batch.ids[index] = perf.ids
        batch.nf_max_db[index] = perf.nf_max_db
        batch.gt_min_db[index] = perf.gt_min_db
        batch.gt_ripple_db[index] = perf.gt_ripple_db

    # -- verification -------------------------------------------------------
    def _verify(self, tolerance: float = 1e-8):
        """Cross-check the stamp plan against the scalar path.

        Two probe points (the template defaults and an off-centre
        design) catch any element that varies with the design vector
        but was classified constant — its stamp would be frozen at the
        compile-time value and the probes would disagree.
        """
        probes = np.vstack([
            DesignVariables().to_unit(),
            DesignVariables.from_unit(
                np.full(len(DesignVariables.NAMES), 0.3)
            ).to_unit(),
        ])
        batch = self.performance_batch(probes)
        for k in range(probes.shape[0]):
            scalar = self.template.evaluate(
                DesignVariables.from_unit(probes[k]),
                self.band_grid, self.guard_grid,
            )
            compiled = batch.candidate(k)
            checks = [
                ("nf_db", scalar.nf_db, compiled.nf_db),
                ("gt_db", scalar.gt_db, compiled.gt_db),
                ("s11_db", scalar.s11_db, compiled.s11_db),
                ("s22_db", scalar.s22_db, compiled.s22_db),
                ("mu_min", scalar.mu_min, compiled.mu_min),
                ("ids", scalar.ids, compiled.ids),
            ]
            for label, expected, got in checks:
                error = float(np.max(np.abs(
                    np.asarray(got) - np.asarray(expected)
                )))
                if not np.isfinite(error) or error > tolerance:
                    raise CompileError(
                        f"compiled engine disagrees with the scalar path "
                        f"on {label!r} at probe {k} (max error {error:.3e});"
                        f" the netlist changed — update "
                        f"VARIABLE_ELEMENT_NAMES in repro.core.engine"
                    )


class CompiledMetricObjective:
    """Picklable recipe for metric objectives built *inside* a worker.

    The evaluator fleet (:class:`repro.optimize.fleet.WorkerFleet`)
    accepts an ``objective_factory`` that each worker process calls
    once at startup.  This class is that factory for the common case —
    "compile the template and optimize one figure of merit": it
    carries only the template and grids (cheap to pickle), and
    :meth:`__call__` compiles a :class:`CompiledTemplate` locally and
    returns the ``(scalar, batch)`` objective pair over *metric*.

    Because the compile happens independently in every worker from the
    same deterministic inputs, each worker's stamp plan — and therefore
    every row it evaluates — is bit-identical to the parent's.
    """

    #: ``(B,)`` figures of merit a batch evaluation exposes directly.
    METRICS = ("nf_max_db", "gt_min_db", "gt_ripple_db", "mu_min", "ids")

    def __init__(self, template: AmplifierTemplate,
                 metric: str = "nf_max_db",
                 band_grid: Optional[FrequencyGrid] = None,
                 guard_grid: Optional[FrequencyGrid] = None,
                 sign: float = 1.0,
                 solver: str = "dense"):
        if metric not in self.METRICS:
            raise ValueError(
                f"metric must be one of {self.METRICS}, got {metric!r}"
            )
        self.template = template
        self.metric = metric
        self.band_grid = band_grid
        self.guard_grid = guard_grid
        self.sign = float(sign)
        self.solver = solver

    def __call__(self):
        engine = CompiledTemplate(self.template, self.band_grid,
                                  self.guard_grid, verify=False,
                                  solver=self.solver)
        metric, sign = self.metric, self.sign

        def scalar(unit_x: np.ndarray) -> float:
            batch = engine.performance_batch(np.atleast_2d(unit_x))
            return sign * float(getattr(batch, metric)[0])

        def batch_fn(unit_pop: np.ndarray) -> np.ndarray:
            batch = engine.performance_batch(unit_pop)
            return sign * np.asarray(getattr(batch, metric), dtype=float)

        return scalar, batch_fn
