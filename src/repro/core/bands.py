"""GNSS frequency plan: GPS, GLONASS, Galileo, Compass/BeiDou.

The paper's premise: all principal navigation systems transmit between
roughly 1.1 and 1.7 GHz, so one wideband preamplifier can serve every
constellation.  ``DESIGN_BAND`` is the composite optimization band;
the individual signal bands below drive the per-band reporting of the
selected design (experiment E8).
"""

from __future__ import annotations

from repro.rf.frequency import Band, FrequencyGrid

__all__ = [
    "GNSS_BANDS",
    "DESIGN_BAND",
    "STABILITY_BAND",
    "design_grid",
    "stability_grid",
]

#: Individual GNSS signal bands (centre +/- main-lobe width) [Hz].
GNSS_BANDS = (
    Band("GPS L5 / Galileo E5a", 1164.45e6, 1188.45e6),
    Band("GLONASS G3 / BeiDou B2", 1195.14e6, 1219.14e6),
    Band("GPS L2", 1215.6e6, 1239.6e6),
    Band("GLONASS G2", 1242.9375e6, 1248.625e6),
    Band("BeiDou B3", 1256.52e6, 1280.52e6),
    Band("Galileo E6", 1260.0e6, 1300.0e6),
    Band("BeiDou B1", 1553.098e6, 1569.098e6),
    Band("GPS L1 / Galileo E1", 1563.42e6, 1587.42e6),
    Band("GLONASS G1", 1598.0625e6, 1609.3125e6),
)

#: The composite band the multi-objective optimization targets.
DESIGN_BAND = Band("GNSS composite", 1.10e9, 1.70e9)

#: Guard band over which unconditional stability is enforced.
STABILITY_BAND = Band("stability guard", 0.10e9, 6.00e9)


def design_grid(n_points: int = 25) -> FrequencyGrid:
    """The frequency grid used to evaluate in-band objectives."""
    return DESIGN_BAND.grid(n_points)


def stability_grid(n_points: int = 30) -> FrequencyGrid:
    """Logarithmic grid spanning the stability guard band."""
    return FrequencyGrid.logarithmic(
        STABILITY_BAND.f_low, STABILITY_BAND.f_high, n_points
    )
