"""Plain-text table formatting for the experiment drivers.

The benchmark harness prints paper-style tables; this keeps the
formatting in one place so every experiment renders consistently.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.optimize.faults import RunHealth

__all__ = ["format_table", "format_series", "format_run_health"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "", float_format: str = "{:.3f}") -> str:
    """Render an ASCII table with aligned columns."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        h.ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(x_label: str, y_labels: Sequence[str], x_values,
                  y_columns, title: str = "",
                  float_format: str = "{:.3f}") -> str:
    """Render a figure's data as a table of series (one column per curve)."""
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [column[i] for column in y_columns])
    return format_table([x_label] + list(y_labels), rows, title=title,
                        float_format=float_format)


def format_run_health(health: RunHealth,
                      title: str = "Run health") -> str:
    """Render one run's fault/degradation telemetry as a table.

    Every optimizer result carries a ``health`` record; experiment
    drivers print it after a run so silent degradation (penalized
    candidates, pool rebuilds, serial fallback) stays visible.
    """
    rows = [[key, value] for key, value in health.as_dict().items()]
    if health.resumed_at is not None:
        rows.append(["resumed_at", health.resumed_at])
    if not rows:  # pragma: no cover - as_dict always has the counters
        rows = [["(no telemetry)", ""]]
    return format_table(["metric", "value"], rows, title=title)
