"""Measurement simulation of the finished preamplifier (paper step 5).

Substitution for the paper's VNA + noise-figure-meter measurements of
the fabricated board (see DESIGN.md): the snapped design is solved
through the full MNA path on a dense grid and then corrupted with
instrument-class uncertainty:

* VNA: per-point complex Gaussian error (residual post-calibration
  ripple), a slow systematic phase drift, and a -55 dB additive floor;
* NF meter (Y-factor): Gaussian jitter plus a small systematic offset
  from the ENR calibration table.

Experiments E9/E10 plot the designed vs "measured" curves from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.rf.frequency import FrequencyGrid

__all__ = ["MeasurementSettings", "MeasuredPerformance", "simulate_measurement"]


@dataclass(frozen=True)
class MeasurementSettings:
    """Instrument uncertainty knobs."""

    vna_ripple: float = 0.006        # relative complex error, 1 sigma
    vna_floor: float = 10 ** (-55 / 20)  # additive error floor (linear)
    vna_phase_drift_deg: float = 1.0     # systematic drift across the sweep
    nf_jitter_db: float = 0.06       # Y-factor repeatability, 1 sigma
    nf_offset_db: float = 0.05       # ENR table systematic offset
    seed: int = 7


@dataclass
class MeasuredPerformance:
    """Designed vs measured traces over the verification grid."""

    frequency: FrequencyGrid
    s_designed: np.ndarray       # (F, 2, 2)
    s_measured: np.ndarray       # (F, 2, 2)
    nf_designed_db: np.ndarray   # (F,)
    nf_measured_db: np.ndarray   # (F,)

    def sparam_db(self, i: int, j: int, measured: bool = True) -> np.ndarray:
        """|Sij| in dB (1-indexed ports) from either trace set."""
        s = self.s_measured if measured else self.s_designed
        return 20.0 * np.log10(np.maximum(np.abs(s[:, i - 1, j - 1]), 1e-12))

    def worst_deviation_db(self, i: int, j: int) -> float:
        """Max |designed - measured| of one S magnitude trace [dB]."""
        return float(np.max(np.abs(
            self.sparam_db(i, j, True) - self.sparam_db(i, j, False)
        )))


def simulate_measurement(template: AmplifierTemplate,
                         variables: DesignVariables,
                         frequency: Optional[FrequencyGrid] = None,
                         settings: Optional[MeasurementSettings] = None
                         ) -> MeasuredPerformance:
    """Run the bench: dense solve + instrument corruption."""
    if frequency is None:
        frequency = FrequencyGrid.linear(1.0e9, 1.8e9, 81)
    settings = settings or MeasurementSettings()
    rng = np.random.default_rng(settings.seed)

    noisy = template.solve(variables, frequency)
    s_true = noisy.network.s
    nf_true = noisy.noise_figure_db()

    drift = np.exp(
        1j * np.deg2rad(settings.vna_phase_drift_deg)
        * (frequency.f_hz - frequency.f_hz[0])
        / (frequency.f_hz[-1] - frequency.f_hz[0])
    )[:, None, None]
    ripple = 1.0 + settings.vna_ripple * (
        rng.standard_normal(s_true.shape)
        + 1j * rng.standard_normal(s_true.shape)
    ) / np.sqrt(2.0)
    floor = settings.vna_floor * (
        rng.standard_normal(s_true.shape)
        + 1j * rng.standard_normal(s_true.shape)
    ) / np.sqrt(2.0)
    s_measured = s_true * ripple * drift + floor

    nf_measured = (
        nf_true
        + settings.nf_offset_db
        + settings.nf_jitter_db * rng.standard_normal(nf_true.shape)
    )
    nf_measured = np.maximum(nf_measured, 0.0)

    return MeasuredPerformance(
        frequency=frequency,
        s_designed=s_true,
        s_measured=s_measured,
        nf_designed_db=nf_true,
        nf_measured_db=nf_measured,
    )
