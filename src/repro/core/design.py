"""The end-to-end GNSS LNA design flow (the paper's step 4).

:class:`DesignFlow` wires the extracted device model into the amplifier
template, builds the multi-objective problem, runs any of the three
optimizers (improved goal attainment / standard goal attainment /
weighted sum), and finalizes the winner: element values snapped to the
E24 catalogue, the operating point rounded to bench-settable precision,
and the snapped design re-verified through the full MNA path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.amplifier import (
    AmplifierPerformance,
    AmplifierTemplate,
    DesignVariables,
)
from repro.core.bands import GNSS_BANDS, design_grid, stability_grid
from repro.core.objectives import DesignSpec, LnaEvaluator, build_lna_problem
from repro.devices.smallsignal import PHEMTSmallSignal
from repro.optimize.goal_attainment import (
    GoalAttainmentResult,
    goal_attainment_improved,
    goal_attainment_standard,
)
from repro.optimize.batching import BatchShardExecutor, validate_workers
from repro.optimize.scalarization import weighted_sum
from repro.passives.catalog import snap_to_series

__all__ = ["DesignFlow", "FinalDesign", "DEFAULT_GOALS"]

#: Default design goals: NFmax <= 0.7 dB and GTmin >= 14 dB.
DEFAULT_GOALS = np.array([0.7, -14.0])


@dataclass
class FinalDesign:
    """A finished, catalogue-snapped design with verification data."""

    variables: DesignVariables
    snapped: DesignVariables
    performance: AmplifierPerformance
    snapped_performance: AmplifierPerformance
    optimizer_result: GoalAttainmentResult
    per_band: Dict[str, Dict[str, float]]

    def summary_rows(self):
        """Rows for the E8 'selected design' table."""
        rows = [
            ("Vgs [V]", self.snapped.vgs),
            ("Vds [V]", self.snapped.vds),
            ("Ids [mA]", self.snapped_performance.ids * 1e3),
            ("Lin [nH]", self.snapped.l_in * 1e9),
            ("Ldeg [nH]", self.snapped.l_deg * 1e9),
            ("Cin [pF]", self.snapped.c_in * 1e12),
            ("Cout [pF]", self.snapped.c_out * 1e12),
            ("Lchoke [nH]", self.snapped.l_choke * 1e9),
            ("Rstab [ohm]", self.snapped.r_stab),
            ("Rsh [ohm]", self.snapped.r_sh),
            ("Csh [pF]", self.snapped.c_sh * 1e12),
        ]
        return rows


class DesignFlow:
    """Orchestrates problem construction, optimization, and finalization.

    ``workers > 1`` shards the problem's population-level evaluations
    (the goal-attainment probe stage, NSGA-II generations run through
    :attr:`problem`) across a thread pool; per-row results are
    bit-identical to the single-threaded run because the model's hot
    loop is numpy ``linalg.solve`` on independent rows.  Call
    :meth:`close` (or use the flow as a context manager) to release
    the pool; everything still works — serially — without it.
    """

    def __init__(self, device: PHEMTSmallSignal,
                 spec: Optional[DesignSpec] = None,
                 template: Optional[AmplifierTemplate] = None,
                 engine: str = "compiled",
                 workers: Optional[int] = None):
        self.device = device
        self.spec = spec or DesignSpec()
        self.template = template or AmplifierTemplate(device)
        self.evaluator = LnaEvaluator(self.template, engine=engine)
        self.problem = build_lna_problem(self.template, self.spec,
                                         self.evaluator)
        self.workers = validate_workers(workers)
        self._executor = None
        if self.workers is not None and self.workers > 1:
            self._executor = BatchShardExecutor(self.workers)
            self.problem = self.problem.sharded(self._executor)

    def close(self) -> None:
        """Release the sharding thread pool (idempotent)."""
        executor, self._executor = getattr(self, "_executor", None), None
        if executor is not None:
            executor.close()

    def __enter__(self) -> "DesignFlow":
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- optimizer front-ends ------------------------------------------------
    def run_improved(self, goals=DEFAULT_GOALS, seed: Optional[int] = 0,
                     **kwargs) -> GoalAttainmentResult:
        """The paper's improved goal-attainment method."""
        return goal_attainment_improved(self.problem, goals, seed=seed,
                                        **kwargs)

    def run_standard(self, goals=DEFAULT_GOALS, x0=None,
                     **kwargs) -> GoalAttainmentResult:
        """The textbook goal-attainment baseline."""
        return goal_attainment_standard(self.problem, goals, x0=x0, **kwargs)

    def run_weighted_sum(self, weights=(1.0, 0.1), seed: Optional[int] = 0,
                         **kwargs) -> GoalAttainmentResult:
        """The weighted-sum baseline."""
        return weighted_sum(self.problem, np.asarray(weights, dtype=float),
                            seed=seed, **kwargs)

    # -- finalization ------------------------------------------------------------
    def finalize(self, result: GoalAttainmentResult,
                 n_verify_points: int = 41) -> FinalDesign:
        """Snap to the E24 catalogue and re-verify the snapped design.

        ``result.x`` is in the unit box (see
        :func:`repro.core.objectives.build_lna_problem`).
        """
        variables = DesignVariables.from_unit(result.x)
        snapped = DesignVariables(
            vgs=round(variables.vgs, 2),
            vds=round(variables.vds, 1),
            l_in=snap_to_series(variables.l_in),
            l_deg=snap_to_series(variables.l_deg),
            c_in=snap_to_series(variables.c_in),
            c_out=snap_to_series(variables.c_out),
            l_choke=snap_to_series(variables.l_choke),
            r_stab=snap_to_series(variables.r_stab),
            r_sh=snap_to_series(variables.r_sh),
            c_sh=snap_to_series(variables.c_sh),
        )
        grid = design_grid(n_verify_points)
        guard = stability_grid(40)
        performance = self.template.evaluate(variables, grid, guard)
        snapped_performance = self.template.evaluate(snapped, grid, guard)
        per_band = self._per_band_report(snapped, grid)
        return FinalDesign(
            variables=variables,
            snapped=snapped,
            performance=performance,
            snapped_performance=snapped_performance,
            optimizer_result=result,
            per_band=per_band,
        )

    def _per_band_report(self, variables: DesignVariables, grid):
        noisy = self.template.solve(variables, grid)
        nf_db = noisy.noise_figure_db()
        gt_db = 20.0 * np.log10(np.abs(noisy.network.s[:, 1, 0]))
        report = {}
        for band in GNSS_BANDS:
            mask = band.contains(grid.f_hz)
            if not np.any(mask):
                # Use the nearest grid point for narrow bands that fall
                # between verification samples.
                mask = np.zeros(len(grid), dtype=bool)
                mask[grid.index_of(band.center)] = True
            report[band.label] = {
                "NF_dB": float(np.max(nf_db[mask])),
                "GT_dB": float(np.min(gt_db[mask])),
            }
        return report
