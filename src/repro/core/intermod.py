"""Third-order intermodulation check of the preamplifier (paper step 5).

A GNSS antenna amplifier sits in front of everything and must survive
nearby transmitters, so the paper closes by checking the two-tone IM3
products.  The analysis here is the standard weakly-nonlinear power
series:

* the drain current is expanded to third order in the gate drive
  around the DC operating point (coefficients from the extracted DC
  model);
* the linear MNA solution provides the exact transfer from the input
  port to the intrinsic gate-source voltage, so the matching network's
  voltage magnification is fully accounted for;
* IM3 at ``2 f1 - f2`` then follows the classic ``3:1`` slope and the
  intercept point formulas.

Approximation (documented): the degeneration feedback's linearizing
effect on the cubic term is neglected, making the predicted IM3
slightly pessimistic — the safe direction for an intercept check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.acsolver import solve_ac
from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.rf.frequency import FrequencyGrid
from repro.util.units import watt_to_dbm

__all__ = ["TwoToneResult", "two_tone_analysis"]

_DERIVATIVE_STEP = 2e-3


@dataclass
class TwoToneResult:
    """Two-tone intermodulation figures at one centre frequency."""

    f_center: float
    gt_db: float                 # transducer gain at the tones
    iip3_dbm: float              # input-referred third-order intercept
    oip3_dbm: float              # output-referred intercept
    pin_dbm: np.ndarray          # swept input power per tone
    pout_fund_dbm: np.ndarray    # fundamental output power per tone
    pout_im3_dbm: np.ndarray     # IM3 product output power

    def im3_slope(self) -> float:
        """Fitted dB/dB slope of the IM3 product (should be ~3)."""
        coeffs = np.polyfit(self.pin_dbm, self.pout_im3_dbm, 1)
        return float(coeffs[0])


def two_tone_analysis(template: AmplifierTemplate,
                      variables: DesignVariables,
                      f_center: float = 1.4e9,
                      pin_dbm: Optional[Sequence[float]] = None
                      ) -> TwoToneResult:
    """IM3 of the amplifier with two tones around *f_center*.

    The tone spacing is irrelevant in the memoryless power-series
    approximation, so only the centre frequency enters.
    """
    if pin_dbm is None:
        pin_dbm = np.linspace(-40.0, -10.0, 13)
    pin_dbm = np.asarray(pin_dbm, dtype=float)

    # Power-series coefficients of Ids(Vgs) at the operating point.
    model = template.device.dc_model
    vgs, vds = variables.vgs, variables.vds
    step = _DERIVATIVE_STEP
    gm1 = float(model.gm(vgs, vds))
    gm2 = float(
        (model.ids(vgs + step, vds) - 2.0 * model.ids(vgs, vds)
         + model.ids(vgs - step, vds)) / step**2
    ) / 2.0
    gm3 = float(
        (model.ids(vgs + 2 * step, vds) - 2.0 * model.ids(vgs + step, vds)
         + 2.0 * model.ids(vgs - step, vds)
         - model.ids(vgs - 2 * step, vds)) / (2.0 * step**3)
    ) / 6.0
    if gm1 <= 0:
        raise ValueError(
            f"operating point Vgs={vgs:.3f} V has non-positive gm"
        )

    # Exact linear transfer from port 1 to the intrinsic gate drive.
    circuit = template.build_circuit(variables)
    grid = FrequencyGrid.single(f_center)
    result = solve_ac(circuit, grid, compute_noise=False,
                      probe_nodes=("Q_x", "Q_si"))
    transfer_gate = (
        result.transfer_to("Q_x")[0, 0] - result.transfer_to("Q_si")[0, 0]
    )
    s21 = result.s[0, 1, 0]
    gt = float(np.abs(s21) ** 2)
    gt_db = 10.0 * np.log10(max(gt, 1e-30))

    # Injected Norton current for an available power P: |I| = sqrt(8 G0 P).
    g0 = 1.0 / result.z0
    pin_watt = 1e-3 * 10.0 ** (pin_dbm / 10.0)
    drive_amplitude = np.abs(transfer_gate) * np.sqrt(8.0 * g0 * pin_watt)

    # Two equal tones of amplitude A at the gate: fundamental drain
    # current gm1*A; IM3 (2f1 - f2) current (3/4)|gm3| A^3.
    ratio_im3 = (0.75 * abs(gm3) * drive_amplitude**2) / gm1
    pout_fund_watt = gt * pin_watt
    pout_im3_watt = pout_fund_watt * ratio_im3**2

    # Input intercept: drive amplitude where fundamental equals IM3.
    a_iip3 = np.sqrt(4.0 * gm1 / (3.0 * abs(gm3)))
    p_iip3 = a_iip3**2 / (8.0 * g0 * np.abs(transfer_gate) ** 2)
    iip3_dbm = float(watt_to_dbm(p_iip3))
    oip3_dbm = iip3_dbm + gt_db

    return TwoToneResult(
        f_center=float(f_center),
        gt_db=gt_db,
        iip3_dbm=iip3_dbm,
        oip3_dbm=oip3_dbm,
        pin_dbm=pin_dbm,
        pout_fund_dbm=watt_to_dbm(pout_fund_watt),
        pout_im3_dbm=watt_to_dbm(pout_im3_watt),
    )
