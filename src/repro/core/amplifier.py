"""The GNSS LNA circuit template and its evaluation.

Topology (the classic inductively-degenerated common-source LNA the
paper optimizes)::

    in o--Cin--Lin--+--[pHEMT gate          drain]--+--Cout--o out
                    |                :              |
                  Rbias            [Ldeg]         Lchoke (drain bias
                    |                :              |       feed; also
                  (Vg bias)         gnd           (Vdd)     output match)

* ``Cin``  — DC block; with ``Lin`` it forms the input match.
* ``Lin``  — series input inductor (noise match).
* ``Ldeg`` — source degeneration: trades gain for simultaneous
  noise/impedance match and stability.
* ``Lchoke`` — drain bias feed; its reactance doubles as the output
  shunt-L match.
* ``Cout`` — DC block; with ``Lchoke`` forms the output match.
* ``Rbias`` — high-value gate bias resistor (its noise is included and
  is negligible by design).

All passive elements are the **dispersive catalogue models** from
:mod:`repro.passives.rlc` and enter the optimizer as such, plus two
microstrip access lines on the RO4003 substrate.  Everything is
evaluated through the MNA simulator, noise included.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.analysis.acsolver import solve_ac
from repro.analysis.netlist import Circuit
from repro.core.bands import design_grid, stability_grid
from repro.devices.smallsignal import PHEMTSmallSignal
from repro.passives.microstrip import (
    MicrostripLine,
    MicrostripSubstrate,
    synthesize_width,
)
from repro.passives.rlc import (
    coilcraft_style_inductor,
    murata_style_capacitor,
)
from repro.rf.frequency import FrequencyGrid
from repro.rf.noise import NoisyTwoPort
from repro.rf.stability import mu_source
from repro.util.constants import T_AMBIENT

__all__ = [
    "DesignVariables",
    "AmplifierTemplate",
    "AmplifierPerformance",
    "PENALTY_NF_DB",
    "PENALTY_GT_DB",
    "PENALTY_IDS",
]

#: Finite penalty figures returned for unevaluable candidates: bad on
#: every objective and violating every constraint, but safe to feed to
#: gradient-free optimizers and SLSQP alike (no nan/inf propagation).
PENALTY_NF_DB = 1.0e3     # "noise figure" of a failed candidate [dB]
PENALTY_GT_DB = -1.0e3    # "gain" of a failed candidate [dB]
PENALTY_IDS = 1.0         # "bias current" of a failed candidate [A]


@dataclass(frozen=True)
class DesignVariables:
    """The optimizer's free variables: operating point + element values.

    Besides the matching elements, two stabilization branches are free:
    ``r_stab`` (in series with the drain choke, loading the device at
    low frequency where the choke is transparent) and the output shunt
    ``r_sh`` + ``c_sh`` (loading it at high frequency).  Together they
    let the optimizer trade unconditional stability against gain and
    noise — part of the multi-objective problem, not a fixed afterthought.
    """

    vgs: float = 0.52        # [V]
    vds: float = 3.0         # [V]
    l_in: float = 6.8e-9     # [H] series input inductor
    l_deg: float = 1.2e-9    # [H] source degeneration
    c_in: float = 8.2e-12    # [F] input DC block / match
    c_out: float = 4.7e-12   # [F] output DC block / match
    l_choke: float = 12e-9   # [H] drain feed / output shunt match
    r_stab: float = 50.0     # [ohm] drain-feed stabilization resistor
    r_sh: float = 150.0      # [ohm] output shunt stabilization resistor
    c_sh: float = 3.0e-12    # [F] output shunt stabilization capacitor

    NAMES = ("vgs", "vds", "l_in", "l_deg", "c_in", "c_out", "l_choke",
             "r_stab", "r_sh", "c_sh")

    #: Optimization box: electrically sensible, catalogue-available ranges.
    LOWER = np.array([0.35, 1.0, 1.0e-9, 0.1e-9, 1.0e-12, 0.8e-12, 3.0e-9,
                      2.0, 30.0, 0.3e-12])
    UPPER = np.array([0.68, 4.5, 27.0e-9, 3.0e-9, 33e-12, 33e-12, 39e-9,
                      300.0, 1000.0, 10e-12])

    def to_vector(self) -> np.ndarray:
        return np.array([getattr(self, name) for name in self.NAMES])

    @classmethod
    def from_vector(cls, vector) -> "DesignVariables":
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (len(cls.NAMES),):
            raise ValueError(
                f"expected {len(cls.NAMES)} design variables, "
                f"got shape {vector.shape}"
            )
        return cls(**dict(zip(cls.NAMES, vector)))

    # -- normalized (unit-box) coordinates ------------------------------
    # Component values span 14 orders of magnitude (farads vs ohms), so
    # the optimizers work in [0, 1]^n and map here.
    def to_unit(self) -> np.ndarray:
        return (self.to_vector() - self.LOWER) / (self.UPPER - self.LOWER)

    @classmethod
    def from_unit(cls, unit_vector) -> "DesignVariables":
        unit_vector = np.clip(np.asarray(unit_vector, dtype=float), 0.0, 1.0)
        return cls.from_vector(
            cls.LOWER + unit_vector * (cls.UPPER - cls.LOWER)
        )

    def replaced(self, **changes) -> "DesignVariables":
        return replace(self, **changes)


@dataclass
class AmplifierPerformance:
    """Figures of merit of one evaluated design."""

    frequency: FrequencyGrid
    nf_db: np.ndarray            # noise figure vs f, 50-ohm source
    gt_db: np.ndarray            # transducer gain |S21|^2 vs f [dB]
    s11_db: np.ndarray
    s22_db: np.ndarray
    mu_min: float                # worst-case stability over the guard band
    ids: float                   # drain bias current [A]
    nf_max_db: float
    gt_min_db: float
    gt_ripple_db: float
    #: Set when this record is a penalty stand-in for a failed
    #: evaluation (an ``EvaluationFailure`` from repro.optimize.faults).
    failure: Optional[object] = None

    @property
    def is_failure(self) -> bool:
        """True when these figures are a penalty, not a real solve."""
        return self.failure is not None

    @classmethod
    def penalty(cls, frequency: FrequencyGrid,
                failure: Optional[object] = None) -> "AmplifierPerformance":
        """Finite worst-case figures for an unevaluable candidate.

        Every objective is maximally bad and every design constraint
        (return loss, stability, ripple-via-gain, supply budget) is
        violated, so optimizers discard the candidate without special
        cases — and without nan/inf leaking into their arithmetic.
        """
        n = len(frequency)
        return cls(
            frequency=frequency,
            nf_db=np.full(n, PENALTY_NF_DB),
            gt_db=np.full(n, PENALTY_GT_DB),
            s11_db=np.zeros(n),          # |S11| = 1: zero return loss
            s22_db=np.zeros(n),
            mu_min=0.0,                  # not unconditionally stable
            ids=PENALTY_IDS,
            nf_max_db=PENALTY_NF_DB,
            gt_min_db=PENALTY_GT_DB,
            gt_ripple_db=0.0,
            failure=failure,
        )

    def summary(self) -> Dict[str, float]:
        """Flat dict for table rows."""
        return {
            "NFmax_dB": self.nf_max_db,
            "GTmin_dB": self.gt_min_db,
            "ripple_dB": self.gt_ripple_db,
            "S11max_dB": float(np.max(self.s11_db)),
            "S22max_dB": float(np.max(self.s22_db)),
            "mu_min": self.mu_min,
            "Ids_mA": self.ids * 1e3,
        }


class AmplifierTemplate:
    """Builds and evaluates the LNA circuit for a set of design variables."""

    def __init__(self, device: PHEMTSmallSignal,
                 substrate: Optional[MicrostripSubstrate] = None,
                 z0: float = 50.0,
                 bias_resistance: float = 10e3,
                 access_line_length: float = 4e-3):
        self.device = device
        self.substrate = substrate or MicrostripSubstrate()
        self.z0 = float(z0)
        self.bias_resistance = float(bias_resistance)
        width = synthesize_width(self.substrate, self.z0)
        self.line_in = MicrostripLine(self.substrate, width,
                                      access_line_length, name="TLin")
        self.line_out = MicrostripLine(self.substrate, width,
                                       access_line_length, name="TLout")

    # -- circuit assembly ---------------------------------------------------
    def build_circuit(self, variables: DesignVariables) -> Circuit:
        """The full LNA netlist at the given design point."""
        v = variables
        circuit = Circuit("gnss_lna")
        circuit.port("p1", "in", z0=self.z0)
        circuit.port("p2", "out", z0=self.z0)

        # Input chain: access line, DC block, series matching inductor.
        self.line_in.add_to(circuit, "in", "n_blk")
        murata_style_capacitor(v.c_in, name="Cin").add_to(
            circuit, "n_blk", "n_lin"
        )
        coilcraft_style_inductor(v.l_in, name="Lin").add_to(
            circuit, "n_lin", "gate"
        )
        # Gate bias resistor: RF-grounded at its far end (decoupled supply).
        circuit.resistor("Rbias", "gate", "gnd", self.bias_resistance,
                         temperature=T_AMBIENT)

        # The transistor with source degeneration.
        self.device.add_to(circuit, "gate", "drain", "src", v.vgs, v.vds)
        coilcraft_style_inductor(v.l_deg, name="Ldeg").add_to(
            circuit, "src", "gnd"
        )

        # Drain bias feed doubling as output shunt-L match; r_stab loads
        # the drain at low frequency where the choke is transparent.
        coilcraft_style_inductor(v.l_choke, name="Lchoke").add_to(
            circuit, "drain", "n_vdd"
        )
        circuit.resistor("Rstab", "n_vdd", "n_dec", v.r_stab,
                         temperature=T_AMBIENT)
        murata_style_capacitor(100e-12, name="Cdec").add_to(
            circuit, "n_dec", "gnd"
        )

        # Output DC block, high-frequency shunt stabilization, access line.
        murata_style_capacitor(v.c_out, name="Cout").add_to(
            circuit, "drain", "n_out"
        )
        circuit.resistor("Rsh", "n_out", "n_rc", v.r_sh,
                         temperature=T_AMBIENT)
        murata_style_capacitor(v.c_sh, name="Csh").add_to(
            circuit, "n_rc", "gnd"
        )
        self.line_out.add_to(circuit, "n_out", "out")
        return circuit

    # -- evaluation -----------------------------------------------------------
    def solve(self, variables: DesignVariables,
              frequency: FrequencyGrid) -> NoisyTwoPort:
        """Signal + noise solution of the LNA over a grid."""
        circuit = self.build_circuit(variables)
        return solve_ac(circuit, frequency).as_noisy_twoport("gnss_lna")

    def evaluate(self, variables: DesignVariables,
                 frequency: Optional[FrequencyGrid] = None,
                 guard: Optional[FrequencyGrid] = None
                 ) -> AmplifierPerformance:
        """Full figure-of-merit evaluation (band + stability guard)."""
        if frequency is None:
            frequency = design_grid()
        if guard is None:
            guard = stability_grid()
        # One circuit build serves both solves: element values depend
        # only on the design point, not on the frequency grid.
        circuit = self.build_circuit(variables)
        noisy = solve_ac(circuit, frequency).as_noisy_twoport("gnss_lna")
        s = noisy.network.s
        nf_db = noisy.noise_figure_db()
        gt_db = 20.0 * np.log10(np.maximum(np.abs(s[:, 1, 0]), 1e-12))
        s11_db = 20.0 * np.log10(np.maximum(np.abs(s[:, 0, 0]), 1e-12))
        s22_db = 20.0 * np.log10(np.maximum(np.abs(s[:, 1, 1]), 1e-12))

        guard_result = solve_ac(circuit, guard, compute_noise=False)
        mu_min = float(np.min(mu_source(guard_result.s)))
        ids = float(self.device.dc_model.ids(variables.vgs, variables.vds))
        return AmplifierPerformance(
            frequency=frequency,
            nf_db=nf_db,
            gt_db=gt_db,
            s11_db=s11_db,
            s22_db=s22_db,
            mu_min=mu_min,
            ids=ids,
            nf_max_db=float(np.max(nf_db)),
            gt_min_db=float(np.min(gt_db)),
            gt_ripple_db=float(np.max(gt_db) - np.min(gt_db)),
        )
