"""The paper's contribution: the multi-objective GNSS LNA design flow."""

from repro.core.bands import (
    DESIGN_BAND,
    GNSS_BANDS,
    STABILITY_BAND,
    design_grid,
    stability_grid,
)
from repro.core.amplifier import (
    PENALTY_GT_DB,
    PENALTY_IDS,
    PENALTY_NF_DB,
    AmplifierPerformance,
    AmplifierTemplate,
    DesignVariables,
)
from repro.core.engine import (
    BatchPerformance,
    CompiledTemplate,
    CompileError,
)
from repro.core.objectives import DesignSpec, LnaEvaluator, build_lna_problem
from repro.core.design import DEFAULT_GOALS, DesignFlow, FinalDesign
from repro.core.evaluation import (
    MeasuredPerformance,
    MeasurementSettings,
    simulate_measurement,
)
from repro.core.intermod import TwoToneResult, two_tone_analysis
from repro.core.system_budget import BudgetResult, SystemBudget
from repro.core.tolerance import (
    ToleranceSpec,
    YieldResult,
    monte_carlo_yield,
)
from repro.core.report import (
    format_run_health,
    format_series,
    format_table,
)

__all__ = [
    "DESIGN_BAND",
    "GNSS_BANDS",
    "STABILITY_BAND",
    "design_grid",
    "stability_grid",
    "AmplifierPerformance",
    "AmplifierTemplate",
    "DesignVariables",
    "PENALTY_GT_DB",
    "PENALTY_IDS",
    "PENALTY_NF_DB",
    "BatchPerformance",
    "CompiledTemplate",
    "CompileError",
    "DesignSpec",
    "LnaEvaluator",
    "build_lna_problem",
    "DEFAULT_GOALS",
    "DesignFlow",
    "FinalDesign",
    "MeasuredPerformance",
    "MeasurementSettings",
    "simulate_measurement",
    "TwoToneResult",
    "two_tone_analysis",
    "BudgetResult",
    "SystemBudget",
    "ToleranceSpec",
    "YieldResult",
    "monte_carlo_yield",
    "format_run_health",
    "format_series",
    "format_table",
]
