"""Monte-Carlo tolerance (yield) analysis of a finished design.

After snapping to catalogue values, a board house populates parts with
manufacturing tolerances and the bias point drifts with the regulator.
This module samples those variations and reports the fraction of boards
meeting the shipping spec — the standard post-design step that decides
whether the optimized point is *robust*, not just optimal.

Every trial is a full MNA evaluation of the perturbed circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.bands import design_grid, stability_grid
from repro.core.objectives import DesignSpec
from repro.rf.frequency import FrequencyGrid

__all__ = ["ToleranceSpec", "YieldResult", "monte_carlo_yield"]


@dataclass(frozen=True)
class ToleranceSpec:
    """1-sigma-equivalent uniform tolerances per element class.

    Values are relative half-widths of a uniform distribution (0.05 =
    +/-5 %), except the bias entries which are absolute volts.
    """

    inductor: float = 0.05
    capacitor: float = 0.05
    resistor: float = 0.01
    vgs_volts: float = 0.01
    vds_volts: float = 0.05

    @classmethod
    def tight(cls) -> "ToleranceSpec":
        """Premium parts: 2 % reactives, 1 % resistors."""
        return cls(inductor=0.02, capacitor=0.02, resistor=0.01,
                   vgs_volts=0.005, vds_volts=0.02)

    @classmethod
    def loose(cls) -> "ToleranceSpec":
        """Cheap parts: 10 % reactives, 5 % resistors."""
        return cls(inductor=0.10, capacitor=0.10, resistor=0.05,
                   vgs_volts=0.02, vds_volts=0.1)


@dataclass
class YieldResult:
    """Outcome of a Monte-Carlo yield run."""

    n_trials: int
    n_pass: int
    nf_max_db: np.ndarray       # per-trial worst-case NF
    gt_min_db: np.ndarray       # per-trial worst-case GT
    mu_min: np.ndarray
    failures: Dict[str, int] = field(default_factory=dict)

    @property
    def yield_fraction(self) -> float:
        return self.n_pass / self.n_trials if self.n_trials else 0.0

    def percentile(self, quantity: str, q: float) -> float:
        """Percentile of a per-trial array ('nf_max_db', ...)."""
        return float(np.percentile(getattr(self, quantity), q))


def monte_carlo_yield(
    template: AmplifierTemplate,
    nominal: DesignVariables,
    tolerances: Optional[ToleranceSpec] = None,
    spec: Optional[DesignSpec] = None,
    n_trials: int = 50,
    seed: Optional[int] = 0,
    band_grid: Optional[FrequencyGrid] = None,
    guard_grid: Optional[FrequencyGrid] = None,
    nf_ship_limit_db: float = 0.8,
    gt_ship_limit_db: float = 13.0,
) -> YieldResult:
    """Sample component variations and evaluate the shipping yield.

    A board passes when NFmax <= *nf_ship_limit_db*, GTmin >=
    *gt_ship_limit_db*, and it is unconditionally stable (mu > 1).
    Return-loss and ripple are tracked in ``failures`` but judged
    against the (looser) shipping limits derived from *spec*.
    """
    tolerances = tolerances or ToleranceSpec()
    spec = spec or DesignSpec()
    band_grid = band_grid or design_grid(13)
    guard_grid = guard_grid or stability_grid(16)
    rng = np.random.default_rng(seed)

    nf_max = np.empty(n_trials)
    gt_min = np.empty(n_trials)
    mu_min = np.empty(n_trials)
    failures: Dict[str, int] = {"nf": 0, "gt": 0, "stability": 0}
    n_pass = 0

    for trial in range(n_trials):
        perturbed = _perturb(nominal, tolerances, rng)
        perf = template.evaluate(perturbed, band_grid, guard_grid)
        nf_max[trial] = perf.nf_max_db
        gt_min[trial] = perf.gt_min_db
        mu_min[trial] = perf.mu_min
        ok = True
        if perf.nf_max_db > nf_ship_limit_db:
            failures["nf"] += 1
            ok = False
        if perf.gt_min_db < gt_ship_limit_db:
            failures["gt"] += 1
            ok = False
        if perf.mu_min <= 1.0:
            failures["stability"] += 1
            ok = False
        if ok:
            n_pass += 1

    return YieldResult(
        n_trials=n_trials,
        n_pass=n_pass,
        nf_max_db=nf_max,
        gt_min_db=gt_min,
        mu_min=mu_min,
        failures=failures,
    )


def _perturb(nominal: DesignVariables, tolerances: ToleranceSpec,
             rng: np.random.Generator) -> DesignVariables:
    def rel(value, width):
        return value * (1.0 + width * (2.0 * rng.random() - 1.0))

    def absolute(value, width):
        return value + width * (2.0 * rng.random() - 1.0)

    perturbed = DesignVariables(
        vgs=absolute(nominal.vgs, tolerances.vgs_volts),
        vds=absolute(nominal.vds, tolerances.vds_volts),
        l_in=rel(nominal.l_in, tolerances.inductor),
        l_deg=rel(nominal.l_deg, tolerances.inductor),
        c_in=rel(nominal.c_in, tolerances.capacitor),
        c_out=rel(nominal.c_out, tolerances.capacitor),
        l_choke=rel(nominal.l_choke, tolerances.inductor),
        r_stab=rel(nominal.r_stab, tolerances.resistor),
        r_sh=rel(nominal.r_sh, tolerances.resistor),
        c_sh=rel(nominal.c_sh, tolerances.capacitor),
    )
    return perturbed
