"""Monte-Carlo tolerance (yield) analysis of a finished design.

After snapping to catalogue values, a board house populates parts with
manufacturing tolerances and the bias point drifts with the regulator.
This module samples those variations and reports the fraction of boards
meeting the shipping spec — the standard post-design step that decides
whether the optimized point is *robust*, not just optimal.

The default ``engine="batched"`` evaluates every sampled board in one
batched MNA factorization (via
:meth:`repro.core.engine.CompiledTemplate.performance_batch_physical_isolated`
on a Monte-Carlo :class:`~repro.optimize.robust.CornerSet` that draws
the exact RNG sequence of the scalar loop); ``engine="scalar"`` keeps
the original one-full-evaluation-per-trial reference path, and the two
agree on per-trial figures to well under 1e-9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.core.bands import design_grid, stability_grid
from repro.core.objectives import DesignSpec
from repro.rf.frequency import FrequencyGrid

__all__ = ["ToleranceSpec", "YieldResult", "monte_carlo_yield"]

#: Relative tolerance fields (uniform half-widths) vs absolute volts.
_RELATIVE_FIELDS = ("inductor", "capacitor", "resistor")
_ABSOLUTE_FIELDS = ("vgs_volts", "vds_volts")


@dataclass(frozen=True)
class ToleranceSpec:
    """1-sigma-equivalent uniform tolerances per element class.

    Values are relative half-widths of a uniform distribution (0.05 =
    +/-5 %), except the bias entries which are absolute volts.  All
    fields are validated on construction: negative or non-finite
    tolerances are rejected by name, and a relative tolerance >= 1
    (a part that can vanish or reverse sign) is not a tolerance.
    """

    inductor: float = 0.05
    capacitor: float = 0.05
    resistor: float = 0.01
    vgs_volts: float = 0.01
    vds_volts: float = 0.05

    def __post_init__(self):
        for name in _RELATIVE_FIELDS + _ABSOLUTE_FIELDS:
            value = getattr(self, name)
            if not np.isfinite(value):
                raise ValueError(
                    f"{name} must be finite, got {value!r}")
            if value < 0.0:
                raise ValueError(
                    f"{name} must be non-negative, got {value!r}")
        for name in _RELATIVE_FIELDS:
            if getattr(self, name) >= 1.0:
                raise ValueError(
                    f"{name} is a relative half-width and must be < 1, "
                    f"got {getattr(self, name)!r}")

    @classmethod
    def tight(cls) -> "ToleranceSpec":
        """Premium parts: 2 % reactives, 1 % resistors."""
        return cls(inductor=0.02, capacitor=0.02, resistor=0.01,
                   vgs_volts=0.005, vds_volts=0.02)

    @classmethod
    def loose(cls) -> "ToleranceSpec":
        """Cheap parts: 10 % reactives, 5 % resistors."""
        return cls(inductor=0.10, capacitor=0.10, resistor=0.05,
                   vgs_volts=0.02, vds_volts=0.1)


@dataclass
class YieldResult:
    """Outcome of a Monte-Carlo yield run."""

    n_trials: int
    n_pass: int
    nf_max_db: np.ndarray       # per-trial worst-case NF
    gt_min_db: np.ndarray       # per-trial worst-case GT
    mu_min: np.ndarray
    failures: Dict[str, int] = field(default_factory=dict)

    #: Per-trial array attributes :meth:`percentile` accepts.
    PERCENTILE_QUANTITIES = ("nf_max_db", "gt_min_db", "mu_min")

    @property
    def yield_fraction(self) -> float:
        return self.n_pass / self.n_trials if self.n_trials else 0.0

    def percentile(self, quantity: str, q: float) -> float:
        """Percentile of a per-trial array ('nf_max_db', ...)."""
        if quantity not in self.PERCENTILE_QUANTITIES:
            raise ValueError(
                f"unknown quantity {quantity!r}; valid quantities: "
                f"{', '.join(self.PERCENTILE_QUANTITIES)}")
        return float(np.percentile(getattr(self, quantity), q))


def monte_carlo_yield(
    template: AmplifierTemplate,
    nominal: DesignVariables,
    tolerances: Optional[ToleranceSpec] = None,
    spec: Optional[DesignSpec] = None,
    n_trials: int = 50,
    seed: Optional[int] = 0,
    band_grid: Optional[FrequencyGrid] = None,
    guard_grid: Optional[FrequencyGrid] = None,
    nf_ship_limit_db: float = 0.8,
    gt_ship_limit_db: float = 13.0,
    engine: str = "batched",
    compiled=None,
) -> YieldResult:
    """Sample component variations and evaluate the shipping yield.

    A board passes when NFmax <= *nf_ship_limit_db*, GTmin >=
    *gt_ship_limit_db*, and it is unconditionally stable (mu > 1).
    Return-loss and ripple are tracked in ``failures`` but judged
    against the (looser) shipping limits derived from *spec*.

    ``engine="batched"`` (default) solves all trials in one batched MNA
    factorization; trials whose solve fails quarantine through the
    failure taxonomy and are counted under ``failures["quarantined"]``
    (a board that cannot be solved certainly does not ship).
    ``engine="scalar"`` is the per-trial reference loop; both engines
    consume the identical RNG stream, so per-trial figures agree to
    well under 1e-9.  Pass a prebuilt
    :class:`~repro.core.engine.CompiledTemplate` via *compiled* (its
    grids take precedence) to amortize compilation across calls.
    """
    if engine not in ("batched", "scalar"):
        raise ValueError(
            f"unknown engine {engine!r}; use 'batched' or 'scalar'")
    tolerances = tolerances or ToleranceSpec()
    spec = spec or DesignSpec()
    band_grid = band_grid or design_grid(13)
    guard_grid = guard_grid or stability_grid(16)
    rng = np.random.default_rng(seed)

    failures: Dict[str, int] = {"nf": 0, "gt": 0, "stability": 0}

    if engine == "batched":
        nf_max, gt_min, mu_min, n_quarantined = _batched_trials(
            template, nominal, tolerances, n_trials, rng,
            band_grid, guard_grid, compiled,
        )
        if n_quarantined:
            failures["quarantined"] = n_quarantined
    else:
        nf_max = np.empty(n_trials)
        gt_min = np.empty(n_trials)
        mu_min = np.empty(n_trials)
        for trial in range(n_trials):
            perturbed = _perturb(nominal, tolerances, rng)
            perf = template.evaluate(perturbed, band_grid, guard_grid)
            nf_max[trial] = perf.nf_max_db
            gt_min[trial] = perf.gt_min_db
            mu_min[trial] = perf.mu_min

    n_pass = 0
    for trial in range(n_trials):
        ok = True
        if nf_max[trial] > nf_ship_limit_db:
            failures["nf"] += 1
            ok = False
        if gt_min[trial] < gt_ship_limit_db:
            failures["gt"] += 1
            ok = False
        if mu_min[trial] <= 1.0:
            failures["stability"] += 1
            ok = False
        if ok:
            n_pass += 1

    return YieldResult(
        n_trials=n_trials,
        n_pass=n_pass,
        nf_max_db=nf_max,
        gt_min_db=gt_min,
        mu_min=mu_min,
        failures=failures,
    )


def _batched_trials(template, nominal, tolerances, n_trials, rng,
                    band_grid, guard_grid, compiled):
    """All Monte-Carlo trials as one fault-isolated batched solve."""
    # Imported here: robust.py imports ToleranceSpec from this module.
    from repro.core.engine import CompiledTemplate
    from repro.optimize.robust import CornerSet, PENALTY_NF_DB, PENALTY_GT_DB

    corners = CornerSet.monte_carlo(tolerances, n_trials, rng)
    x_trials = corners.apply(nominal.to_vector())
    if compiled is None:
        compiled = CompiledTemplate(template, band_grid, guard_grid,
                                    verify=False, solver="auto")
    batch, trial_failures, _ = (
        compiled.performance_batch_physical_isolated(x_trials))
    quarantined = np.array([f is not None for f in trial_failures])
    nf_max = np.asarray(batch.nf_max_db, dtype=float).copy()
    gt_min = np.asarray(batch.gt_min_db, dtype=float).copy()
    mu_min = np.asarray(batch.mu_min, dtype=float).copy()
    # A quarantined board fails every shipping check by construction.
    nf_max[quarantined] = PENALTY_NF_DB
    gt_min[quarantined] = PENALTY_GT_DB
    mu_min[quarantined] = 0.0
    return nf_max, gt_min, mu_min, int(np.sum(quarantined))


def _perturb(nominal: DesignVariables, tolerances: ToleranceSpec,
             rng: np.random.Generator) -> DesignVariables:
    """One scalar trial's perturbed board.

    Draws exactly one uniform variate per design variable in
    :data:`DesignVariables.NAMES` order — the contract
    :meth:`~repro.optimize.robust.CornerSet.monte_carlo` matches so the
    batched engine perturbs bit-identical boards from the same
    generator.
    """
    def rel(value, width):
        return value * (1.0 + width * (2.0 * rng.random() - 1.0))

    def absolute(value, width):
        return value + width * (2.0 * rng.random() - 1.0)

    perturbed = DesignVariables(
        vgs=absolute(nominal.vgs, tolerances.vgs_volts),
        vds=absolute(nominal.vds, tolerances.vds_volts),
        l_in=rel(nominal.l_in, tolerances.inductor),
        l_deg=rel(nominal.l_deg, tolerances.inductor),
        c_in=rel(nominal.c_in, tolerances.capacitor),
        c_out=rel(nominal.c_out, tolerances.capacitor),
        l_choke=rel(nominal.l_choke, tolerances.inductor),
        r_stab=rel(nominal.r_stab, tolerances.resistor),
        r_sh=rel(nominal.r_sh, tolerances.resistor),
        c_sh=rel(nominal.c_sh, tolerances.capacitor),
    )
    return perturbed
