"""Multi-objective problem formulation for the GNSS LNA.

The paper's trade-off is **noise figure vs transducer power gain**
over the composite 1.1-1.7 GHz band.  We minimize:

* ``f1 = max NF(f)``  [dB] over the design band, and
* ``f2 = -min GT(f)`` [dB] (maximizing the worst-case gain),

subject to the hard design constraints a shippable preamplifier must
satisfy:

* unconditional stability, ``mu >= mu_margin`` over 0.1-6 GHz;
* input and output return loss better than ``rl_spec_db`` in band;
* gain ripple below ``ripple_spec_db``;
* drain current below ``ids_max`` (the antenna unit is phantom-fed).

Every optimizer in experiment E5 consumes the same
:class:`~repro.optimize.goal_attainment.MultiObjectiveProblem` built
here, with one shared memoized evaluator so evaluation counts are
comparable.
"""

from __future__ import annotations

import hashlib
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs import journal as _obs_journal
from repro.obs import metrics as _obs_metrics
from repro.obs import tracer as _obs_tracer

from repro.core.amplifier import (
    AmplifierPerformance,
    AmplifierTemplate,
    DesignVariables,
)
from repro.core.bands import design_grid, stability_grid
from repro.core.engine import (
    CompiledTemplate,
    CompileError,
    _performance_is_finite,
)
from repro.optimize.faults import (
    CATEGORY_NON_FINITE,
    EvaluationFailure,
    FAILURE_EXCEPTIONS,
    RunHealth,
    classify_exception,
)
from repro.optimize.goal_attainment import MultiObjectiveProblem
from repro.rf.frequency import FrequencyGrid

__all__ = ["DesignSpec", "LnaEvaluator", "build_lna_problem"]


def _stable_describe(obj, depth: int = 4) -> str:
    """Deterministic structural description of *obj* for fingerprinting.

    Recurses through numbers, strings, arrays, sequences, mappings and
    plain-attribute objects; anything deeper (or opaque) contributes
    only its type name, never its memory address.
    """
    if isinstance(obj, (bool, int, float, complex, str, type(None))):
        return repr(obj)
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha1(
            np.ascontiguousarray(obj).tobytes()
        ).hexdigest()
        return f"ndarray{obj.shape}{obj.dtype}:{digest}"
    if isinstance(obj, (list, tuple)):
        inner = ",".join(_stable_describe(v, depth - 1) for v in obj)
        return f"[{inner}]"
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: str(kv[0]))
        inner = ",".join(
            f"{key!s}={_stable_describe(value, depth - 1)}"
            for key, value in items
        )
        return f"{{{inner}}}"
    if depth <= 0:
        return type(obj).__name__
    attrs = getattr(obj, "__dict__", None)
    if attrs:
        return f"{type(obj).__name__}{_stable_describe(attrs, depth - 1)}"
    return type(obj).__name__


@dataclass(frozen=True)
class DesignSpec:
    """Hard constraints of the preamplifier.

    The stability and ripple margins are deliberately tighter than the
    shipping requirement (mu > 1, ripple < 5 dB) so that snapping the
    optimized values to the E24 catalogue cannot push the built board
    out of spec.
    """

    rl_spec_db: float = 9.0        # min in-band return loss (both ports)
    ripple_spec_db: float = 4.0    # max in-band gain ripple
    mu_margin: float = 1.10        # unconditional stability margin
    ids_max: float = 80e-3         # supply budget [A]


class LnaEvaluator:
    """Memoized map from a design vector to amplifier figures of merit.

    Objectives and constraints share one circuit solve per design
    point; the quantized-key LRU cache makes the SLSQP
    finite-difference pattern (objective then constraints at the same
    x) cost one evaluation, and lets the multi-stage improved
    goal-attainment flow revisit earlier iterates for free.  Keys
    quantize the unit vector to 12 decimals — far below the ~1.5e-8
    finite-difference step, so distinct probe points never collide —
    normalize ``-0.0`` to ``+0.0`` (their byte patterns differ), and
    are prefixed with a fingerprint of the template + frequency grids,
    so evaluators over different amplifiers can never serve each
    other's stale entries (and :meth:`invalidate_cache` drops the
    store if the template is mutated in place).

    By default evaluations run through the compiled batched engine
    (:class:`repro.core.engine.CompiledTemplate`), which matches the
    scalar path to ~1e-10; pass ``engine="scalar"`` to force the
    original per-candidate circuit build.

    Failure isolation: with ``on_failure="penalty"`` (the default) a
    candidate whose solve raises (``DcConvergenceError``, singular
    matrices, bad bias) or produces non-finite figures yields the
    finite worst-case :meth:`AmplifierPerformance.penalty` record —
    carrying a structured :class:`EvaluationFailure` — instead of an
    exception.  Failures are counted by category in ``self.health``,
    logged (capped) in ``self.failure_log``, and **never cached**, so a
    transiently failing design point is re-attempted on revisit.  Pass
    ``on_failure="raise"`` to restore the raising behavior.
    """

    def __init__(self, template: AmplifierTemplate,
                 band_grid: Optional[FrequencyGrid] = None,
                 guard_grid: Optional[FrequencyGrid] = None,
                 engine: str = "compiled",
                 cache_size: int = 4096,
                 on_failure: str = "penalty",
                 max_failure_log: int = 64):
        if on_failure not in ("penalty", "raise"):
            raise ValueError(
                f"unknown on_failure {on_failure!r}; "
                f"use 'penalty' or 'raise'"
            )
        self.template = template
        self.band_grid = band_grid or design_grid(17)
        self.guard_grid = guard_grid or stability_grid(24)
        self.on_failure = on_failure
        self.health = RunHealth()
        self.failure_log: List[EvaluationFailure] = []
        self.max_failure_log = int(max_failure_log)
        self.n_solves = 0
        self.cache_hits = 0
        self.cache_size = int(cache_size)
        self._cache: "OrderedDict[bytes, AmplifierPerformance]" = OrderedDict()
        self._fingerprint = self._compute_fingerprint()
        self._compiled: Optional[CompiledTemplate] = None
        if engine == "compiled":
            try:
                self._compiled = CompiledTemplate(
                    self.template, self.band_grid, self.guard_grid
                )
            except CompileError as exc:
                warnings.warn(
                    f"compiled engine rejected the template "
                    f"({exc}); falling back to the scalar path",
                    RuntimeWarning,
                )
        elif engine != "scalar":
            raise ValueError(
                f"unknown engine {engine!r}; use 'compiled' or 'scalar'"
            )

    @property
    def engine(self) -> str:
        """The evaluation path in use: ``"compiled"`` or ``"scalar"``."""
        return "compiled" if self._compiled is not None else "scalar"

    def _compute_fingerprint(self) -> bytes:
        """Hash of the template + grids that parameterize every solve."""
        description = _stable_describe({
            "template": self.template,
            "band_grid": self.band_grid,
            "guard_grid": self.guard_grid,
        })
        return hashlib.sha1(description.encode("utf-8")).digest()

    def invalidate_cache(self) -> None:
        """Drop cached results and re-fingerprint the template.

        Call after mutating the template (or its device) in place so
        stale figures of merit cannot be served for the new circuit.
        """
        self._cache.clear()
        self._fingerprint = self._compute_fingerprint()

    def _key(self, unit_x: np.ndarray) -> bytes:
        quantized = np.round(np.asarray(unit_x, dtype=float), 12)
        # -0.0 and +0.0 compare equal but differ bytewise; fold them.
        quantized = quantized + 0.0
        return self._fingerprint + quantized.tobytes()

    def _remember(self, key: bytes, perf: AmplifierPerformance):
        self._cache[key] = perf
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def _lookup(self, key: bytes) -> Optional[AmplifierPerformance]:
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            _obs_metrics.inc("evaluator.cache_hits")
        return cached

    def _solve_one(self, unit_x: np.ndarray) -> AmplifierPerformance:
        if self._compiled is not None:
            return self._compiled.performance(unit_x)
        variables = DesignVariables.from_unit(unit_x)
        return self.template.evaluate(
            variables, self.band_grid, self.guard_grid
        )

    def _record_failure(self, failure: EvaluationFailure):
        self.health.record(failure.category)
        if len(self.failure_log) < self.max_failure_log:
            self.failure_log.append(failure)
        _obs_journal.emit("evaluation_failure",
                          category=failure.category,
                          message=str(failure.message)[:200])

    def _penalty(self, failure: EvaluationFailure) -> AmplifierPerformance:
        self._record_failure(failure)
        return AmplifierPerformance.penalty(self.band_grid, failure)

    def _solve_one_guarded(self, unit_x: np.ndarray) -> AmplifierPerformance:
        """Scalar-path solve that maps failures to penalty records."""
        try:
            perf = self._solve_one(unit_x)
        except FAILURE_EXCEPTIONS as exc:
            return self._penalty(EvaluationFailure(
                classify_exception(exc), str(exc), x=unit_x.copy()
            ))
        if not _performance_is_finite(perf):
            return self._penalty(EvaluationFailure(
                CATEGORY_NON_FINITE,
                "evaluation produced non-finite figures of merit",
                x=unit_x.copy(),
            ))
        return perf

    def performance(self, unit_x: np.ndarray) -> AmplifierPerformance:
        """Figures of merit at a *unit-box* design vector."""
        unit_x = np.asarray(unit_x, dtype=float)
        key = self._key(unit_x)
        cached = self._lookup(key)
        if cached is not None:
            return cached
        _obs_metrics.inc("evaluator.cache_misses")
        with _obs_tracer.span("evaluator.performance"):
            return self._performance_miss(key, unit_x)

    def _performance_miss(self, key: bytes,
                          unit_x: np.ndarray) -> AmplifierPerformance:
        if self.on_failure == "raise":
            perf = self._solve_one(unit_x)
            self.n_solves += 1
            _obs_metrics.inc("evaluator.solves")
            self._remember(key, perf)
            return perf
        if self._compiled is not None:
            batch, failures, n_fallbacks = (
                self._compiled.performance_batch_isolated(unit_x[None, :])
            )
            self.n_solves += 1
            _obs_metrics.inc("evaluator.solves")
            self.health.engine_fallbacks += n_fallbacks
            if failures[0] is not None:
                return self._penalty(failures[0])
            perf = batch.candidate(0)
        else:
            perf = self._solve_one_guarded(unit_x)
            self.n_solves += 1
            _obs_metrics.inc("evaluator.solves")
            if perf.is_failure:
                return perf
        self._remember(key, perf)
        return perf

    def performance_batch(
        self, unit_x: np.ndarray
    ) -> List[AmplifierPerformance]:
        """Figures of merit for a ``(B, n_vars)`` stack of unit vectors.

        Cache hits are served from the LRU store; the misses are solved
        in **one** batched MNA factorization when the compiled engine
        is active (duplicate rows within the batch are solved once).
        """
        unit_x = np.atleast_2d(np.asarray(unit_x, dtype=float))
        results: List[Optional[AmplifierPerformance]] = [None] * len(unit_x)
        miss_rows: "OrderedDict[bytes, List[int]]" = OrderedDict()
        for i, x in enumerate(unit_x):
            key = self._key(x)
            cached = self._lookup(key)
            if cached is not None:
                results[i] = cached
            else:
                miss_rows.setdefault(key, []).append(i)
        if miss_rows:
            first_rows = [rows[0] for rows in miss_rows.values()]
            _obs_metrics.inc("evaluator.cache_misses", len(first_rows))
            with _obs_tracer.span("evaluator.performance_batch",
                                  batch=len(unit_x),
                                  misses=len(first_rows)):
                solved = self._solve_misses(unit_x, first_rows)
            for (key, rows), perf in zip(miss_rows.items(), solved):
                self.n_solves += 1
                _obs_metrics.inc("evaluator.solves")
                if not perf.is_failure:
                    self._remember(key, perf)
                for i in rows:
                    results[i] = perf
        return results

    def _solve_misses(self, unit_x: np.ndarray,
                      first_rows: List[int]) -> List[AmplifierPerformance]:
        """Solve the de-duplicated cache misses of a batch call."""
        if self.on_failure == "raise":
            if self._compiled is not None:
                batch = self._compiled.performance_batch(unit_x[first_rows])
                return [batch.candidate(k) for k in range(len(first_rows))]
            return [self._solve_one(unit_x[i]) for i in first_rows]
        if self._compiled is not None:
            batch, failures, n_fallbacks = (
                self._compiled.performance_batch_isolated(
                    unit_x[first_rows]
                )
            )
            self.health.engine_fallbacks += n_fallbacks
            solved = []
            for k in range(len(first_rows)):
                if failures[k] is not None:
                    solved.append(self._penalty(failures[k]))
                else:
                    solved.append(batch.candidate(k))
            return solved
        return [self._solve_one_guarded(unit_x[i]) for i in first_rows]


def build_lna_problem(template: AmplifierTemplate,
                      spec: Optional[DesignSpec] = None,
                      evaluator: Optional[LnaEvaluator] = None,
                      ) -> MultiObjectiveProblem:
    """The (NFmax, -GTmin) problem with the spec's hard constraints.

    The problem is posed in the **unit box** [0, 1]^n; use
    :meth:`DesignVariables.from_unit` to decode solution vectors.  In
    addition to the scalar callables the problem carries
    ``objectives_batch`` / ``constraints_batch`` — population-level
    maps an optimizer can call with a ``(B, n)`` matrix to amortize the
    MNA factorization across candidates.
    """
    spec = spec or DesignSpec()
    evaluator = evaluator or LnaEvaluator(template)

    def _objective_row(perf: AmplifierPerformance) -> List[float]:
        return [perf.nf_max_db, -perf.gt_min_db]

    def _constraint_row(perf: AmplifierPerformance) -> List[float]:
        return [
            float(np.max(perf.s11_db)) + spec.rl_spec_db,   # S11 <= -RL
            float(np.max(perf.s22_db)) + spec.rl_spec_db,   # S22 <= -RL
            spec.mu_margin - perf.mu_min,                   # mu >= margin
            perf.gt_ripple_db - spec.ripple_spec_db,        # ripple <= spec
            (perf.ids - spec.ids_max) / spec.ids_max,       # Ids <= budget
        ]

    def objectives(x: np.ndarray) -> np.ndarray:
        return np.array(_objective_row(evaluator.performance(x)))

    def constraints(x: np.ndarray) -> np.ndarray:
        return np.array(_constraint_row(evaluator.performance(x)))

    def objectives_batch(x: np.ndarray) -> np.ndarray:
        perfs = evaluator.performance_batch(x)
        return np.array([_objective_row(p) for p in perfs])

    def constraints_batch(x: np.ndarray) -> np.ndarray:
        perfs = evaluator.performance_batch(x)
        return np.array([_constraint_row(p) for p in perfs])

    n_vars = len(DesignVariables.NAMES)
    return MultiObjectiveProblem(
        objectives=objectives,
        n_objectives=2,
        lower=np.zeros(n_vars),
        upper=np.ones(n_vars),
        constraints=constraints,
        objective_names=("NFmax_dB", "-GTmin_dB"),
        objectives_batch=objectives_batch,
        constraints_batch=constraints_batch,
    )
