"""Multi-objective problem formulation for the GNSS LNA.

The paper's trade-off is **noise figure vs transducer power gain**
over the composite 1.1-1.7 GHz band.  We minimize:

* ``f1 = max NF(f)``  [dB] over the design band, and
* ``f2 = -min GT(f)`` [dB] (maximizing the worst-case gain),

subject to the hard design constraints a shippable preamplifier must
satisfy:

* unconditional stability, ``mu >= mu_margin`` over 0.1-6 GHz;
* input and output return loss better than ``rl_spec_db`` in band;
* gain ripple below ``ripple_spec_db``;
* drain current below ``ids_max`` (the antenna unit is phantom-fed).

Every optimizer in experiment E5 consumes the same
:class:`~repro.optimize.goal_attainment.MultiObjectiveProblem` built
here, with one shared memoized evaluator so evaluation counts are
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.amplifier import (
    AmplifierPerformance,
    AmplifierTemplate,
    DesignVariables,
)
from repro.core.bands import design_grid, stability_grid
from repro.optimize.goal_attainment import MultiObjectiveProblem
from repro.rf.frequency import FrequencyGrid

__all__ = ["DesignSpec", "LnaEvaluator", "build_lna_problem"]


@dataclass(frozen=True)
class DesignSpec:
    """Hard constraints of the preamplifier.

    The stability and ripple margins are deliberately tighter than the
    shipping requirement (mu > 1, ripple < 5 dB) so that snapping the
    optimized values to the E24 catalogue cannot push the built board
    out of spec.
    """

    rl_spec_db: float = 9.0        # min in-band return loss (both ports)
    ripple_spec_db: float = 4.0    # max in-band gain ripple
    mu_margin: float = 1.10        # unconditional stability margin
    ids_max: float = 80e-3         # supply budget [A]


class LnaEvaluator:
    """Memoized map from a design vector to amplifier figures of merit.

    Objectives and constraints share one circuit solve per design
    point; the single-entry cache makes the SLSQP finite-difference
    pattern (objective then constraints at the same x) cost one
    evaluation, exactly as in the goal-attainment counter.
    """

    def __init__(self, template: AmplifierTemplate,
                 band_grid: FrequencyGrid = None,
                 guard_grid: FrequencyGrid = None):
        self.template = template
        self.band_grid = band_grid or design_grid(17)
        self.guard_grid = guard_grid or stability_grid(24)
        self.n_solves = 0
        self._last_key = None
        self._last_value: AmplifierPerformance = None

    def performance(self, unit_x: np.ndarray) -> AmplifierPerformance:
        """Figures of merit at a *unit-box* design vector."""
        unit_x = np.asarray(unit_x, dtype=float)
        key = unit_x.tobytes()
        if key != self._last_key:
            variables = DesignVariables.from_unit(unit_x)
            self._last_value = self.template.evaluate(
                variables, self.band_grid, self.guard_grid
            )
            self._last_key = key
            self.n_solves += 1
        return self._last_value


def build_lna_problem(template: AmplifierTemplate,
                      spec: DesignSpec = None,
                      evaluator: LnaEvaluator = None) -> MultiObjectiveProblem:
    """The (NFmax, -GTmin) problem with the spec's hard constraints.

    The problem is posed in the **unit box** [0, 1]^n; use
    :meth:`DesignVariables.from_unit` to decode solution vectors.
    """
    spec = spec or DesignSpec()
    evaluator = evaluator or LnaEvaluator(template)

    def objectives(x: np.ndarray) -> np.ndarray:
        perf = evaluator.performance(x)
        return np.array([perf.nf_max_db, -perf.gt_min_db])

    def constraints(x: np.ndarray) -> np.ndarray:
        perf = evaluator.performance(x)
        return np.array([
            float(np.max(perf.s11_db)) + spec.rl_spec_db,   # S11 <= -RL
            float(np.max(perf.s22_db)) + spec.rl_spec_db,   # S22 <= -RL
            spec.mu_margin - perf.mu_min,                   # mu >= margin
            perf.gt_ripple_db - spec.ripple_spec_db,        # ripple <= spec
            (perf.ids - spec.ids_max) / spec.ids_max,       # Ids <= budget
        ])

    n_vars = len(DesignVariables.NAMES)
    return MultiObjectiveProblem(
        objectives=objectives,
        n_objectives=2,
        lower=np.zeros(n_vars),
        upper=np.ones(n_vars),
        constraints=constraints,
        objective_names=("NFmax_dB", "-GTmin_dB"),
    )
