"""Receiver-chain noise budget: why the antenna preamplifier exists.

The paper's motivation: the preamplifier sits at the antenna, in front
of the coax downlead and the splitter feeding multiple receivers
(GPS + GLONASS + Galileo + BeiDou units).  This module composes the
whole chain with full noise bookkeeping and reports the system noise
figure at each receiver input — with and without the preamplifier —
through the same correlation-matrix machinery as the design flow.

The splitter path toward one receiver is obtained by terminating the
other output in a matched (noisy, ambient-temperature) load and taking
the resulting passive two-port; its equilibrium noise is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.amplifier import AmplifierTemplate, DesignVariables
from repro.passives.coax import CoaxLine
from repro.passives.splitter import WilkinsonDivider
from repro.rf.frequency import FrequencyGrid
from repro.rf.noise import NoisyTwoPort
from repro.rf.nport import NPort

__all__ = ["SystemBudget", "BudgetResult"]


@dataclass
class BudgetResult:
    """System figures at the receiver input plane."""

    frequency: FrequencyGrid
    nf_with_preamp_db: np.ndarray
    nf_without_preamp_db: np.ndarray
    gain_with_preamp_db: np.ndarray
    gain_without_preamp_db: np.ndarray

    def improvement_db(self) -> np.ndarray:
        """NF improvement the preamplifier buys, per frequency."""
        return self.nf_without_preamp_db - self.nf_with_preamp_db

    def summary(self) -> Dict[str, float]:
        return {
            "NF_with_preamp_max_dB": float(np.max(self.nf_with_preamp_db)),
            "NF_without_preamp_max_dB": float(
                np.max(self.nf_without_preamp_db)
            ),
            "improvement_min_dB": float(np.min(self.improvement_db())),
            "gain_with_preamp_min_dB": float(
                np.min(self.gain_with_preamp_db)
            ),
        }


class SystemBudget:
    """Antenna -> [preamp] -> coax downlead -> splitter -> receiver."""

    def __init__(self, template: AmplifierTemplate,
                 variables: DesignVariables,
                 downlead: CoaxLine,
                 splitter: Optional[WilkinsonDivider] = None,
                 receiver_port: str = "p2"):
        self.template = template
        self.variables = variables
        self.downlead = downlead
        self.splitter = splitter
        self.receiver_port = receiver_port

    def _splitter_path(self, frequency: FrequencyGrid) -> NoisyTwoPort:
        """Common -> one receiver, the other output matched-terminated."""
        result = self.splitter.solve(frequency)
        nport = NPort.from_acresult(result)
        other = "p3" if self.receiver_port == "p2" else "p2"
        path = nport.terminate(other, 0.0).as_twoport("splitter_path")
        return NoisyTwoPort.from_passive(
            path, self.splitter.substrate.temperature
        )

    def evaluate(self, frequency: FrequencyGrid) -> BudgetResult:
        """NF and gain at the receiver plane, with/without the preamp."""
        coax = self.downlead.as_noisy_twoport(frequency)
        passive_chain = coax
        if self.splitter is not None:
            passive_chain = coax ** self._splitter_path(frequency)

        preamp = self.template.solve(self.variables, frequency)
        full_chain = preamp ** passive_chain

        def figures(chain: NoisyTwoPort):
            nf = chain.noise_figure_db()
            gain = 20.0 * np.log10(
                np.maximum(np.abs(chain.network.s[:, 1, 0]), 1e-12)
            )
            return nf, gain

        nf_with, gain_with = figures(full_chain)
        nf_without, gain_without = figures(passive_chain)
        return BudgetResult(
            frequency=frequency,
            nf_with_preamp_db=nf_with,
            nf_without_preamp_db=nf_without,
            gain_with_preamp_db=gain_with,
            gain_without_preamp_db=gain_without,
        )
