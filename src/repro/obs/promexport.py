"""Prometheus text-format export for the metrics registry.

The :class:`~repro.obs.metrics.Metrics` registry already holds the
fleet's economics — solver counters, cache hits, queue-depth gauges.
This module renders them in the Prometheus exposition format
(text/plain, version 0.0.4) two ways, both stdlib-only:

* :meth:`PromExporter.write_textfile` — an atomic snapshot for the
  node-exporter *textfile collector* (``*.prom`` drop directory), the
  right shape for the :class:`~repro.service.supervisor.JobService`
  supervisor sweep: one ``os.replace`` per sweep, scrape-safe because
  the collector never sees a half-written file.
* :meth:`PromExporter.serve` — a `ThreadingHTTPServer` on a daemon
  thread answering any ``GET`` with the current rendering, for direct
  scraping of a live service without a node exporter in between.

Besides the registry, an exporter carries *collectors*: callables
returning labelled samples ``(name, labels, value)`` evaluated at
render time.  The job service uses one to publish per-job generation
progress and queue depth by state — values that live in the queue's
lease records, not in the registry.

Naming follows the Prometheus conventions: counters get a ``_total``
suffix, every name is prefixed with the exporter namespace, and any
character outside ``[a-zA-Z0-9_:]`` (the registry uses dots) becomes
``_`` — ``evaluator.cache_hits`` exports as
``repro_evaluator_cache_hits_total``.
"""

from __future__ import annotations

import math
import os
import re
import tempfile
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import Metrics, get_metrics

__all__ = [
    "CONTENT_TYPE",
    "PromExporter",
    "render_prometheus",
]

#: The exposition content type Prometheus scrapers negotiate.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: One collector sample: ``(metric name, labels, value)``.
Sample = Tuple[str, Dict[str, str], float]

#: A collector yields samples at render time (live queue state etc.).
Collector = Callable[[], Iterable[Sample]]

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize_name(name: str) -> str:
    name = _NAME_BAD.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _sanitize_label(name: str) -> str:
    name = _LABEL_BAD.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\")
                 .replace("\n", r"\n")
                 .replace('"', r'\"'))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = [
        f'{_sanitize_label(str(key))}="'
        f'{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    ]
    return "{" + ",".join(parts) + "}"


def render_prometheus(metrics: Optional[Metrics] = None,
                      namespace: str = "repro",
                      collectors: Sequence[Collector] = ()) -> str:
    """One exposition-format document for *metrics* + *collectors*.

    Registry counters export as Prometheus counters (``_total``
    suffix), registry gauges and all collector samples as gauges.
    Samples sharing a metric name are grouped under one ``# TYPE``
    header, as the format requires.
    """
    metrics = metrics if metrics is not None else get_metrics()
    prefix = _sanitize_name(namespace) + "_" if namespace else ""
    lines: List[str] = []

    for name, value in sorted(metrics.counters().items()):
        metric = prefix + _sanitize_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    gauge_samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for name, value in metrics.gauges().items():
        metric = prefix + _sanitize_name(name)
        gauge_samples.setdefault(metric, []).append(({}, float(value)))
    for collector in collectors:
        try:
            samples = list(collector())
        except Exception:
            # A dead collector (queue torn down mid-scrape) must not
            # take the whole exposition with it.
            continue
        for name, labels, value in samples:
            metric = prefix + _sanitize_name(str(name))
            gauge_samples.setdefault(metric, []).append(
                (dict(labels or {}), float(value)))

    for metric in sorted(gauge_samples):
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in gauge_samples[metric]:
            lines.append(
                f"{metric}{_format_labels(labels)} {_format_value(value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


class PromExporter:
    """Render, snapshot, and serve one registry + collector set."""

    def __init__(self, metrics: Optional[Metrics] = None,
                 namespace: str = "repro",
                 collectors: Sequence[Collector] = ()):
        self.metrics = metrics
        self.namespace = namespace
        self._collectors: List[Collector] = list(collectors)
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def add_collector(self, collector: Collector) -> None:
        self._collectors.append(collector)

    def render(self) -> str:
        return render_prometheus(self.metrics, self.namespace,
                                 self._collectors)

    def write_textfile(self, path: str) -> None:
        """Atomic snapshot: scrapers see the old file or the new one."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".prom.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(self.render())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- http ---------------------------------------------------------------
    def serve(self, port: int = 0, host: str = "127.0.0.1") -> int:
        """Start the scrape endpoint; returns the bound port.

        ``port=0`` binds an ephemeral port (the test-friendly default).
        The server runs on a daemon thread and answers every ``GET``
        path with the current rendering, so both ``/metrics`` and
        ``/`` scrape configurations work.
        """
        if self._server is not None:
            return self._server.server_address[1]
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (http.server API)
                body = exporter.render().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-scrape noise
                pass

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="prom-exporter", daemon=True)
        self._thread.start()
        return self._server.server_address[1]

    @property
    def port(self) -> Optional[int]:
        return (None if self._server is None
                else self._server.server_address[1])

    def close(self) -> None:
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "PromExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
