"""Flight-recorder run journal: a crash-safe, append-only JSONL stream.

A long optimization run's evidence — convergence telemetry, failures,
pool rebuilds, guard violations — used to live only in memory until an
ad-hoc export at the end, so a crash (or a resume on another machine)
lost the story.  :class:`RunJournal` fixes that the way real flight
recorders do: every event is appended to ``journal.jsonl`` *as it
happens*, one JSON object per line, with three durability guarantees:

1. **Line-atomic appends.**  Each event is serialized to one line and
   written with a single buffered write + flush, so concurrent threads
   can never interleave half-lines and a reader only ever sees whole
   events plus at most one truncated tail.
2. **Batched fsync.**  The file is fsync'd every ``fsync_every`` events
   or ``fsync_interval_s`` seconds (and always on ``run_start`` /
   ``resume`` / ``run_end`` / ``close``), bounding both the data a
   power cut can lose and the syscall cost per event.
3. **Self-repairing reopen.**  Opening an existing journal truncates a
   trailing partial line (the signature of a mid-write kill) before
   appending, so a resumed run continues the *same* file contiguously
   and :func:`replay_journal` never chokes on the wreckage.

The journal doubles as an ``on_generation`` sink: pass it to any
optimizer in :mod:`repro.optimize` and each
:class:`~repro.obs.telemetry.GenerationRecord` becomes a ``generation``
event.  Because it implements ``state()``/``restore()`` it rides inside
optimizer checkpoints like :class:`~repro.obs.telemetry.TelemetryRecorder`
does; on restore it appends a ``resume`` marker whose
``n_generations`` tells :func:`replay_journal` how many of the already
journaled generation events the resumed run is about to re-emit — the
replayed trace is therefore contiguous and duplicate-free even though
the file itself is append-only.

Components deeper in the stack (the batching evaluator, the compiled
engine, the guards layer) report through the process-wide *active
journal* (:func:`set_journal` / :func:`emit`), mirroring the global
tracer/metrics pattern: when no journal is installed an ``emit`` call
is one global load and a ``None`` check — nothing on the hot path.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import platform
import sys
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import repro
from repro.obs.telemetry import GenerationRecord, TelemetryRecorder

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "RunJournal",
    "JournalReplay",
    "read_events",
    "read_tail_events",
    "replay_journal",
    "config_fingerprint",
    "get_journal",
    "set_journal",
    "set_thread_journal",
    "emit",
    "has_run_end",
]

#: Bump when the event vocabulary or field layout changes.
JOURNAL_SCHEMA_VERSION = 1

#: Environment knobs captured in every ``run_start`` header.
_ENV_KNOBS = ("REPRO_GUARDS", "REPRO_TRACE", "REPRO_RUNS_DIR")


class JournalError(RuntimeError):
    """A journal file cannot be written or replayed."""


def config_fingerprint(config) -> Optional[str]:
    """Deterministic sha1 of a JSON-serializable run configuration.

    ``None`` configs fingerprint to ``None``; non-serializable leaves
    degrade to their ``str()`` so the fingerprint never raises.
    """
    if config is None:
        return None
    text = json.dumps(config, sort_keys=True, default=str,
                      separators=(",", ":"))
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


def _json_default(value):
    """Last-resort serializer: numpy scalars/arrays, then ``str``."""
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return tolist()
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


class RunJournal:
    """Append-only JSONL event stream for one optimization run.

    Parameters
    ----------
    path:
        The ``journal.jsonl`` file.  An existing file is *continued*
        (sequence numbers keep counting) after its trailing partial
        line, if any, is truncated away.
    run_id:
        Identifier stamped into the ``run_start`` header; defaults to
        the name of the directory containing *path*.
    fsync_every, fsync_interval_s:
        Fsync batching: the file is fsync'd after this many appended
        events or this many seconds, whichever comes first.  Lifecycle
        events (``run_start``/``resume``/``run_end``) always fsync.
    snapshot_every:
        Every this many ``generation`` events, a ``snapshot`` event
        with the global metrics counters is appended automatically
        (``0`` disables the periodic snapshots).
    """

    def __init__(self, path: str, run_id: Optional[str] = None,
                 fsync_every: int = 16, fsync_interval_s: float = 1.0,
                 snapshot_every: int = 10):
        self.path = str(path)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        if run_id is None:
            run_id = os.path.basename(directory) or "run"
        self.run_id = str(run_id)
        self.fsync_every = max(int(fsync_every), 1)
        self.fsync_interval_s = float(fsync_interval_s)
        self.snapshot_every = int(snapshot_every)
        self.telemetry = TelemetryRecorder()
        self.repaired_partial_line = False
        self._lock = threading.Lock()
        self._pending_fsync = 0
        self._last_fsync = time.monotonic()
        self._emit_error_warned = False
        self._generation_events = 0
        # Effective generation-event count already durable in the file
        # (after resume-truncation semantics) — restore() uses it to
        # detect generation events a torn tail destroyed but the
        # checkpoint still holds.
        self._file_generations = 0
        self._seq = self._repair_and_scan()
        self._handle: Optional[io.BufferedWriter] = open(self.path, "ab")

    # -- crash repair -------------------------------------------------------
    def _repair_and_scan(self) -> int:
        """Truncate a partial trailing line; return the last used seq."""
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return 0
        if not data:
            return 0
        if not data.endswith(b"\n"):
            # A mid-write kill left a torn tail; drop it so appended
            # events cannot concatenate onto garbage.
            keep = data.rfind(b"\n") + 1
            with open(self.path, "r+b") as handle:
                handle.truncate(keep)
                handle.flush()
                os.fsync(handle.fileno())
            data = data[:keep]
            self.repaired_partial_line = True
        lines = [line for line in data.split(b"\n") if line]
        last_seq = 0
        for raw in lines:
            try:
                event = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            last_seq = int(event.get("seq", last_seq))
            kind = event.get("event")
            if kind == "generation":
                self._file_generations += 1
            elif kind == "resume":
                self._file_generations = min(
                    self._file_generations,
                    int(event.get("n_generations",
                                  self._file_generations)),
                )
        return last_seq if last_seq else len(lines)

    # -- core append --------------------------------------------------------
    def append(self, event: str, **fields) -> int:
        """Append one event line; returns its sequence number."""
        with self._lock:
            if self._handle is None:
                raise JournalError(
                    f"journal {self.path!r} is closed; cannot append "
                    f"{event!r}"
                )
            self._seq += 1
            record: Dict[str, object] = {
                "seq": self._seq,
                "t": round(time.time(), 6),
                "event": event,
            }
            record.update(fields)
            line = json.dumps(record, separators=(",", ":"),
                              default=_json_default) + "\n"
            self._handle.write(line.encode("utf-8"))
            self._handle.flush()
            self._pending_fsync += 1
            now = time.monotonic()
            if (self._pending_fsync >= self.fsync_every
                    or now - self._last_fsync >= self.fsync_interval_s):
                self._fsync_locked()
            return self._seq

    def _fsync_locked(self):
        os.fsync(self._handle.fileno())
        self._pending_fsync = 0
        self._last_fsync = time.monotonic()

    def flush(self, fsync: bool = True):
        """Flush buffered events; with *fsync*, force them to disk."""
        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            if fsync:
                self._fsync_locked()

    # -- lifecycle events ---------------------------------------------------
    def run_start(self, config=None, seeds=None, **extra) -> int:
        """Write the run header (environment, versions, fingerprint)."""
        env = {knob: os.environ[knob] for knob in _ENV_KNOBS
               if knob in os.environ}
        seq = self.append(
            "run_start",
            run_id=self.run_id,
            schema=JOURNAL_SCHEMA_VERSION,
            package_version=repro.__version__,
            python=platform.python_version(),
            platform=sys.platform,
            pid=os.getpid(),
            env=env,
            config=config,
            config_fingerprint=config_fingerprint(config),
            seeds=seeds,
            **extra,
        )
        self.flush(fsync=True)
        return seq

    def run_end(self, status: str = "completed", metrics=None,
                **extra) -> int:
        """Write the run trailer with the final metrics counters."""
        if metrics is None:
            from repro.obs.metrics import get_metrics
            metrics = get_metrics()
        seq = self.append(
            "run_end",
            run_id=self.run_id,
            status=status,
            n_generations=len(self.telemetry),
            counters=metrics.counters(),
            **extra,
        )
        self.flush(fsync=True)
        return seq

    def snapshot(self, metrics=None, tracer=None, **extra) -> int:
        """Append a point-in-time metrics (and span-count) snapshot."""
        if metrics is None:
            from repro.obs.metrics import get_metrics
            metrics = get_metrics()
        if tracer is None:
            from repro.obs.tracer import get_tracer
            tracer = get_tracer()
        fields: Dict[str, object] = {
            "counters": metrics.counters(),
            "gauges": metrics.gauges(),
        }
        if tracer.enabled:
            records = tracer.records
            fields["n_spans"] = len(records)
            fields["span_time_s"] = float(
                sum(r.duration_s for r in records if r.parent_id is None)
            )
        fields.update(extra)
        return self.append("snapshot", **fields)

    def record_health(self, health) -> int:
        """Append a ``health`` event from a :class:`RunHealth` record."""
        return self.append("health", **health.as_dict())

    # -- on_generation sink -------------------------------------------------
    def __call__(self, record: GenerationRecord) -> None:
        """Journal one generation (the ``on_generation`` protocol)."""
        self.telemetry(record)
        self.append("generation", **record.as_dict())
        self._file_generations += 1
        self._generation_events += 1
        if (self.snapshot_every > 0
                and self._generation_events % self.snapshot_every == 0):
            self.snapshot()

    def __len__(self) -> int:
        return len(self.telemetry)

    def is_contiguous(self) -> bool:
        """Contiguity of the in-memory trace (delegates to telemetry)."""
        return self.telemetry.is_contiguous()

    # -- checkpoint support -------------------------------------------------
    def state(self) -> Dict[str, object]:
        """Serializable snapshot for optimizer checkpoint payloads."""
        return self.telemetry.state()

    def restore(self, state: Dict[str, object]) -> None:
        """Rewind to a checkpoint snapshot and journal a resume marker.

        The journal file itself is append-only, so nothing is erased;
        instead the ``resume`` event records how many generation events
        are still valid — :func:`replay_journal` truncates the replayed
        trace to that length, and the re-emitted generations (which the
        resumed run produces deterministically) take their place.

        A torn tail can leave the *file* behind the *checkpoint* (the
        destroyed line was a generation event the checkpoint already
        covered).  The marker therefore keeps only what file and
        checkpoint agree on, and the checkpoint's records beyond that
        point are re-journaled so the replayed trace has no gap.
        """
        self.telemetry.restore(state)
        keep = min(len(self.telemetry), self._file_generations)
        self.append("resume", run_id=self.run_id, n_generations=keep)
        for record in self.telemetry.records[keep:]:
            self.append("generation", **record.as_dict())
        self._file_generations = len(self.telemetry)
        self.flush(fsync=True)

    # -- lifecycle ----------------------------------------------------------
    def close(self):
        """Flush, fsync, and close the file (idempotent)."""
        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            self._fsync_locked()
            self._handle.close()
            self._handle = None

    @property
    def closed(self) -> bool:
        return self._handle is None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


# ----------------------------------------------------------------------
# the process-wide active journal
# ----------------------------------------------------------------------

_active_journal: Optional[RunJournal] = None
_thread_journals = threading.local()


def get_journal() -> Optional[RunJournal]:
    """The installed flight recorder, or ``None`` when not recording.

    A journal installed for the *calling thread* with
    :func:`set_thread_journal` shadows the process-wide one — runner
    slots in :mod:`repro.service` use this so concurrent jobs record
    into their own journals instead of cross-talking through the
    global.
    """
    journal = getattr(_thread_journals, "journal", None)
    if journal is not None:
        return journal
    return _active_journal


def set_journal(journal: Optional[RunJournal]) -> Optional[RunJournal]:
    """Install (or clear, with ``None``) the active journal.

    Returns the previously active journal so scoped users can restore
    it (see :func:`repro.obs.runs.recorded_run`).
    """
    global _active_journal
    previous, _active_journal = _active_journal, journal
    return previous


def set_thread_journal(journal: Optional[RunJournal]
                       ) -> Optional[RunJournal]:
    """Install (or clear) a journal scoped to the *calling thread* only.

    While set, :func:`get_journal`/:func:`emit` in this thread resolve
    to it instead of the process-wide journal; other threads are
    unaffected.  Returns the thread's previously scoped journal so
    callers can restore it.
    """
    previous = getattr(_thread_journals, "journal", None)
    _thread_journals.journal = journal
    return previous


def emit(event: str, **fields) -> None:
    """Append an event to the active journal, if one is installed.

    The ambient hook instrumented components call: free (one
    thread-local + one global load) when no journal is active, and —
    because a failing flight recorder must never take the flight down
    — an ``OSError`` from the disk is downgraded to a one-time warning
    instead of propagating into the optimization run.
    """
    journal = get_journal()
    if journal is None:
        return
    try:
        journal.append(event, **fields)
    except (OSError, JournalError) as exc:
        if not journal._emit_error_warned:
            journal._emit_error_warned = True
            warnings.warn(
                f"run journal {journal.path!r} stopped recording: {exc}",
                stacklevel=2,
            )


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------

def has_run_end(path: str, tail_bytes: int = 65536) -> bool:
    """Whether the journal at *path* carries a ``run_end`` trailer.

    Reads only the final *tail_bytes* of the file, so probing hundreds
    of archived runs (the ``repro-obs gc`` orphan scan) stays cheap.
    The trailer is always among the last events of a finished run —
    a resumed run that finished later appended a fresh one.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            handle.seek(max(0, size - tail_bytes))
            tail = handle.read()
    except OSError:
        return False
    for raw in reversed(tail.split(b"\n")):
        if not raw:
            continue
        try:
            event = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(event, dict) and event.get("event") == "run_end":
            return True
    return False


def read_tail_events(path: str, n: int, event: Optional[str] = None,
                     block_size: int = 65536):
    """The last *n* events of a journal, without reading the whole file.

    Walks the file backwards in *block_size* chunks, parsing complete
    lines as they become available, and stops as soon as *n* matching
    events (optionally filtered by *event* type) are in hand — tailing
    the last 20 events of a multi-gigabyte journal costs one or two
    block reads.  Returns ``(events_in_file_order, truncated_tail)``
    with the same damage tolerance as :func:`read_events`: a torn final
    line is dropped and flagged, corrupt interior lines are skipped.
    """
    if n <= 0:
        return [], False
    with open(path, "rb") as handle:
        handle.seek(0, os.SEEK_END)
        position = handle.tell()
        truncated = False
        drop_last = True  # until the file's true final line is judged
        carry = b""       # partial first line of the processed region
        collected: List[dict] = []
        while position > 0 and len(collected) < n:
            step = min(block_size, position)
            position -= step
            handle.seek(position)
            block = handle.read(step) + carry
            lines = block.split(b"\n")
            # The first fragment may continue a line from the block
            # before it (earlier in the file) — hold it back unless we
            # have reached the start of the file.
            carry = lines[0] if position > 0 else b""
            start = 1 if position > 0 else 0
            for raw in reversed(lines[start:]):
                if drop_last:
                    # The bytes after the final newline: a torn tail if
                    # non-empty, the usual trailing split if empty.
                    drop_last = False
                    if raw:
                        truncated = True
                    continue
                if not raw:
                    continue
                try:
                    record = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    continue
                if not isinstance(record, dict):
                    continue
                if event is not None and record.get("event") != event:
                    continue
                collected.append(record)
                if len(collected) >= n:
                    break
    collected.reverse()
    return collected, truncated


def read_events(path: str):
    """Parse a journal file into ``(events, truncated_tail, n_corrupt)``.

    A final line without a newline (or that fails to parse) is the
    signature of a mid-write kill: it is dropped and reported through
    ``truncated_tail`` rather than raised.  Corrupt *interior* lines
    are skipped and counted in ``n_corrupt`` — replay is a recovery
    path, and one torn sector must not make the rest unreadable.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    truncated = bool(data) and not data.endswith(b"\n")
    raw_lines = [line for line in data.split(b"\n") if line]
    events: List[dict] = []
    n_corrupt = 0
    for index, raw in enumerate(raw_lines):
        try:
            event = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            if index == len(raw_lines) - 1:
                truncated = True
            else:
                n_corrupt += 1
            continue
        if not isinstance(event, dict):
            n_corrupt += 1
            continue
        events.append(event)
    return events, truncated, n_corrupt


@dataclass
class JournalReplay:
    """A journal file decoded back into its run story.

    ``telemetry`` holds the effective convergence trace: generation
    events in order, truncated at each ``resume`` marker so the
    re-emitted generations of a resumed run replace (never duplicate)
    the ones the interrupted run wrote after its last checkpoint.
    """

    path: str
    events: List[dict] = field(default_factory=list)
    truncated_tail: bool = False
    n_corrupt: int = 0
    telemetry: TelemetryRecorder = field(default_factory=TelemetryRecorder)

    @property
    def run_start(self) -> Optional[dict]:
        for event in self.events:
            if event.get("event") == "run_start":
                return event
        return None

    @property
    def run_end(self) -> Optional[dict]:
        for event in reversed(self.events):
            if event.get("event") == "run_end":
                return event
        return None

    @property
    def n_resumes(self) -> int:
        return sum(1 for e in self.events if e.get("event") == "resume")

    def counts(self) -> Dict[str, int]:
        """Event counts by type."""
        totals: Dict[str, int] = {}
        for event in self.events:
            name = str(event.get("event"))
            totals[name] = totals.get(name, 0) + 1
        return totals

    def is_contiguous(self) -> bool:
        """Whether the replayed trace has no gaps or duplicates."""
        return self.telemetry.is_contiguous()

    def select(self, event: str) -> List[dict]:
        """All events of one type, in journal order."""
        return [e for e in self.events if e.get("event") == event]


def replay_journal(path: str) -> JournalReplay:
    """Decode *path* into a :class:`JournalReplay`.

    Applies the resume semantics: a ``resume`` event truncates the
    accumulated generation trace to its ``n_generations``, exactly as
    :meth:`RunJournal.restore` rewound the live recorder.
    """
    events, truncated, n_corrupt = read_events(path)
    records: List[GenerationRecord] = []
    for event in events:
        kind = event.get("event")
        if kind == "generation":
            try:
                records.append(GenerationRecord.from_dict(event))
            except (KeyError, TypeError, ValueError):
                n_corrupt += 1
        elif kind == "resume":
            keep = int(event.get("n_generations", len(records)))
            del records[keep:]
    telemetry = TelemetryRecorder()
    telemetry.records = records
    return JournalReplay(
        path=str(path),
        events=events,
        truncated_tail=truncated,
        n_corrupt=n_corrupt,
        telemetry=telemetry,
    )
