"""Fleet-scale run analytics: an indexed view across hundreds of runs.

The run registry (:mod:`repro.obs.runs`) made every optimization run a
durable artifact; this module makes the *fleet* of them legible without
replaying every journal on every question.  Three layers:

* :class:`RunIndex` — a durable, incremental index of one runs root.
  Each run's journal is reduced once to a compact *index entry* (the
  :class:`~repro.obs.compare.RunSummary` facts plus failure taxonomy,
  decision tallies, and a warm-start marker) and appended to
  ``<runs_root>/_index.jsonl``.  Every line is CRC-framed like the
  checkpoint store frames its payloads, so a torn append or a flipped
  sector is *detected* and the line simply re-derived from its journal
  — the index is a cache, never a source of truth.  Staleness is
  decided per run from the journal's ``(mtime_ns, size)`` fingerprint:
  an in-flight run whose journal grew, a resumed run, or a deleted run
  directory each invalidate exactly their own entry.  Summarizing 500
  runs therefore replays 0 journals on the warm path: one index read
  plus 500 ``stat`` calls.
* :class:`FleetView` — queries over the indexed entries: filters by
  algorithm / experiment / config fingerprint / outcome, fleet
  roll-ups (failure taxonomy, guard violations, cache-hit and
  Woodbury-engagement and equilibrated-rescue rates, backend/solver
  decision tallies), aggregate convergence envelopes (per-generation
  median/IQR resampled onto a common grid), and ``nearest_runs`` —
  config-distance matching that powers warm starts.
* **Warm starts** — :func:`warm_start_population` finds the nearest
  archived run that journaled a ``final_population`` event (the
  optimizers emit one at completion), loads that population through the
  bounded tail reader, journals a ``warmstart_decision`` event into the
  *current* run's journal, and returns the seed rows for the
  ``initial_population=`` parameter of DE / PSO / NSGA-II / improved
  goal attainment.

Everything here is stdlib + numpy, mirroring the rest of
:mod:`repro.obs`.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import journal as _obs_journal
from repro.obs.compare import summarize_replay
from repro.obs.journal import read_tail_events, replay_journal
from repro.obs.runs import JOURNAL_NAME, RunRegistry

__all__ = [
    "INDEX_NAME",
    "INDEX_VERSION",
    "RunIndex",
    "FleetView",
    "index_entry_from_journal",
    "journal_fingerprint",
    "config_distance",
    "load_final_population",
    "warm_start_population",
]

#: Bump when the index-entry layout changes; stale versions are
#: re-derived from their journals on the next refresh.
INDEX_VERSION = 1

#: Index file name under the runs root.  Starts with ``_`` so the run
#: registry never mistakes it for a run directory.
INDEX_NAME = "_index.jsonl"

#: Decision events tallied into each entry (all carry a categorical
#: outcome field — ``chosen`` for backend/solver, ``mode`` for the
#: surrogate screen, ``accepted`` for warm starts).
_DECISION_EVENTS = ("backend_decision", "solver_decision",
                    "screen_decision", "warmstart_decision")

#: Rewrite (compact) the index once dead lines — superseded entries of
#: reindexed runs, entries of deleted runs, corrupt lines — outnumber
#: the live entries by this factor.
_COMPACT_SLACK = 2


def journal_fingerprint(path: str) -> Optional[Dict[str, int]]:
    """The staleness fingerprint of one journal file.

    ``(mtime_ns, size)`` changes whenever the journal is appended to,
    truncated (torn-tail repair), or rewritten — exactly the cases that
    invalidate an index entry.  ``None`` when the file is missing.
    """
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return {"mtime_ns": int(stat.st_mtime_ns), "size": int(stat.st_size)}


def _decision_key(name: str, event: dict) -> str:
    if name == "warmstart_decision":
        return "accepted" if event.get("accepted") else "rejected"
    if name == "screen_decision":
        return str(event.get("mode", "unknown"))
    return str(event.get("chosen", "unknown"))


def index_entry_from_journal(journal_path: str, run_id: str) -> dict:
    """Reduce one journal to its index entry (the only replaying path)."""
    replay = replay_journal(journal_path)
    summary = summarize_replay(replay)
    start = replay.run_start or {}
    end = replay.run_end or {}
    config = start.get("config")
    if not isinstance(config, dict):
        config = None

    decisions: Dict[str, Dict[str, int]] = {}
    for name in _DECISION_EVENTS:
        for event in replay.select(name):
            key = _decision_key(name, event)
            bucket = decisions.setdefault(name, {})
            bucket[key] = bucket.get(key, 0) + 1

    # Failure taxonomy: the last health event is authoritative (it is
    # the run's own RunHealth record); counters absorbed under
    # health.failures.* are the fallback for journals without one.
    failures: Dict[str, int] = {}
    for event in replay.select("health"):
        failures = {
            key[len("failures."):]: int(value)
            for key, value in event.items()
            if key.startswith("failures.")
        }
    if not failures:
        failures = {
            key[len("health.failures."):]: int(value)
            for key, value in summary.counters.items()
            if key.startswith("health.failures.")
        }

    final_population = None
    for event in reversed(replay.select("final_population")):
        population = event.get("population")
        if isinstance(population, list) and population:
            final_population = {
                "algorithm": str(event.get("algorithm", "")),
                "n": len(population),
            }
            break

    experiment = None
    if config is not None and isinstance(config.get("experiment"), str):
        experiment = config["experiment"]

    return {
        "run_id": str(run_id),
        "index_version": INDEX_VERSION,
        "fingerprint": journal_fingerprint(journal_path),
        "status": summary.status,
        "algorithms": list(summary.algorithms),
        "experiment": experiment,
        "config": config,
        "config_fingerprint": start.get("config_fingerprint"),
        "started_at": start.get("t"),
        "ended_at": end.get("t"),
        "n_generations": summary.n_generations,
        "best_per_generation": list(summary.best_per_generation),
        "final_best": summary.final_best,
        "total_nfev": summary.total_nfev,
        "n_failures": summary.n_failures,
        "guard_violations": summary.guard_violations,
        "cache_hit_rate": summary.cache_hit_rate,
        "wall_time_s": summary.wall_time_s,
        "yield_fraction": summary.yield_fraction,
        "worst_case_nf_db": summary.worst_case_nf_db,
        "counters": dict(summary.counters),
        "failures": failures,
        "decisions": decisions,
        "n_resumes": summary.n_resumes,
        "truncated_tail": summary.truncated_tail,
        "n_corrupt": summary.n_corrupt,
        "final_population": final_population,
    }


def _frame_line(entry: dict) -> bytes:
    """One CRC-framed index line: ``header \\t body`` (both JSON).

    The CRC is computed over the body's *bytes*, so verification on
    read is one ``crc32`` plus one parse — never a re-serialization.
    A line missing the tab, failing the CRC, or torn mid-write simply
    fails :func:`_parse_line` and the entry is re-derived from its
    journal.
    """
    body = json.dumps(entry, sort_keys=True, separators=(",", ":"),
                      allow_nan=True).encode("utf-8")
    header = json.dumps(
        {"v": INDEX_VERSION,
         "crc": zlib.crc32(body) & 0xFFFFFFFF,
         "run_id": entry["run_id"]},
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    return header + b"\t" + body + b"\n"


def _parse_line(raw: bytes) -> Optional[dict]:
    """Decode + CRC-verify one framed line; ``None`` on any damage."""
    header_raw, tab, body = raw.partition(b"\t")
    if not tab:
        return None
    try:
        header = json.loads(header_raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(header, dict) or header.get("v") != INDEX_VERSION:
        return None
    if (zlib.crc32(body) & 0xFFFFFFFF) != header.get("crc"):
        return None
    try:
        entry = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(entry, dict) or "run_id" not in entry:
        return None
    return entry


class RunIndex:
    """The durable incremental index of one runs root.

    The index is *self-rebuilding*: :meth:`refresh` reconciles the file
    against reality (journal fingerprints) on every call, so deleting
    the file, truncating it mid-line (SIGKILL during an append), or
    flipping bits in it costs one re-derivation, never wrong answers.
    Appends go through the same temp-file-free append+fsync discipline
    as the journal itself; compaction rewrites through a temp file +
    ``os.replace`` so a crash leaves either the old or the new index.
    """

    def __init__(self, root: Optional[str] = None,
                 registry: Optional[RunRegistry] = None):
        self.registry = (registry if registry is not None
                         else root if isinstance(root, RunRegistry)
                         else RunRegistry(root))
        self.root = self.registry.root
        self.path = os.path.join(self.root, INDEX_NAME)
        #: Statistics of the last :meth:`refresh` (for tests/CLI).
        self.last_refresh: Dict[str, int] = {}

    # -- file io ------------------------------------------------------------
    def _load_file(self) -> Tuple[Dict[str, dict], int, int]:
        """``(entries by run id, n_corrupt_lines, n_total_lines)``.

        Later lines supersede earlier ones for the same run id — the
        append-per-refresh discipline makes the newest line the truth.
        """
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except OSError:
            return {}, 0, 0
        entries: Dict[str, dict] = {}
        n_corrupt = 0
        lines = [line for line in data.split(b"\n") if line]
        for raw in lines:
            entry = _parse_line(raw)
            if entry is None:
                n_corrupt += 1
                continue
            entries[str(entry["run_id"])] = entry
        return entries, n_corrupt, len(lines)

    def _append(self, entries: Iterable[dict]) -> None:
        blob = b"".join(_frame_line(entry) for entry in entries)
        if not blob:
            return
        os.makedirs(self.root, exist_ok=True)
        with open(self.path, "ab") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())

    def _rewrite(self, entries: Dict[str, dict]) -> None:
        """Compact: one line per live run, sorted, via temp + replace."""
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".index.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                for run_id in sorted(entries):
                    handle.write(_frame_line(entries[run_id]))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- the reconcile loop -------------------------------------------------
    def refresh(self, force: bool = False) -> Dict[str, dict]:
        """Reconcile the index with the runs root; returns live entries.

        Incremental: a run is re-derived from its journal only when it
        is new, its stored fingerprint disagrees with the journal's
        current ``(mtime_ns, size)``, its entry predates the current
        entry layout, or *force* is set.  Entries of deleted runs are
        dropped; the file is compacted when dead lines pile up.
        """
        entries, n_corrupt, n_lines = self._load_file()
        live: Dict[str, dict] = {}
        fresh: List[dict] = []
        n_reindexed = 0
        for run_id in self.registry.list_runs():
            journal_path = os.path.join(self.root, run_id, JOURNAL_NAME)
            fingerprint = journal_fingerprint(journal_path)
            if fingerprint is None:
                continue  # no journal yet: nothing to index
            entry = entries.get(run_id)
            stale = (
                force
                or entry is None
                or entry.get("index_version") != INDEX_VERSION
                or entry.get("fingerprint") != fingerprint
            )
            if stale:
                entry = index_entry_from_journal(journal_path, run_id)
                fresh.append(entry)
                n_reindexed += 1
            live[run_id] = entry
        self._append(fresh)
        n_removed = len(set(entries) - set(live))
        n_dead = (n_lines + len(fresh)) - len(live)
        if n_corrupt or n_removed \
                or n_dead > _COMPACT_SLACK * max(len(live), 1):
            self._rewrite(live)
        self.last_refresh = {
            "n_runs": len(live),
            "n_reindexed": n_reindexed,
            "n_removed": n_removed,
            "n_corrupt": n_corrupt,
        }
        return live

    def rebuild(self) -> Dict[str, dict]:
        """Drop the file and re-derive every entry from its journal."""
        try:
            os.unlink(self.path)
        except OSError:
            pass
        return self.refresh(force=True)

    def entries(self, refresh: bool = True) -> Dict[str, dict]:
        """Live entries — refreshed (default) or as stored on disk."""
        if refresh:
            return self.refresh()
        entries, _, _ = self._load_file()
        return entries


# ----------------------------------------------------------------------
# fleet queries
# ----------------------------------------------------------------------

def _resample_curve(curve: Sequence[float], grid: np.ndarray) -> np.ndarray:
    """One best-per-generation curve on the normalized progress grid."""
    values = np.asarray(curve, dtype=float)
    if values.size == 1:
        return np.full(grid.size, values[0])
    x = np.linspace(0.0, 1.0, values.size)
    return np.interp(grid, x, values)


def config_distance(a: Optional[dict], b: Optional[dict]) -> float:
    """Similarity of two run configurations (0 = identical keys/values).

    Numeric values contribute a normalized absolute difference, equal
    non-numeric values contribute 0, differing ones 1, and keys present
    on only one side 0.25 each; the sum is averaged over the key union
    so the distance is comparable across configs of different sizes.
    Missing configs are infinitely far — they can never be "nearest".
    """
    if a is None or b is None:
        return float("inf")
    keys = set(a) | set(b)
    if not keys:
        return 0.0
    score = 0.0
    for key in keys:
        if key not in a or key not in b:
            score += 0.25
            continue
        va, vb = a[key], b[key]
        num_a = isinstance(va, (int, float)) and not isinstance(va, bool)
        num_b = isinstance(vb, (int, float)) and not isinstance(vb, bool)
        if num_a and num_b:
            score += abs(float(va) - float(vb)) / (
                1.0 + abs(float(va)) + abs(float(vb))
            )
        elif va != vb:
            score += 1.0
    return score / len(keys)


def _rate(numerator: float, denominator: float) -> Optional[float]:
    return None if denominator <= 0 else numerator / denominator


class FleetView:
    """Queries over an indexed runs root.

    Construction refreshes the index once (cheap on the warm path);
    every query then works from the in-memory entries, so a CLI call or
    a dashboard render touches each journal file's *metadata* once and
    its contents never.
    """

    def __init__(self, root: Optional[str] = None,
                 index: Optional[RunIndex] = None, refresh: bool = True):
        self.index = index if index is not None else RunIndex(root)
        self._entries = self.index.entries(refresh=refresh)

    # -- selection ----------------------------------------------------------
    def runs(self, algorithm: Optional[str] = None,
             experiment: Optional[str] = None,
             config_fingerprint: Optional[str] = None,
             status: Optional[str] = None) -> List[dict]:
        """Entries matching every given filter, in creation order."""
        selected = []
        for entry in self._entries.values():
            if algorithm is not None \
                    and algorithm not in entry.get("algorithms", []):
                continue
            if experiment is not None \
                    and entry.get("experiment") != experiment:
                continue
            if config_fingerprint is not None \
                    and entry.get("config_fingerprint") != config_fingerprint:
                continue
            if status is not None and entry.get("status") != status:
                continue
            selected.append(entry)
        selected.sort(key=lambda e: (e.get("started_at") or 0.0,
                                     e["run_id"]))
        return selected

    # -- roll-ups -----------------------------------------------------------
    def summary(self, **filters) -> dict:
        """The fleet's headline numbers under the given filters."""
        entries = self.runs(**filters)
        by_status: Dict[str, int] = {}
        by_algorithm: Dict[str, int] = {}
        by_experiment: Dict[str, int] = {}
        total_nfev = 0
        total_wall = 0.0
        n_resumes = 0
        n_truncated = 0
        best_entry = None
        for entry in entries:
            by_status[entry.get("status", "incomplete")] = \
                by_status.get(entry.get("status", "incomplete"), 0) + 1
            for algorithm in entry.get("algorithms", []):
                by_algorithm[algorithm] = by_algorithm.get(algorithm, 0) + 1
            experiment = entry.get("experiment")
            if experiment:
                by_experiment[experiment] = \
                    by_experiment.get(experiment, 0) + 1
            total_nfev += int(entry.get("total_nfev") or 0)
            total_wall += float(entry.get("wall_time_s") or 0.0)
            n_resumes += int(entry.get("n_resumes") or 0)
            n_truncated += int(bool(entry.get("truncated_tail")))
            final_best = entry.get("final_best")
            if final_best is not None and np.isfinite(final_best) \
                    and entry.get("status") == "completed" \
                    and (best_entry is None
                         or final_best < best_entry["final_best"]):
                best_entry = {"run_id": entry["run_id"],
                              "final_best": float(final_best)}
        return {
            "n_runs": len(entries),
            "by_status": by_status,
            "by_algorithm": by_algorithm,
            "by_experiment": by_experiment,
            "total_nfev": total_nfev,
            "total_wall_time_s": total_wall,
            "n_resumes": n_resumes,
            "n_truncated_tails": n_truncated,
            "best": best_entry,
            "failures": self.failures(**filters),
            "rates": self.rates(**filters),
        }

    def failures(self, **filters) -> dict:
        """Fleet-wide failure taxonomy and guard-violation roll-up."""
        entries = self.runs(**filters)
        by_category: Dict[str, int] = {}
        total = 0
        guard_violations = 0.0
        runs_with_failures = 0
        worst: List[Tuple[int, str]] = []
        for entry in entries:
            n_failures = int(entry.get("n_failures") or 0)
            total += n_failures
            if n_failures:
                runs_with_failures += 1
                worst.append((n_failures, entry["run_id"]))
            for category, count in (entry.get("failures") or {}).items():
                by_category[category] = by_category.get(category, 0) \
                    + int(count)
            guard_violations += float(entry.get("guard_violations") or 0.0)
        worst.sort(key=lambda pair: (-pair[0], pair[1]))
        return {
            "total": total,
            "by_category": by_category,
            "guard_violations": guard_violations,
            "runs_with_failures": runs_with_failures,
            "worst_runs": [
                {"run_id": run_id, "n_failures": count}
                for count, run_id in worst[:5]
            ],
        }

    def rates(self, **filters) -> dict:
        """Cache / solver-economics rates summed over the fleet.

        Every rate is computed from fleet-wide totals (not averaged per
        run), so a handful of tiny runs cannot drown the economics of
        the big ones.
        """
        entries = self.runs(**filters)

        def total(counter: str) -> float:
            return float(sum(
                (entry.get("counters") or {}).get(counter, 0.0)
                for entry in entries
            ))

        decisions: Dict[str, Dict[str, int]] = {}
        for entry in entries:
            for name, tallies in (entry.get("decisions") or {}).items():
                bucket = decisions.setdefault(name, {})
                for key, count in tallies.items():
                    bucket[key] = bucket.get(key, 0) + int(count)

        cache_hits = total("evaluator.cache_hits")
        cache_misses = total("evaluator.cache_misses")
        woodbury = total("mna.woodbury_solves")
        woodbury_fallbacks = total("mna.woodbury_fallbacks")
        batch_solves = total("engine.batch_solves")
        screened = total("robust.screened")
        corner_evals = total("robust.corner_evals")
        return {
            "cache_hit_rate": _rate(cache_hits,
                                    cache_hits + cache_misses),
            "woodbury_engagement": _rate(
                woodbury, woodbury + woodbury_fallbacks + batch_solves),
            "equilibrated_rescues": total("mna.equilibrated_rescues")
            + total("dc.equilibrated_rescues"),
            "screen_fraction": _rate(screened, screened + corner_evals),
            "decisions": decisions,
        }

    def envelopes(self, n_grid: int = 24, **filters) -> dict:
        """Aggregate convergence envelopes per algorithm signature.

        Each run's best-per-generation curve is resampled onto a common
        normalized-progress grid (0 = initialization, 1 = final
        generation), then summarized pointwise as median and
        interquartile range.  Runs of different lengths therefore
        contribute on equal footing — the envelope answers "how far
        along is a run at X% of its budget", not "what happens at
        generation k".
        """
        grid = np.linspace(0.0, 1.0, max(int(n_grid), 2))
        curves: Dict[str, List[np.ndarray]] = {}
        for entry in self.runs(**filters):
            curve = entry.get("best_per_generation") or []
            finite = [v for v in curve if np.isfinite(v)]
            if not finite or len(finite) != len(curve):
                continue
            label = ",".join(entry.get("algorithms", [])) or "unknown"
            curves.setdefault(label, []).append(
                _resample_curve(curve, grid))
        envelopes = {}
        for label, resampled in sorted(curves.items()):
            stack = np.vstack(resampled)
            envelopes[label] = {
                "grid": grid.tolist(),
                "median": np.median(stack, axis=0).tolist(),
                "q25": np.percentile(stack, 25, axis=0).tolist(),
                "q75": np.percentile(stack, 75, axis=0).tolist(),
                "n_runs": int(stack.shape[0]),
            }
        return envelopes

    def top(self, n: int = 10, key: str = "final_best",
            **filters) -> List[dict]:
        """The *n* best runs by *key* (ascending; all objectives minimize)."""
        rows = []
        for entry in self.runs(**filters):
            value = entry.get(key)
            if value is None or not np.isfinite(value):
                continue
            rows.append({
                "run_id": entry["run_id"],
                key: float(value),
                "status": entry.get("status"),
                "algorithms": list(entry.get("algorithms", [])),
                "total_nfev": entry.get("total_nfev"),
                "n_failures": entry.get("n_failures"),
            })
        rows.sort(key=lambda row: (row[key], row["run_id"]))
        return rows[:max(int(n), 0)]

    # -- warm-start plumbing ------------------------------------------------
    def nearest_runs(self, config: Optional[dict], n: int = 5,
                     algorithm: Optional[str] = None,
                     require_population: bool = False,
                     status: str = "completed") -> List[Tuple[float, dict]]:
        """Archived runs nearest to *config*, as ``(distance, entry)``.

        An exact ``config_fingerprint`` match is distance 0; otherwise
        the normalized key-wise distance of :func:`config_distance`.
        Ties break on run id, so the ranking is deterministic across
        refreshes and rebuilds.
        """
        fingerprint = _obs_journal.config_fingerprint(config)
        scored: List[Tuple[float, str, dict]] = []
        for entry in self.runs(status=status):
            if algorithm is not None:
                population = entry.get("final_population") or {}
                entry_algorithms = set(entry.get("algorithms", []))
                entry_algorithms.add(population.get("algorithm"))
                if algorithm not in entry_algorithms:
                    continue
            if require_population and not entry.get("final_population"):
                continue
            if fingerprint is not None \
                    and entry.get("config_fingerprint") == fingerprint:
                distance = 0.0
            else:
                distance = config_distance(config, entry.get("config"))
            if not np.isfinite(distance):
                continue
            scored.append((distance, entry["run_id"], entry))
        scored.sort(key=lambda item: (item[0], item[1]))
        return [(distance, entry)
                for distance, _, entry in scored[:max(int(n), 0)]]


# ----------------------------------------------------------------------
# warm starts
# ----------------------------------------------------------------------

def load_final_population(journal_path: str) -> Optional[dict]:
    """The last ``final_population`` event of a journal, decoded.

    Reads the file backwards in bounded blocks (the event is among the
    last lines of a finished run), so probing a candidate costs tail
    I/O, not a replay.  Returns ``{"algorithm", "population", "fitness"}``
    with numpy arrays, or ``None`` when the run never journaled one.
    """
    try:
        events, _ = read_tail_events(journal_path, 1,
                                     event="final_population")
    except OSError:
        return None
    if not events:
        return None
    event = events[0]
    population = event.get("population")
    if not isinstance(population, list) or not population:
        return None
    try:
        matrix = np.asarray(population, dtype=float)
    except (TypeError, ValueError):
        return None
    if matrix.ndim != 2 or not np.all(np.isfinite(matrix)):
        return None
    fitness = event.get("fitness")
    fitness_arr = None
    if isinstance(fitness, list) and len(fitness) == matrix.shape[0]:
        try:
            fitness_arr = np.asarray(fitness, dtype=float)
        except (TypeError, ValueError):
            fitness_arr = None
    return {
        "algorithm": str(event.get("algorithm", "")),
        "population": matrix,
        "fitness": fitness_arr,
    }


def warm_start_population(config: Optional[dict],
                          root: Optional[str] = None,
                          algorithm: Optional[str] = None,
                          population_size: Optional[int] = None,
                          max_distance: float = 1.0,
                          view: Optional[FleetView] = None,
                          ) -> Optional[np.ndarray]:
    """Seed rows from the nearest archived run's final population.

    Consults the fleet index for *root* (refreshing it), ranks archived
    completed runs by config distance, and loads the first candidate
    within *max_distance* that journaled a usable ``final_population``.
    Rows are ordered best-fitness-first and truncated to
    *population_size* when given, so partially seeding a larger cold
    population keeps the strongest archive members.

    Every outcome — accepted or not — is journaled as a
    ``warmstart_decision`` event through the ambient hook, so the new
    run's own journal records where its initial population came from
    (and the fleet index tallies the decision).  Returns ``None`` when
    no archive qualifies: the caller simply starts cold.
    """
    try:
        if view is None:
            view = FleetView(root)
        candidates = view.nearest_runs(config, n=8, algorithm=algorithm,
                                       require_population=True)
    except OSError as exc:
        _obs_journal.emit("warmstart_decision", accepted=False,
                          reason=f"index unavailable: {exc}")
        return None
    for distance, entry in candidates:
        if distance > max_distance:
            break  # candidates are sorted; everything after is farther
        journal_path = os.path.join(view.index.root, entry["run_id"],
                                    JOURNAL_NAME)
        payload = load_final_population(journal_path)
        if payload is None:
            continue
        population = payload["population"]
        fitness = payload["fitness"]
        if fitness is not None:
            order = np.argsort(fitness, kind="stable")
            population = population[order]
        if population_size is not None:
            population = population[:max(int(population_size), 1)]
        _obs_journal.emit(
            "warmstart_decision",
            accepted=True,
            source_run=entry["run_id"],
            source_algorithm=payload["algorithm"],
            distance=float(distance),
            n_seeded=int(population.shape[0]),
        )
        return np.array(population, dtype=float)
    _obs_journal.emit(
        "warmstart_decision",
        accepted=False,
        reason="no archived run within distance"
        if candidates else "no archived final_population",
        n_candidates=len(candidates),
    )
    return None
