"""Regression diffing of optimization runs.

Two runs — or a run and a committed baseline file — are reduced to
:class:`RunSummary` records and compared check by check with
configurable tolerances, producing a machine-readable verdict CI can
gate on (:class:`RunDiff`).  The summarized quantities mirror the
paper's convergence story: best attainment per generation, final best,
evaluation counts, failure and guard-violation totals, cache hit rate,
and wall time (informational by default — CI machines differ).

Baselines can be:

* another ``journal.jsonl`` (or a run directory containing one);
* a committed ``RunSummary`` JSON (``summary_version`` marker);
* any JSON of numbers — e.g. the ``BENCH_*.json`` artifacts the
  benchmark suite uploads — whose intersecting keys are compared with
  the default relative tolerance.  Nested objects are flattened to
  dotted keys (``host.cpu_count``).

Direction matters: ``final_best`` only regresses when the candidate is
*worse* (larger, all objectives minimize), ``cache_hit_rate`` only when
it *drops*, failure and guard-violation totals only when they *grow*.
Bare-baseline keys follow the same idea: ``speedup*`` and ``*_per_s``
metrics regress only when they *fall*, while ``host.*`` / ``context.*``
keys describe the machine the numbers came from and are reported
informationally, never gated (CI machines differ).  An
identically-seeded rerun therefore reports zero regressions.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.journal import JournalReplay, replay_journal

__all__ = [
    "SUMMARY_VERSION",
    "RunSummary",
    "CheckResult",
    "RunDiff",
    "DEFAULT_TOLERANCES",
    "summarize_journal",
    "summarize_replay",
    "load_summary",
    "compare_summaries",
    "compare_runs",
    "format_diff",
]

#: Bump when the summary field layout changes.
SUMMARY_VERSION = 1

#: name -> (kind, tolerance, direction).  kind: "rel" | "abs" | None
#: (None = informational unless a tolerance is supplied); direction:
#: "increase" / "decrease" (regression only that way) or "both".
DEFAULT_TOLERANCES: Dict[str, Tuple[Optional[str], Optional[float], str]] = {
    "final_best": ("rel", 0.01, "increase"),
    "convergence": ("rel", 0.01, "both"),
    "n_generations": ("abs", 0.0, "both"),
    "total_nfev": ("rel", 0.10, "both"),
    "n_failures": ("abs", 0.0, "increase"),
    "guard_violations": ("abs", 0.0, "increase"),
    "cache_hit_rate": ("abs", 0.05, "decrease"),
    "wall_time_s": (None, None, "increase"),
    # Robust-run columns (absent on nominal runs — skipped as
    # "missing on one side"): yield regresses when it drops,
    # worst-case NF when it grows.
    "yield_fraction": ("abs", 1e-9, "decrease"),
    "worst_case_nf_db": ("rel", 0.01, "increase"),
}

#: Relative tolerance applied to intersecting numeric keys of a bare
#: (non-summary) JSON baseline such as a BENCH_*.json artifact.
BARE_METRIC_REL_TOL = 0.10

#: Dotted-key prefixes of a bare baseline that describe the machine
#: the numbers came from, not the numbers themselves.  Always
#: informational: CI runners and dev boxes legitimately differ.
INFORMATIONAL_PREFIXES = ("host.", "context.")


def _is_num(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _flatten(data: Dict[str, object], prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a (possibly nested) JSON object, dotted keys."""
    flat: Dict[str, float] = {}
    for key, value in data.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=name + "."))
        elif _is_num(value):
            flat[name] = float(value)
    return flat


def _bare_rule(name: str) -> Tuple[Optional[str], Optional[float], str]:
    """Default ``(kind, tol, direction)`` for one bare-baseline key."""
    if name.startswith(INFORMATIONAL_PREFIXES):
        return (None, None, "both")
    leaf = name.rsplit(".", 1)[-1]
    if leaf.startswith("speedup") or leaf.endswith("_per_s"):
        # Throughput-style metrics: only a drop is a regression.
        return ("rel", BARE_METRIC_REL_TOL, "decrease")
    return ("rel", BARE_METRIC_REL_TOL, "both")


@dataclass
class RunSummary:
    """The comparable facts of one run.

    ``bare`` marks summaries lifted from a flat numeric JSON (a
    ``BENCH_*.json`` baseline): only their ``counters`` intersection
    participates in the diff.
    """

    run_id: str = ""
    source: str = ""
    status: str = "incomplete"
    algorithms: List[str] = field(default_factory=list)
    n_generations: Optional[int] = None
    best_per_generation: List[float] = field(default_factory=list)
    final_best: Optional[float] = None
    final_violation: Optional[float] = None
    total_nfev: Optional[int] = None
    n_failures: Optional[int] = None
    guard_violations: Optional[float] = None
    cache_hit_rate: Optional[float] = None
    wall_time_s: Optional[float] = None
    yield_fraction: Optional[float] = None
    worst_case_nf_db: Optional[float] = None
    counters: Dict[str, float] = field(default_factory=dict)
    n_resumes: int = 0
    truncated_tail: bool = False
    n_corrupt: int = 0
    bare: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "summary_version": SUMMARY_VERSION,
            "run_id": self.run_id,
            "source": self.source,
            "status": self.status,
            "algorithms": list(self.algorithms),
            "n_generations": self.n_generations,
            "best_per_generation": list(self.best_per_generation),
            "final_best": self.final_best,
            "final_violation": self.final_violation,
            "total_nfev": self.total_nfev,
            "n_failures": self.n_failures,
            "guard_violations": self.guard_violations,
            "cache_hit_rate": self.cache_hit_rate,
            "wall_time_s": self.wall_time_s,
            "yield_fraction": self.yield_fraction,
            "worst_case_nf_db": self.worst_case_nf_db,
            "counters": dict(self.counters),
            "n_resumes": self.n_resumes,
            "truncated_tail": self.truncated_tail,
            "n_corrupt": self.n_corrupt,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunSummary":
        def opt(key, cast):
            value = data.get(key)
            return None if value is None else cast(value)

        return cls(
            run_id=str(data.get("run_id", "")),
            source=str(data.get("source", "")),
            status=str(data.get("status", "incomplete")),
            algorithms=[str(a) for a in data.get("algorithms", [])],
            n_generations=opt("n_generations", int),
            best_per_generation=[
                float(v) for v in data.get("best_per_generation", [])
            ],
            final_best=opt("final_best", float),
            final_violation=opt("final_violation", float),
            total_nfev=opt("total_nfev", int),
            n_failures=opt("n_failures", int),
            guard_violations=opt("guard_violations", float),
            cache_hit_rate=opt("cache_hit_rate", float),
            wall_time_s=opt("wall_time_s", float),
            yield_fraction=opt("yield_fraction", float),
            worst_case_nf_db=opt("worst_case_nf_db", float),
            counters={str(k): float(v)
                      for k, v in dict(data.get("counters", {})).items()},
            n_resumes=int(data.get("n_resumes", 0)),
            truncated_tail=bool(data.get("truncated_tail", False)),
            n_corrupt=int(data.get("n_corrupt", 0)),
        )

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        text = json.dumps(self.as_dict(), indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text


def summarize_replay(replay: JournalReplay) -> RunSummary:
    """Reduce a replayed journal to its comparable facts."""
    records = replay.telemetry.records
    algorithms: List[str] = []
    for record in records:
        if record.algorithm not in algorithms:
            algorithms.append(record.algorithm)
    # nfev is cumulative within one algorithm's trace; sum the final
    # counts across algorithms so multi-stage journals report totals.
    total_nfev = 0
    for algorithm in algorithms:
        total_nfev += max(
            r.nfev for r in records if r.algorithm == algorithm
        )

    start, end = replay.run_start, replay.run_end
    wall_time = None
    if start is not None and end is not None:
        wall_time = max(0.0, float(end["t"]) - float(start["t"]))
    elif records:
        wall_time = float(sum(r.wall_time_s for r in records))

    counters: Dict[str, float] = {}
    for event in replay.events:
        raw = event.get("counters")
        if isinstance(raw, dict):  # later snapshots supersede earlier
            counters = {str(k): float(v) for k, v in raw.items()
                        if _is_num(v)}

    hits = counters.get("evaluator.cache_hits")
    misses = counters.get("evaluator.cache_misses")
    hit_rate = None
    if hits is not None and misses is not None and hits + misses > 0:
        hit_rate = hits / (hits + misses)

    run_id = ""
    if start is not None:
        run_id = str(start.get("run_id", ""))

    # Robust runs annotate generation records with named extras (see
    # RobustStateSink); the latest value wins, like the counters.
    yield_fraction = None
    worst_case_nf = None
    for record in reversed(records):
        extra = record.extra or {}
        if yield_fraction is None and "yield_best" in extra:
            yield_fraction = float(extra["yield_best"])
        if worst_case_nf is None and "nf_worst_best" in extra:
            worst_case_nf = float(extra["nf_worst_best"])
        if yield_fraction is not None and worst_case_nf is not None:
            break

    return RunSummary(
        run_id=run_id,
        source=replay.path,
        status=(str(end.get("status", "incomplete"))
                if end is not None else "incomplete"),
        algorithms=algorithms,
        n_generations=len(records),
        best_per_generation=[float(r.best) for r in records],
        final_best=float(records[-1].best) if records else None,
        final_violation=(float(records[-1].violation)
                         if records else None),
        total_nfev=int(total_nfev) if records else None,
        n_failures=(max(r.n_failures for r in records)
                    if records else None),
        guard_violations=counters.get("guards.violations", 0.0),
        cache_hit_rate=hit_rate,
        wall_time_s=wall_time,
        yield_fraction=yield_fraction,
        worst_case_nf_db=worst_case_nf,
        counters=counters,
        n_resumes=replay.n_resumes,
        truncated_tail=replay.truncated_tail,
        n_corrupt=replay.n_corrupt,
    )


def summarize_journal(path: str) -> RunSummary:
    """Replay + summarize a ``journal.jsonl`` file."""
    return summarize_replay(replay_journal(path))


def load_summary(path: str) -> RunSummary:
    """Load a comparable summary from any supported artifact.

    Accepts a run directory (its ``journal.jsonl`` is used), a journal
    file, a ``RunSummary`` JSON, or a flat numeric JSON (``BENCH_*``
    style) whose fields become ``counters`` of a *bare* summary.
    """
    if os.path.isdir(path):
        path = os.path.join(path, "journal.jsonl")
    if path.endswith(".jsonl"):
        return summarize_journal(path)
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(
            f"{path!r} does not contain a JSON object "
            f"(got {type(data).__name__})"
        )
    if "summary_version" in data:
        summary = RunSummary.from_dict(data)
        summary.source = summary.source or path
        return summary
    counters = _flatten(data)
    if not counters:
        raise ValueError(
            f"{path!r} has no summary marker and no numeric fields to "
            f"compare"
        )
    return RunSummary(
        run_id=os.path.basename(path),
        source=path,
        status="baseline",
        counters=counters,
        bare=True,
    )


@dataclass
class CheckResult:
    """One compared quantity and its verdict."""

    name: str
    baseline: Optional[float]
    candidate: Optional[float]
    delta: Optional[float]
    rel_delta: Optional[float]
    kind: Optional[str]          # "rel" | "abs" | None
    tolerance: Optional[float]
    direction: str               # "increase" | "decrease" | "both"
    checked: bool                # False = informational / missing data
    ok: bool
    note: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "rel_delta": self.rel_delta,
            "kind": self.kind,
            "tolerance": self.tolerance,
            "direction": self.direction,
            "checked": self.checked,
            "ok": self.ok,
            "note": self.note,
        }


@dataclass
class RunDiff:
    """The machine-readable verdict of one comparison."""

    baseline: RunSummary
    candidate: RunSummary
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def regressions(self) -> List[CheckResult]:
        return [c for c in self.checks if not c.ok]

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "baseline": self.baseline.source or self.baseline.run_id,
            "candidate": self.candidate.source or self.candidate.run_id,
            "checks": [c.as_dict() for c in self.checks],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)


def _finite(value) -> bool:
    return value is not None and math.isfinite(float(value))


def _evaluate(name: str, baseline, candidate, kind, tolerance,
              direction: str) -> CheckResult:
    """Judge one scalar pair against its tolerance."""
    if baseline is None or candidate is None:
        return CheckResult(name, baseline, candidate, None, None, kind,
                           tolerance, direction, checked=False, ok=True,
                           note="missing on one side")
    baseline = float(baseline)
    candidate = float(candidate)
    both_inf = (math.isinf(baseline) and math.isinf(candidate)
                and baseline == candidate)
    if both_inf:
        return CheckResult(name, baseline, candidate, 0.0, 0.0, kind,
                           tolerance, direction, checked=True, ok=True)
    if not (_finite(baseline) and _finite(candidate)):
        # One side finite, the other not: always a real difference.
        return CheckResult(name, baseline, candidate, None, None, kind,
                           tolerance, direction,
                           checked=kind is not None,
                           ok=kind is None,
                           note="non-finite on one side")
    delta = candidate - baseline
    rel_delta = delta / max(abs(baseline), 1e-12)
    if kind is None or tolerance is None:
        return CheckResult(name, baseline, candidate, delta, rel_delta,
                           kind, tolerance, direction, checked=False,
                           ok=True, note="informational")
    measure = rel_delta if kind == "rel" else delta
    if direction == "increase":
        violated = measure > tolerance
    elif direction == "decrease":
        violated = -measure > tolerance
    else:
        violated = abs(measure) > tolerance
    return CheckResult(name, baseline, candidate, delta, rel_delta, kind,
                       tolerance, direction, checked=True,
                       ok=not violated)


def _convergence_deviation(baseline: List[float],
                           candidate: List[float]) -> Optional[float]:
    """Worst relative deviation between two best-per-generation curves."""
    if not baseline or not candidate:
        return None
    worst = 0.0
    for b, c in zip(baseline, candidate):
        if math.isinf(b) and math.isinf(c) and b == c:
            continue
        if not (math.isfinite(b) and math.isfinite(c)):
            return float("inf")
        worst = max(worst, abs(c - b) / max(abs(b), 1e-12))
    return worst


def compare_summaries(baseline: RunSummary, candidate: RunSummary,
                      tolerances: Optional[Dict[str, Tuple]] = None,
                      counter_checks: Optional[Dict[str, float]] = None,
                      ) -> RunDiff:
    """Diff two summaries into a :class:`RunDiff`.

    *tolerances* overrides entries of :data:`DEFAULT_TOLERANCES` (same
    ``(kind, tol, direction)`` tuples); *counter_checks* maps counter
    names to relative tolerances for opt-in counter comparisons (the
    override replaces the tolerance but keeps the key's default
    direction, so tightening ``speedup_fleet_vs_batched`` still only
    fires on a drop).  When either side is *bare* (a flat-JSON
    baseline), the intersection of the two counter sets is compared
    automatically under :func:`_bare_rule` — ``host.`` / ``context.``
    keys stay informational.
    """
    rules = dict(DEFAULT_TOLERANCES)
    if tolerances:
        rules.update(tolerances)
    checks: List[CheckResult] = []

    scalar_fields = ("final_best", "n_generations", "total_nfev",
                     "n_failures", "guard_violations", "cache_hit_rate",
                     "wall_time_s", "yield_fraction", "worst_case_nf_db")
    if not (baseline.bare or candidate.bare):
        for name in scalar_fields:
            kind, tol, direction = rules[name]
            checks.append(_evaluate(
                name, getattr(baseline, name), getattr(candidate, name),
                kind, tol, direction,
            ))
        kind, tol, direction = rules["convergence"]
        deviation = _convergence_deviation(
            baseline.best_per_generation, candidate.best_per_generation
        )
        if deviation is None:
            checks.append(CheckResult(
                "convergence", None, None, None, None, kind, tol,
                direction, checked=False, ok=True,
                note="no generation trace on one side",
            ))
        else:
            checks.append(CheckResult(
                "convergence", 0.0, deviation, deviation, deviation,
                kind, tol, direction, checked=True,
                ok=(tol is None or deviation <= tol),
                note="max relative deviation of best-per-generation",
            ))

    auto_counters = baseline.bare or candidate.bare
    counter_rules: Dict[str, Tuple[Optional[str], Optional[float], str]] = {}
    if auto_counters:
        shared = set(baseline.counters) & set(candidate.counters)
        for name in shared:
            counter_rules[name] = _bare_rule(name)
    for name, tol in (counter_checks or {}).items():
        # An explicit tolerance re-arms even informational keys, but
        # the key's natural direction survives the override.
        direction = counter_rules.get(name, _bare_rule(name))[2]
        counter_rules[name] = ("rel", float(tol), direction)
    for name in sorted(counter_rules):
        kind, tol, direction = counter_rules[name]
        checks.append(_evaluate(
            f"counters.{name}",
            baseline.counters.get(name),
            candidate.counters.get(name),
            kind, tol, direction,
        ))

    return RunDiff(baseline=baseline, candidate=candidate, checks=checks)


def compare_runs(baseline_path: str, candidate_path: str,
                 tolerances: Optional[Dict[str, Tuple]] = None,
                 counter_checks: Optional[Dict[str, float]] = None,
                 ) -> RunDiff:
    """Load two artifacts (see :func:`load_summary`) and diff them."""
    return compare_summaries(
        load_summary(baseline_path), load_summary(candidate_path),
        tolerances=tolerances, counter_checks=counter_checks,
    )


def format_diff(diff: RunDiff) -> str:
    """Render a diff as an aligned verdict table."""

    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float) and not value.is_integer():
            return f"{value:.5g}"
        return f"{value:g}"

    lines = [
        f"baseline : {diff.baseline.source or diff.baseline.run_id}",
        f"candidate: {diff.candidate.source or diff.candidate.run_id}",
        f"  {'check':<28} {'baseline':>12} {'candidate':>12} "
        f"{'delta':>11} {'verdict':>10}",
    ]
    for check in diff.checks:
        if not check.checked:
            verdict = "info"
        elif check.ok:
            verdict = "ok"
        else:
            verdict = "REGRESSION"
        delta = check.rel_delta if check.kind == "rel" else check.delta
        suffix = "%" if check.kind == "rel" and delta is not None else ""
        rendered = (f"{100 * delta:+.2f}" if suffix and delta is not None
                    else fmt(delta))
        lines.append(
            f"  {check.name:<28.28} {fmt(check.baseline):>12} "
            f"{fmt(check.candidate):>12} {rendered + suffix:>11} "
            f"{verdict:>10}"
        )
    lines.append(
        f"verdict: {'OK' if diff.ok else 'REGRESSION'} "
        f"({sum(1 for c in diff.checks if c.checked)} checked, "
        f"{len(diff.regressions)} regressed)"
    )
    return "\n".join(lines)
