"""Counter/gauge/histogram registry for optimization runs.

:class:`Metrics` is the quantitative half of the observability layer
(the :mod:`tracer <repro.obs.tracer>` is the temporal half): components
push named counters as they work — MNA solver calls, evaluator cache
hits and misses, batch-vs-scalar engine fallbacks — and a finished run
exports one JSON document plus a human-readable table
(:func:`format_metrics`).

The registry also **absorbs** the per-run
:class:`~repro.optimize.faults.RunHealth` records the fault-tolerant
runtime already keeps: :meth:`Metrics.absorb_run_health` snapshots the
health counters under a ``health.`` prefix by *assignment* (not
addition), so absorbing the same record twice — or a merged hierarchy
of records — can never double count.

Everything here is dependency-free and cheap enough to leave enabled:
a counter bump is a lock acquire plus two dict operations, orders of
magnitude below the millisecond-scale solves it annotates.
"""

from __future__ import annotations

import json
import random
import threading
import zlib
from typing import Dict, List, Optional

__all__ = [
    "DEFAULT_HISTOGRAM_CAP",
    "TRUNCATION_COUNTER",
    "Metrics",
    "format_metrics",
    "get_metrics",
    "set_metrics",
    "inc",
    "observe",
]

#: Histograms keep at most this many raw samples; beyond it they switch
#: to deterministic reservoir sampling (count/mean/min/max stay exact).
DEFAULT_HISTOGRAM_CAP = 4096

#: Counter bumped the first time each histogram starts truncating, so a
#: capped percentile estimate is never mistaken for an exact one.
TRUNCATION_COUNTER = "metrics.histogram_truncated"


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already sorted list."""
    if not sorted_values:
        return float("nan")
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


class _Reservoir:
    """Bounded histogram state: exact moments + sampled percentiles.

    ``count``/``total``/``min``/``max`` are updated on every
    observation and stay exact forever; the raw samples are kept only
    up to ``cap`` and thereafter replaced by Algorithm R reservoir
    sampling.  The RNG is seeded from the histogram *name* (crc32), so
    the same observation sequence always keeps the same sample set —
    runs stay bit-for-bit reproducible.
    """

    __slots__ = ("cap", "count", "total", "min", "max", "samples",
                 "truncated", "_rng")

    def __init__(self, name: str, cap: int):
        self.cap = int(cap)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: List[float] = []
        self.truncated = False
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def add(self, value: float) -> bool:
        """Record one observation; True when this add started truncating."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.samples) < self.cap:
            self.samples.append(value)
            return False
        first = not self.truncated
        self.truncated = True
        slot = self._rng.randrange(self.count)
        if slot < self.cap:
            self.samples[slot] = value
        return first

    def absorb(self, other: "_Reservoir") -> bool:
        """Fold another reservoir in; exact moments merge exactly."""
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        was_truncated = self.truncated
        pseudo_count = self.count
        for value in other.samples:
            pseudo_count += 1
            if len(self.samples) < self.cap:
                self.samples.append(value)
                continue
            self.truncated = True
            slot = self._rng.randrange(pseudo_count)
            if slot < self.cap:
                self.samples[slot] = value
        self.count += other.count
        self.truncated = self.truncated or other.truncated
        return self.truncated and not was_truncated

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0}
        ordered = sorted(self.samples)
        return {
            "count": self.count,
            "mean": float(self.total / self.count),
            "min": float(self.min),
            "p50": _percentile(ordered, 0.50),
            "p90": _percentile(ordered, 0.90),
            "max": float(self.max),
            "truncated": self.truncated,
            "n_samples": len(self.samples),
        }


class Metrics:
    """A thread-safe registry of counters, gauges, and histograms.

    * counters — monotonically increasing totals (:meth:`inc`);
    * gauges — last-write-wins point-in-time values (:meth:`gauge`);
    * histograms — bounded reservoirs summarized at export time
      (:meth:`observe`): count / mean / min / p50 / p90 / max, where
      count, mean, min, and max stay exact at any volume and the
      percentiles come from at most *histogram_cap* deterministically
      sampled observations.  The first truncation of each histogram
      bumps the :data:`TRUNCATION_COUNTER` counter.
    """

    def __init__(self, histogram_cap: int = DEFAULT_HISTOGRAM_CAP):
        self._lock = threading.Lock()
        self.histogram_cap = max(int(histogram_cap), 1)
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Reservoir] = {}

    # -- recording ----------------------------------------------------------
    def inc(self, name: str, n: float = 1) -> None:
        """Add *n* to counter *name* (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def set_counter(self, name: str, value: float) -> None:
        """Overwrite counter *name* (idempotent absorption paths)."""
        with self._lock:
            self._counters[name] = value

    def gauge(self, name: str, value: float) -> None:
        """Record the current value of gauge *name*."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram *name*."""
        with self._lock:
            reservoir = self._histograms.get(name)
            if reservoir is None:
                reservoir = _Reservoir(name, self.histogram_cap)
                self._histograms[name] = reservoir
            if reservoir.add(float(value)):
                # First truncation of this histogram: make it loud.
                self._counters[TRUNCATION_COUNTER] = (
                    self._counters.get(TRUNCATION_COUNTER, 0) + 1
                )

    # -- access -------------------------------------------------------------
    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def histogram_summary(self, name: str) -> Dict[str, float]:
        with self._lock:
            reservoir = self._histograms.get(name)
            if reservoir is None:
                return {"count": 0}
            return reservoir.summary()

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- composition --------------------------------------------------------
    def absorb_run_health(self, health, prefix: str = "health") -> None:
        """Snapshot a :class:`RunHealth` record under ``<prefix>.``.

        Counters are written by **assignment**, so re-absorbing the
        same (or an updated) record replaces rather than accumulates —
        the health record itself stays the single source of truth for
        failure totals, and pool-rebuild retries cannot double count
        through this path.  Duck-typed so :mod:`repro.obs` keeps zero
        package dependencies.
        """
        for category, count in health.failures.items():
            self.set_counter(f"{prefix}.failures.{category}", count)
        self.set_counter(f"{prefix}.n_failures", health.n_failures)
        self.set_counter(f"{prefix}.retries", health.retries)
        self.set_counter(f"{prefix}.pool_rebuilds", health.pool_rebuilds)
        self.set_counter(f"{prefix}.engine_fallbacks",
                         health.engine_fallbacks)
        self.set_counter(f"{prefix}.serial_fallback",
                         int(health.serial_fallback))
        self.set_counter(f"{prefix}.checkpoints_written",
                         health.checkpoints_written)

    def merge(self, other: "Metrics") -> None:
        """Fold another registry in (counters add, gauges last-write).

        Histogram moments merge exactly; the percentile sample sets are
        combined through this registry's reservoirs, so the merged
        histogram is still bounded by ``histogram_cap``.
        """
        for name, value in other.counters().items():
            self.inc(name, value)
        for name, value in other.gauges().items():
            self.gauge(name, value)
        with other._lock:
            theirs = dict(other._histograms)
        with self._lock:
            for name, reservoir in theirs.items():
                mine = self._histograms.get(name)
                if mine is None:
                    mine = _Reservoir(name, self.histogram_cap)
                    self._histograms[name] = mine
                started = mine.absorb(reservoir)
                # Other's own truncations already arrived via the
                # counter merge above; only count a truncation the
                # merge itself caused.
                if started and not reservoir.truncated:
                    self._counters[TRUNCATION_COUNTER] = (
                        self._counters.get(TRUNCATION_COUNTER, 0) + 1
                    )

    # -- export -------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            histogram_names = list(self._histograms)
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                name: self.histogram_summary(name)
                for name in histogram_names
            },
        }

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """Serialize the registry to JSON; optionally write to *path*."""
        text = json.dumps(self.as_dict(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text


def format_metrics(metrics: Metrics, title: str = "Metrics") -> str:
    """Render a registry as aligned plain-text tables."""
    exported = metrics.as_dict()
    lines: List[str] = [title] if title else []
    rows = [(name, value) for name, value in
            sorted(exported["counters"].items())]
    rows += [(name, value) for name, value in
             sorted(exported["gauges"].items())]
    if rows:
        width = max(len(name) for name, _ in rows)
        for name, value in rows:
            rendered = (f"{value:g}" if isinstance(value, float)
                        else str(value))
            lines.append(f"  {name:<{width}}  {rendered}")
    histograms = exported["histograms"]
    if histograms:
        lines.append("  -- histograms (count / mean / p50 / p90 / max) --")
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            summary = histograms[name]
            if not summary.get("count"):
                lines.append(f"  {name:<{width}}  (empty)")
                continue
            sampled = " (sampled)" if summary.get("truncated") else ""
            lines.append(
                f"  {name:<{width}}  {summary['count']:d} / "
                f"{summary['mean']:.3g} / {summary['p50']:.3g} / "
                f"{summary['p90']:.3g} / {summary['max']:.3g}{sampled}"
            )
    if len(lines) <= (1 if title else 0):
        lines.append("  (no metrics recorded)")
    return "\n".join(lines)


_global_metrics = Metrics()


def get_metrics() -> Metrics:
    """The process-wide registry the instrumented components push to."""
    return _global_metrics


def set_metrics(metrics: Metrics) -> Metrics:
    """Swap the global registry (returns the previous one)."""
    global _global_metrics
    previous, _global_metrics = _global_metrics, metrics
    return previous


def inc(name: str, n: float = 1) -> None:
    """Bump a counter on the global registry."""
    _global_metrics.inc(name, n)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the global registry."""
    _global_metrics.observe(name, value)
