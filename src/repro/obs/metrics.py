"""Counter/gauge/histogram registry for optimization runs.

:class:`Metrics` is the quantitative half of the observability layer
(the :mod:`tracer <repro.obs.tracer>` is the temporal half): components
push named counters as they work — MNA solver calls, evaluator cache
hits and misses, batch-vs-scalar engine fallbacks — and a finished run
exports one JSON document plus a human-readable table
(:func:`format_metrics`).

The registry also **absorbs** the per-run
:class:`~repro.optimize.faults.RunHealth` records the fault-tolerant
runtime already keeps: :meth:`Metrics.absorb_run_health` snapshots the
health counters under a ``health.`` prefix by *assignment* (not
addition), so absorbing the same record twice — or a merged hierarchy
of records — can never double count.

Everything here is dependency-free and cheap enough to leave enabled:
a counter bump is a lock acquire plus two dict operations, orders of
magnitude below the millisecond-scale solves it annotates.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional

__all__ = [
    "Metrics",
    "format_metrics",
    "get_metrics",
    "set_metrics",
    "inc",
    "observe",
]


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already sorted list."""
    if not sorted_values:
        return float("nan")
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


class Metrics:
    """A thread-safe registry of counters, gauges, and histograms.

    * counters — monotonically increasing totals (:meth:`inc`);
    * gauges — last-write-wins point-in-time values (:meth:`gauge`);
    * histograms — raw observation lists summarized at export time
      (:meth:`observe`): count / mean / min / p50 / p90 / max.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    # -- recording ----------------------------------------------------------
    def inc(self, name: str, n: float = 1) -> None:
        """Add *n* to counter *name* (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def set_counter(self, name: str, value: float) -> None:
        """Overwrite counter *name* (idempotent absorption paths)."""
        with self._lock:
            self._counters[name] = value

    def gauge(self, name: str, value: float) -> None:
        """Record the current value of gauge *name*."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Append one observation to histogram *name*."""
        with self._lock:
            self._histograms.setdefault(name, []).append(float(value))

    # -- access -------------------------------------------------------------
    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def histogram_summary(self, name: str) -> Dict[str, float]:
        with self._lock:
            values = sorted(self._histograms.get(name, []))
        if not values:
            return {"count": 0}
        return {
            "count": len(values),
            "mean": float(sum(values) / len(values)),
            "min": values[0],
            "p50": _percentile(values, 0.50),
            "p90": _percentile(values, 0.90),
            "max": values[-1],
        }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- composition --------------------------------------------------------
    def absorb_run_health(self, health, prefix: str = "health") -> None:
        """Snapshot a :class:`RunHealth` record under ``<prefix>.``.

        Counters are written by **assignment**, so re-absorbing the
        same (or an updated) record replaces rather than accumulates —
        the health record itself stays the single source of truth for
        failure totals, and pool-rebuild retries cannot double count
        through this path.  Duck-typed so :mod:`repro.obs` keeps zero
        package dependencies.
        """
        for category, count in health.failures.items():
            self.set_counter(f"{prefix}.failures.{category}", count)
        self.set_counter(f"{prefix}.n_failures", health.n_failures)
        self.set_counter(f"{prefix}.retries", health.retries)
        self.set_counter(f"{prefix}.pool_rebuilds", health.pool_rebuilds)
        self.set_counter(f"{prefix}.engine_fallbacks",
                         health.engine_fallbacks)
        self.set_counter(f"{prefix}.serial_fallback",
                         int(health.serial_fallback))
        self.set_counter(f"{prefix}.checkpoints_written",
                         health.checkpoints_written)

    def merge(self, other: "Metrics") -> None:
        """Fold another registry in (counters add, gauges last-write)."""
        for name, value in other.counters().items():
            self.inc(name, value)
        for name, value in other.gauges().items():
            self.gauge(name, value)
        with other._lock:
            histograms = {k: list(v) for k, v in other._histograms.items()}
        with self._lock:
            for name, values in histograms.items():
                self._histograms.setdefault(name, []).extend(values)

    # -- export -------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            histogram_names = list(self._histograms)
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                name: self.histogram_summary(name)
                for name in histogram_names
            },
        }

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """Serialize the registry to JSON; optionally write to *path*."""
        text = json.dumps(self.as_dict(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text


def format_metrics(metrics: Metrics, title: str = "Metrics") -> str:
    """Render a registry as aligned plain-text tables."""
    exported = metrics.as_dict()
    lines: List[str] = [title] if title else []
    rows = [(name, value) for name, value in
            sorted(exported["counters"].items())]
    rows += [(name, value) for name, value in
             sorted(exported["gauges"].items())]
    if rows:
        width = max(len(name) for name, _ in rows)
        for name, value in rows:
            rendered = (f"{value:g}" if isinstance(value, float)
                        else str(value))
            lines.append(f"  {name:<{width}}  {rendered}")
    histograms = exported["histograms"]
    if histograms:
        lines.append("  -- histograms (count / mean / p50 / p90 / max) --")
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            summary = histograms[name]
            if not summary.get("count"):
                lines.append(f"  {name:<{width}}  (empty)")
                continue
            lines.append(
                f"  {name:<{width}}  {summary['count']:d} / "
                f"{summary['mean']:.3g} / {summary['p50']:.3g} / "
                f"{summary['p90']:.3g} / {summary['max']:.3g}"
            )
    if len(lines) <= (1 if title else 0):
        lines.append("  (no metrics recorded)")
    return "\n".join(lines)


_global_metrics = Metrics()


def get_metrics() -> Metrics:
    """The process-wide registry the instrumented components push to."""
    return _global_metrics


def set_metrics(metrics: Metrics) -> Metrics:
    """Swap the global registry (returns the previous one)."""
    global _global_metrics
    previous, _global_metrics = _global_metrics, metrics
    return previous


def inc(name: str, n: float = 1) -> None:
    """Bump a counter on the global registry."""
    _global_metrics.inc(name, n)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the global registry."""
    _global_metrics.observe(name, value)
