"""Nested-span tracing with zero cost when disabled.

The optimization stack performs thousands of MNA solves per run; this
tracer answers *where the wall clock goes* — how much of a
``goal_attainment_improved`` run is spent in the compiled batch solve,
the scalar fallback, the DC bias solver, or SLSQP bookkeeping.

Design constraints, in order:

1. **Disabled tracing must be free.**  Every instrumented hot path
   (batch solves, DC Newton iterations, evaluator calls) goes through
   :meth:`Tracer.span`; when the tracer is disabled that call returns a
   shared no-op context manager — one attribute check, no allocation.
   The tier-1 suite enforces < 3% overhead on the batched benchmark.
2. **Nesting is structural.**  Spans carry parent ids maintained on a
   per-thread stack, so the recorded buffer reconstructs the exact call
   tree (:meth:`Tracer.span_tree`) and a flamegraph-style aggregation
   (:meth:`Tracer.format_spans`).
3. **Worker merging.**  Process-pool workers trace into their own
   buffer; :meth:`Tracer.drain` snapshots it for transport and
   :meth:`Tracer.merge` folds it into the parent run's buffer with id
   remapping (see :class:`repro.optimize.batching.PopulationEvaluator`).

Tracing is opt-in: set ``REPRO_TRACE=1`` in the environment, construct
``Tracer(enabled=True)``, or call ``get_tracer().enable()``.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "TRACE_ENV",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span",
    "traced",
    "trace_enabled_by_env",
]

#: Environment variable that switches the global tracer on.
TRACE_ENV = "REPRO_TRACE"

_TRUTHY = ("1", "true", "yes", "on")


def trace_enabled_by_env() -> bool:
    """Whether ``REPRO_TRACE`` requests tracing."""
    return os.environ.get(TRACE_ENV, "").strip().lower() in _TRUTHY


@dataclass
class SpanRecord:
    """One completed span: a named, timed slice of the run.

    ``start_s`` is a ``time.monotonic`` timestamp — differences are
    meaningful within one process, absolute values are not.  ``pid``
    distinguishes worker-process spans after a merge.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    duration_s: float
    pid: int
    meta: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "meta": dict(self.meta),
        }


class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def annotate(self, **meta) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; records itself into the tracer on ``__exit__``."""

    __slots__ = ("_tracer", "name", "meta", "_start", "_span_id",
                 "_parent_id")

    def __init__(self, tracer: "Tracer", name: str, meta: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.meta = meta

    def annotate(self, **meta) -> "_Span":
        """Attach metadata (batch sizes, counts) to the span."""
        self.meta.update(meta)
        return self

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._span_id = tracer._new_id()
        stack = tracer._stack()
        self._parent_id = stack[-1] if stack else None
        stack.append(self._span_id)
        self._start = time.monotonic()
        return self

    def __exit__(self, *exc_info) -> bool:
        duration = time.monotonic() - self._start
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        tracer._append(SpanRecord(
            span_id=self._span_id,
            parent_id=self._parent_id,
            name=self.name,
            start_s=self._start,
            duration_s=duration,
            pid=os.getpid(),
            meta=self.meta,
        ))
        return False


class Tracer:
    """Collects nested :class:`SpanRecord` buffers, thread-safely.

    Each thread keeps its own span stack (nesting never crosses
    threads); the completed-record buffer is shared and lock-guarded.
    """

    def __init__(self, enabled: Optional[bool] = None):
        self.enabled = trace_enabled_by_env() if enabled is None \
            else bool(enabled)
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._local = threading.local()
        self._id_counter = 0

    # -- recording ----------------------------------------------------------
    def span(self, name: str, **meta):
        """A context manager timing one named slice of work.

        While the tracer is disabled this returns a shared no-op object
        — the instrumented hot paths pay one attribute check and one
        call, nothing else.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, meta)

    def trace(self, name: Optional[str] = None) -> Callable:
        """Decorator form of :meth:`span`."""
        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(span_name):
                    return fn(*args, **kwargs)
            return wrapper
        return decorate

    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def _new_id(self) -> int:
        with self._lock:
            self._id_counter += 1
            return self._id_counter

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _append(self, record: SpanRecord):
        with self._lock:
            self._records.append(record)

    # -- access -------------------------------------------------------------
    @property
    def records(self) -> List[SpanRecord]:
        """Snapshot of the completed spans (copy; safe to iterate)."""
        with self._lock:
            return list(self._records)

    def clear(self):
        with self._lock:
            self._records.clear()

    def drain(self) -> List[SpanRecord]:
        """Atomically take the buffer (used to ship worker spans home)."""
        with self._lock:
            records, self._records = self._records, []
        return records

    def merge(self, records: Sequence[SpanRecord],
              parent_id: Optional[int] = None):
        """Fold externally collected spans into this tracer's buffer.

        Span ids are remapped so a worker's ids cannot collide with the
        parent's; parentless spans in *records* are attached under
        *parent_id* (``None`` keeps them as roots).
        """
        id_map: Dict[int, int] = {}
        remapped = []
        for record in records:
            id_map[record.span_id] = self._new_id()
        for record in records:
            remapped.append(SpanRecord(
                span_id=id_map[record.span_id],
                parent_id=id_map.get(record.parent_id, parent_id),
                name=record.name,
                start_s=record.start_s,
                duration_s=record.duration_s,
                pid=record.pid,
                meta=dict(record.meta),
            ))
        with self._lock:
            self._records.extend(remapped)

    # -- reporting ----------------------------------------------------------
    def span_tree(self) -> List[Dict[str, object]]:
        """The recorded forest as nested dicts (roots in start order)."""
        records = sorted(self.records, key=lambda r: r.start_s)
        nodes: Dict[int, Dict[str, object]] = {}
        roots: List[Dict[str, object]] = []
        for record in records:
            nodes[record.span_id] = {
                "name": record.name,
                "start_s": record.start_s,
                "duration_s": record.duration_s,
                "pid": record.pid,
                "meta": dict(record.meta),
                "children": [],
            }
        for record in records:
            node = nodes[record.span_id]
            parent = nodes.get(record.parent_id)
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots

    def total_time(self) -> float:
        """Wall-clock seconds covered by the root spans."""
        return float(sum(
            r.duration_s for r in self.records if r.parent_id is None
        ))

    def _aggregate_paths(self):
        """Aggregate spans by call path: path -> [calls, total, child]."""
        records = self.records
        by_id = {r.span_id: r for r in records}
        paths: Dict[tuple, List[float]] = {}
        child_time: Dict[tuple, float] = {}

        def path_of(record: SpanRecord) -> tuple:
            parts = [record.name]
            parent = by_id.get(record.parent_id)
            guard = 0
            while parent is not None and guard < 128:
                parts.append(parent.name)
                parent = by_id.get(parent.parent_id)
                guard += 1
            return tuple(reversed(parts))

        for record in records:
            path = path_of(record)
            entry = paths.setdefault(path, [0, 0.0])
            entry[0] += 1
            entry[1] += record.duration_s
            if len(path) > 1:
                child_time[path[:-1]] = (
                    child_time.get(path[:-1], 0.0) + record.duration_s
                )
        return paths, child_time

    def format_spans(self, min_fraction: float = 0.0) -> str:
        """Flamegraph-style text summary, aggregated by call path.

        One line per distinct path, indented by depth, with call count,
        total time, self time (total minus traced children), and the
        share of the root wall clock.  Paths below *min_fraction* of
        the total are folded away.
        """
        paths, child_time = self._aggregate_paths()
        if not paths:
            return "(no spans recorded)"
        total = sum(t for path, (_, t) in paths.items() if len(path) == 1)
        total = total or 1e-12
        lines = [f"{'span':<48} {'calls':>7} {'total':>10} "
                 f"{'self':>10} {'%':>6}"]
        for path in sorted(paths, key=lambda p: (p[:1], p)):
            calls, span_total = paths[path]
            if span_total / total < min_fraction and len(path) > 1:
                continue
            self_time = span_total - child_time.get(path, 0.0)
            label = "  " * (len(path) - 1) + path[-1]
            lines.append(
                f"{label:<48.48} {calls:>7d} {span_total:>9.3f}s "
                f"{self_time:>9.3f}s {100.0 * span_total / total:>5.1f}%"
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "total_time_s": self.total_time(),
            "spans": [r.as_dict() for r in self.records],
            "tree": self.span_tree(),
        }

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """Serialize spans + tree to JSON; optionally write to *path*."""
        text = json.dumps(self.as_dict(), indent=indent, default=str)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Tracer":
        """Rebuild a tracer from an :meth:`as_dict` export.

        The reporting methods (``format_spans``, ``span_tree``) work on
        the reconstructed buffer, so an exported ``trace.json`` can be
        re-rendered offline (see ``repro-obs flame``).
        """
        tracer = cls(enabled=bool(data.get("enabled", True)))
        records: List[SpanRecord] = []
        for raw in data.get("spans", []):
            parent = raw.get("parent_id")
            records.append(SpanRecord(
                span_id=int(raw["span_id"]),
                parent_id=None if parent is None else int(parent),
                name=str(raw.get("name", "")),
                start_s=float(raw.get("start_s", 0.0)),
                duration_s=float(raw.get("duration_s", 0.0)),
                pid=int(raw.get("pid", 0)),
                meta=dict(raw.get("meta", {})),
            ))
        tracer._records = records
        tracer._id_counter = max((r.span_id for r in records), default=0)
        return tracer

    @classmethod
    def from_json(cls, path: str) -> "Tracer":
        """Load a ``trace.json`` written by :meth:`to_json`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


_global_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer the instrumented components record into."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer (returns the previous one)."""
    global _global_tracer
    previous, _global_tracer = _global_tracer, tracer
    return previous


def span(name: str, **meta):
    """Open a span on the global tracer (no-op while disabled)."""
    return _global_tracer.span(name, **meta)


def traced(name: Optional[str] = None) -> Callable:
    """Decorator recording a span on the *current* global tracer."""
    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _global_tracer
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(span_name):
                return fn(*args, **kwargs)
        return wrapper
    return decorate
