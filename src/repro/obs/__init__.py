"""repro.obs — lightweight, zero-dependency observability.

Three pieces, threaded through the whole stack:

* :mod:`repro.obs.tracer` — nested spans with a context-manager and
  decorator API, monotonic-clock timing, per-worker buffers merged by
  :class:`~repro.optimize.batching.PopulationEvaluator`.  Enabled by
  ``REPRO_TRACE=1`` or programmatically; free when disabled.
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry that
  absorbs the :class:`~repro.optimize.faults.RunHealth` counters and
  extends them with solver-call, cache hit/miss, and
  batch-vs-scalar-fallback totals; exported as JSON or a
  :func:`format_metrics` table.
* :mod:`repro.obs.telemetry` — the per-generation ``on_generation``
  callback protocol every population optimizer emits, persisted inside
  checkpoints so resumed runs keep a contiguous convergence trace.

Quick profiling of any callable::

    from repro import obs
    result, tracer = obs.profile_run(my_run)   # prints the span summary

or for a whole experiment, set ``REPRO_TRACE=1`` and call
:func:`export_observability` afterwards to drop ``trace.json`` +
``metrics.json`` next to the run's other artifacts.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional, Tuple

from repro.obs.analytics import (
    FleetView,
    RunIndex,
    config_distance,
    load_final_population,
    warm_start_population,
)
from repro.obs.compare import (
    RunDiff,
    RunSummary,
    compare_runs,
    compare_summaries,
    format_diff,
    load_summary,
    summarize_journal,
)
from repro.obs.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    JournalReplay,
    RunJournal,
    config_fingerprint,
    emit,
    get_journal,
    read_events,
    read_tail_events,
    replay_journal,
    set_journal,
)
from repro.obs.promexport import PromExporter, render_prometheus
from repro.obs.metrics import (
    Metrics,
    format_metrics,
    get_metrics,
    inc,
    observe,
    set_metrics,
)
from repro.obs.runs import (
    RunDir,
    RunRegistry,
    create_run,
    list_runs,
    load_run,
    recorded_run,
    summarize_run,
)
from repro.obs.telemetry import (
    GenerationRecord,
    TelemetryRecorder,
    format_telemetry,
    population_stats,
)
from repro.obs.tracer import (
    TRACE_ENV,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    trace_enabled_by_env,
    traced,
)

__all__ = [
    "TRACE_ENV",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span",
    "traced",
    "trace_enabled_by_env",
    "Metrics",
    "format_metrics",
    "get_metrics",
    "set_metrics",
    "inc",
    "observe",
    "GenerationRecord",
    "TelemetryRecorder",
    "format_telemetry",
    "population_stats",
    "profile_run",
    "export_observability",
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "RunJournal",
    "JournalReplay",
    "config_fingerprint",
    "get_journal",
    "set_journal",
    "emit",
    "read_events",
    "read_tail_events",
    "replay_journal",
    "FleetView",
    "RunIndex",
    "config_distance",
    "load_final_population",
    "warm_start_population",
    "PromExporter",
    "render_prometheus",
    "RunDir",
    "RunRegistry",
    "create_run",
    "list_runs",
    "load_run",
    "summarize_run",
    "recorded_run",
    "RunSummary",
    "RunDiff",
    "summarize_journal",
    "load_summary",
    "compare_runs",
    "compare_summaries",
    "format_diff",
]


def profile_run(fn: Callable, *args, stream=None,
                min_fraction: float = 0.005, **kwargs) -> Tuple:
    """Run *fn* under fresh tracer + metrics and dump the span summary.

    The global tracer *and* the global metrics registry are swapped
    for clean ones for the duration of the call (so the instrumented
    components record into them without polluting — or being polluted
    by — whatever the process accumulated before) and restored
    afterwards.  The flamegraph-style summary is printed to *stream*
    (default stdout).  Returns ``(result, tracer)``; the isolated
    registry is available as ``tracer.metrics``.
    """
    tracer = Tracer(enabled=True)
    metrics = Metrics()
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(metrics)
    start = time.monotonic()
    try:
        result = fn(*args, **kwargs)
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)
    wall = time.monotonic() - start
    tracer.metrics = metrics
    summary = tracer.format_spans(min_fraction=min_fraction)
    text = (f"profile_run: {getattr(fn, '__qualname__', fn)!s} "
            f"took {wall:.3f}s wall\n{summary}")
    print(text, file=stream)
    return result, tracer


def export_observability(directory: str,
                         tracer: Optional[Tracer] = None,
                         metrics: Optional[Metrics] = None,
                         prefix: str = "") -> Tuple[str, str]:
    """Write ``<prefix>trace.json`` + ``<prefix>metrics.json``.

    Defaults to the global tracer/registry; returns the two paths.
    """
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    os.makedirs(directory, exist_ok=True)
    trace_path = os.path.join(directory, f"{prefix}trace.json")
    metrics_path = os.path.join(directory, f"{prefix}metrics.json")
    tracer.to_json(trace_path)
    metrics.to_json(metrics_path)
    return trace_path, metrics_path
