"""repro.obs — lightweight, zero-dependency observability.

Three pieces, threaded through the whole stack:

* :mod:`repro.obs.tracer` — nested spans with a context-manager and
  decorator API, monotonic-clock timing, per-worker buffers merged by
  :class:`~repro.optimize.batching.PopulationEvaluator`.  Enabled by
  ``REPRO_TRACE=1`` or programmatically; free when disabled.
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry that
  absorbs the :class:`~repro.optimize.faults.RunHealth` counters and
  extends them with solver-call, cache hit/miss, and
  batch-vs-scalar-fallback totals; exported as JSON or a
  :func:`format_metrics` table.
* :mod:`repro.obs.telemetry` — the per-generation ``on_generation``
  callback protocol every population optimizer emits, persisted inside
  checkpoints so resumed runs keep a contiguous convergence trace.

Quick profiling of any callable::

    from repro import obs
    result, tracer = obs.profile_run(my_run)   # prints the span summary

or for a whole experiment, set ``REPRO_TRACE=1`` and call
:func:`export_observability` afterwards to drop ``trace.json`` +
``metrics.json`` next to the run's other artifacts.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional, Tuple

from repro.obs.metrics import (
    Metrics,
    format_metrics,
    get_metrics,
    inc,
    observe,
    set_metrics,
)
from repro.obs.telemetry import (
    GenerationRecord,
    TelemetryRecorder,
    format_telemetry,
    population_stats,
)
from repro.obs.tracer import (
    TRACE_ENV,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    trace_enabled_by_env,
    traced,
)

__all__ = [
    "TRACE_ENV",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span",
    "traced",
    "trace_enabled_by_env",
    "Metrics",
    "format_metrics",
    "get_metrics",
    "set_metrics",
    "inc",
    "observe",
    "GenerationRecord",
    "TelemetryRecorder",
    "format_telemetry",
    "population_stats",
    "profile_run",
    "export_observability",
]


def profile_run(fn: Callable, *args, stream=None,
                min_fraction: float = 0.005, **kwargs) -> Tuple:
    """Run *fn* under a fresh enabled tracer and dump the span summary.

    The global tracer is swapped for a clean, enabled one for the
    duration of the call (so the instrumented components record into
    it) and restored afterwards.  The flamegraph-style summary is
    printed to *stream* (default stdout).  Returns
    ``(result, tracer)`` so callers can post-process or export the
    spans.
    """
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    start = time.monotonic()
    try:
        result = fn(*args, **kwargs)
    finally:
        set_tracer(previous)
    wall = time.monotonic() - start
    summary = tracer.format_spans(min_fraction=min_fraction)
    text = (f"profile_run: {getattr(fn, '__qualname__', fn)!s} "
            f"took {wall:.3f}s wall\n{summary}")
    print(text, file=stream)
    return result, tracer


def export_observability(directory: str,
                         tracer: Optional[Tracer] = None,
                         metrics: Optional[Metrics] = None,
                         prefix: str = "") -> Tuple[str, str]:
    """Write ``<prefix>trace.json`` + ``<prefix>metrics.json``.

    Defaults to the global tracer/registry; returns the two paths.
    """
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    os.makedirs(directory, exist_ok=True)
    trace_path = os.path.join(directory, f"{prefix}trace.json")
    metrics_path = os.path.join(directory, f"{prefix}metrics.json")
    tracer.to_json(trace_path)
    metrics.to_json(metrics_path)
    return trace_path, metrics_path
