"""Run registry: optimization runs as durable, addressable artifacts.

A *run* is a directory under a runs root (default ``runs/``, overridden
by ``REPRO_RUNS_DIR``) holding everything needed to reconstruct and
compare the run later::

    runs/<run_id>/
        journal.jsonl     # the flight-recorder event stream (always)
        metrics.json      # final metrics registry export
        trace.json        # span export (when tracing was enabled)
        checkpoint.ckpt   # FileCheckpointStore target (crash resume)

:class:`RunRegistry` provides ``create_run`` / ``list_runs`` /
``load_run`` / ``summarize_run``; :func:`recorded_run` is the one-liner
most callers want — it creates the run directory, opens the journal,
writes the ``run_start`` header, installs the journal as the process
flight recorder (:func:`repro.obs.journal.set_journal`), and on exit
writes ``run_end``, exports metrics/trace, and restores the previous
journal::

    from repro.obs.runs import recorded_run

    with recorded_run("runs", name="lna", config={"seed": 11},
                      seeds={"optimizer": 11}) as run:
        flow.run_improved(seed=11, on_generation=run.journal,
                          checkpoint_store=run.checkpoint_store())

    print(run.run_id)          # address the artifact later:
    # repro-obs summary runs/<run_id>
"""

from __future__ import annotations

import os
import stat
import time
from contextlib import contextmanager
from typing import List, Optional

from repro.obs.journal import RunJournal, has_run_end, set_journal

__all__ = [
    "DEFAULT_RUNS_ROOT",
    "RUNS_DIR_ENV",
    "RunDir",
    "RunRegistry",
    "create_run",
    "list_runs",
    "load_run",
    "summarize_run",
    "recorded_run",
    "find_orphan_runs",
]

#: Environment variable overriding the default runs root.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"
DEFAULT_RUNS_ROOT = "runs"

JOURNAL_NAME = "journal.jsonl"
METRICS_NAME = "metrics.json"
TRACE_NAME = "trace.json"
CHECKPOINT_NAME = "checkpoint.ckpt"


def _resolve_root(root: Optional[str]) -> str:
    if root is not None:
        return str(root)
    return os.environ.get(RUNS_DIR_ENV) or DEFAULT_RUNS_ROOT


class RunDir:
    """One run's directory and its well-known artifact paths."""

    def __init__(self, root: str, run_id: str):
        self.root = str(root)
        self.run_id = str(run_id)
        self.journal: Optional[RunJournal] = None

    # -- paths --------------------------------------------------------------
    @property
    def path(self) -> str:
        return os.path.join(self.root, self.run_id)

    @property
    def journal_path(self) -> str:
        return os.path.join(self.path, JOURNAL_NAME)

    @property
    def metrics_path(self) -> str:
        return os.path.join(self.path, METRICS_NAME)

    @property
    def trace_path(self) -> str:
        return os.path.join(self.path, TRACE_NAME)

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.path, CHECKPOINT_NAME)

    def exists(self) -> bool:
        return os.path.isdir(self.path)

    def __repr__(self) -> str:
        return f"RunDir({self.path!r})"

    # -- artifacts ----------------------------------------------------------
    def open_journal(self, **kwargs) -> RunJournal:
        """Open (or continue) this run's journal."""
        os.makedirs(self.path, exist_ok=True)
        journal = RunJournal(self.journal_path, run_id=self.run_id,
                             **kwargs)
        self.journal = journal
        return journal

    def checkpoint_store(self, **kwargs):
        """A :class:`FileCheckpointStore` bound to this run directory."""
        # Lazy import: repro.obs stays import-light and cycle-free.
        from repro.optimize.checkpoint import FileCheckpointStore
        os.makedirs(self.path, exist_ok=True)
        return FileCheckpointStore(self.checkpoint_path, **kwargs)

    def export(self, tracer=None, metrics=None) -> None:
        """Write ``metrics.json`` (+ ``trace.json`` when spans exist)."""
        from repro.obs.metrics import get_metrics
        from repro.obs.tracer import get_tracer
        os.makedirs(self.path, exist_ok=True)
        metrics = metrics if metrics is not None else get_metrics()
        metrics.to_json(self.metrics_path)
        tracer = tracer if tracer is not None else get_tracer()
        if tracer.records:
            tracer.to_json(self.trace_path)

    def summary(self):
        """Summarize this run's journal (see :mod:`repro.obs.compare`)."""
        from repro.obs.compare import summarize_journal
        return summarize_journal(self.journal_path)


class RunRegistry:
    """Creates and addresses run directories under one root."""

    def __init__(self, root: Optional[str] = None):
        self.root = _resolve_root(root)

    def create_run(self, name: Optional[str] = None,
                   run_id: Optional[str] = None) -> RunDir:
        """Create a fresh (or explicitly named) run directory.

        Auto-generated ids are ``<name>-<UTC timestamp>[-<k>]`` with a
        collision suffix, so two runs started in the same second still
        get distinct directories.  An explicit *run_id* reuses the
        directory if it already exists (resume workflows point at the
        same run on purpose).
        """
        os.makedirs(self.root, exist_ok=True)
        if run_id is not None:
            run = RunDir(self.root, run_id)
            os.makedirs(run.path, exist_ok=True)
            return run
        stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
        base = f"{name or 'run'}-{stamp}"
        candidate = base
        for attempt in range(1, 10_000):
            path = os.path.join(self.root, candidate)
            try:
                os.mkdir(path)
            except FileExistsError:
                candidate = f"{base}-{attempt}"
                continue
            return RunDir(self.root, candidate)
        raise RuntimeError(
            f"could not allocate a unique run id under {self.root!r}"
        )

    def list_runs(self) -> List[str]:
        """Run ids in deterministic creation order (oldest first).

        Ordering is ``(st_ctime_ns, run_id)`` of each run directory —
        stable across filesystems that return ``os.listdir`` in
        arbitrary order, and unaffected by appends to a run's existing
        artifacts (journal writes touch the file inode, not the
        directory's).  Creating a *new* entry inside a run directory
        does bump its ctime, so a run reorders at most once per new
        artifact, never per write.  Non-run entries — regular files,
        plus anything starting with ``_`` or ``.`` such as the fleet
        index ``_index.jsonl`` — are skipped.
        """
        try:
            entries = os.listdir(self.root)
        except FileNotFoundError:
            return []
        keyed = []
        for entry in entries:
            if entry.startswith(("_", ".")):
                continue
            path = os.path.join(self.root, entry)
            try:
                info = os.stat(path)
            except OSError:
                continue  # raced with a concurrent gc
            if not stat.S_ISDIR(info.st_mode):
                continue
            keyed.append((info.st_ctime_ns, entry))
        return [entry for _, entry in sorted(keyed)]

    def load_run(self, run_id: str) -> RunDir:
        """Address an existing run; ``KeyError`` when it does not exist."""
        run = RunDir(self.root, run_id)
        if not run.exists():
            raise KeyError(
                f"no run {run_id!r} under {self.root!r} "
                f"(known: {', '.join(self.list_runs()) or 'none'})"
            )
        return run

    def latest(self) -> Optional[RunDir]:
        """The most recently *created* run, or ``None`` when empty.

        Defined as the last entry of :meth:`list_runs` — deterministic
        creation order, so a resumed older run (journal appends) never
        shadows a newer one the way journal-mtime-based "latest" would.
        """
        runs = self.list_runs()
        return RunDir(self.root, runs[-1]) if runs else None

    def summarize_run(self, run_id: str):
        """Summary of one run's journal (see :mod:`repro.obs.compare`)."""
        return self.load_run(run_id).summary()


def find_orphan_runs(root: Optional[str] = None,
                     protected=()) -> List[dict]:
    """Run directories that died without a ``run_end`` trailer.

    A finished run — completed or failed — always carries the trailer
    (:func:`recorded_run` writes it on both paths, and the service
    runner writes it at every terminal job transition).  A directory
    without one is the wreckage of a crash *unless someone still owns
    it*: run ids in *protected* (live service jobs — pending, leased,
    or draining — whose checkpoints must survive for takeover) are
    never reported.  Returns one dict per orphan with ``run_id``,
    ``path``, and a human ``reason``; deciding whether to delete is the
    caller's job (``repro-obs gc`` reports by default and deletes only
    with ``--force``).
    """
    registry = root if isinstance(root, RunRegistry) else RunRegistry(root)
    protected = set(protected)
    orphans: List[dict] = []
    for run_id in registry.list_runs():
        if run_id in protected:
            continue
        run = RunDir(registry.root, run_id)
        if not os.path.exists(run.journal_path):
            orphans.append({
                "run_id": run_id,
                "path": run.path,
                "reason": "no journal was ever written",
            })
        elif not has_run_end(run.journal_path):
            orphans.append({
                "run_id": run_id,
                "path": run.path,
                "reason": "journal has no run_end trailer",
            })
    return orphans


# -- module-level conveniences (default registry) ----------------------------

def create_run(name: Optional[str] = None, root: Optional[str] = None,
               run_id: Optional[str] = None) -> RunDir:
    return RunRegistry(root).create_run(name=name, run_id=run_id)


def list_runs(root: Optional[str] = None) -> List[str]:
    return RunRegistry(root).list_runs()


def load_run(run_id: str, root: Optional[str] = None) -> RunDir:
    return RunRegistry(root).load_run(run_id)


def summarize_run(run_id: str, root: Optional[str] = None):
    return RunRegistry(root).summarize_run(run_id)


@contextmanager
def recorded_run(root=None, name: Optional[str] = None,
                 run_id: Optional[str] = None, config=None, seeds=None,
                 journal_kwargs: Optional[dict] = None):
    """Record one run: directory + journal + active-journal scope.

    Yields the :class:`RunDir` with ``run.journal`` open.  On normal
    exit a ``run_end(status="completed")`` trailer is written; if the
    body raises, the trailer carries ``status="failed"`` and the error
    before the exception propagates.  Either way the journal is closed,
    the previous active journal is restored, and the final metrics
    (plus spans, when tracing) are exported next to the journal.
    """
    registry = root if isinstance(root, RunRegistry) else RunRegistry(root)
    run = registry.create_run(name=name, run_id=run_id)
    journal = run.open_journal(**(journal_kwargs or {}))
    journal.run_start(config=config, seeds=seeds)
    previous = set_journal(journal)
    try:
        yield run
    except BaseException as exc:
        journal.run_end(status="failed",
                        error=f"{type(exc).__name__}: {exc}")
        raise
    else:
        journal.run_end(status="completed")
    finally:
        set_journal(previous)
        run.export()
        journal.close()
