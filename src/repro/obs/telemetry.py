"""Per-generation optimizer telemetry (the ``on_generation`` protocol).

Pareto-sizing workflows diagnose optimizer behaviour from per-iteration
convergence traces — best/mean objective, constraint violation,
population spread, wall clock.  Every population optimizer in
:mod:`repro.optimize` (DE, PSO, NSGA-II, and the staged improved
goal-attainment flow) accepts an ``on_generation`` callback and invokes
it once per completed generation (or stage) with a
:class:`GenerationRecord`.

Any callable works as a sink; :class:`TelemetryRecorder` is the
standard one.  It accumulates records, renders a convergence table
(:func:`format_telemetry`), exports JSON, and — because it implements
``state()``/``restore()`` — rides inside optimizer checkpoints: a run
resumed from its last checkpoint continues the trace **contiguously**
(no gaps, no duplicated generations), which
:meth:`TelemetryRecorder.is_contiguous` verifies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from math import isfinite, nan
from typing import Dict, List, Optional

__all__ = [
    "GenerationRecord",
    "TelemetryRecorder",
    "population_stats",
    "format_telemetry",
]


@dataclass
class GenerationRecord:
    """One generation's (or stage's) convergence snapshot.

    ``best``/``mean``/``spread`` summarize the population fitness
    (finite members only; all-failed populations report ``inf``/``nan``);
    ``violation`` is the smallest maximum-constraint-violation in the
    population (0 when a feasible candidate exists, ``nan`` for
    unconstrained problems); ``n_failures`` is the cumulative failed
    evaluation count at the end of the generation; ``wall_time_s`` is
    the wall clock the generation consumed.
    """

    algorithm: str
    generation: int
    nfev: int
    best: float
    mean: float
    spread: float
    wall_time_s: float
    n_failures: int = 0
    violation: float = nan
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "generation": self.generation,
            "nfev": self.nfev,
            "best": self.best,
            "mean": self.mean,
            "spread": self.spread,
            "wall_time_s": self.wall_time_s,
            "n_failures": self.n_failures,
            "violation": self.violation,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GenerationRecord":
        return cls(
            algorithm=str(data["algorithm"]),
            generation=int(data["generation"]),
            nfev=int(data["nfev"]),
            best=float(data["best"]),
            mean=float(data["mean"]),
            spread=float(data["spread"]),
            wall_time_s=float(data["wall_time_s"]),
            n_failures=int(data.get("n_failures", 0)),
            violation=float(data.get("violation", nan)),
            extra=dict(data.get("extra", {})),
        )


def population_stats(fitness) -> tuple:
    """``(best, mean, spread)`` of a fitness vector, penalty-aware.

    Failed candidates carry ``inf`` fitness; they are excluded from the
    statistics so one penalty cannot wipe out the convergence trace.
    An all-failed population reports ``(inf, inf, 0.0)``.
    """
    finite = [float(v) for v in fitness if isfinite(float(v))]
    if not finite:
        return float("inf"), float("inf"), 0.0
    best = min(finite)
    return best, sum(finite) / len(finite), max(finite) - best


class TelemetryRecorder:
    """Accumulates :class:`GenerationRecord` objects from a run.

    Pass an instance as an optimizer's ``on_generation``; after the run
    (or across checkpoint/resume cycles) the ``records`` list holds the
    full convergence trace in generation order.
    """

    def __init__(self):
        self.records: List[GenerationRecord] = []

    def __call__(self, record: GenerationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def generations(self, algorithm: Optional[str] = None) -> List[int]:
        """Generation indices, optionally filtered by algorithm."""
        return [r.generation for r in self.records
                if algorithm is None or r.algorithm == algorithm]

    def is_contiguous(self) -> bool:
        """Whether each algorithm's trace has no gaps or duplicates."""
        by_algorithm: Dict[str, List[int]] = {}
        for record in self.records:
            by_algorithm.setdefault(record.algorithm, []).append(
                record.generation
            )
        for generations in by_algorithm.values():
            expected = list(range(generations[0],
                                  generations[0] + len(generations)))
            if generations != expected:
                return False
        return True

    # -- checkpoint support -------------------------------------------------
    def state(self) -> Dict[str, object]:
        """Serializable snapshot for optimizer checkpoint payloads."""
        return {"records": [r.as_dict() for r in self.records]}

    def restore(self, state: Dict[str, object]) -> None:
        """Replace the trace with a checkpoint snapshot.

        The snapshot was taken when the checkpoint was written, so any
        records emitted after that generation (by the interrupted run)
        are dropped — the resumed run re-emits them, keeping the trace
        contiguous and identical to an uninterrupted run's.
        """
        self.records = [GenerationRecord.from_dict(r)
                        for r in state["records"]]

    # -- export -------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {"records": [r.as_dict() for r in self.records]}

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        text = json.dumps(self.as_dict(), indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text


def format_telemetry(recorder: TelemetryRecorder,
                     title: str = "Convergence trace") -> str:
    """Render a recorder's trace as an aligned plain-text table."""
    if not recorder.records:
        return f"{title}\n  (no generations recorded)"
    lines = [
        title,
        f"  {'gen':>5} {'nfev':>8} {'best':>12} {'mean':>12} "
        f"{'spread':>10} {'viol':>9} {'fails':>6} {'wall [s]':>9}",
    ]
    for r in recorder.records:
        violation = f"{r.violation:.2e}" if isfinite(r.violation) else "-"
        lines.append(
            f"  {r.generation:>5d} {r.nfev:>8d} {r.best:>12.5g} "
            f"{r.mean:>12.5g} {r.spread:>10.4g} {violation:>9} "
            f"{r.n_failures:>6d} {r.wall_time_s:>9.3f}"
        )
    return "\n".join(lines)
