"""``repro-obs`` — terminal front-end for the flight-recorder layer.

Six subcommands — read-only except ``gc --force`` (the ``fleet``
family maintains the runs index as a side effect)::

    repro-obs tail    <run|journal> [-n 20] [--event generation] [-f]
    repro-obs summary <run|journal> [--json]
    repro-obs compare <baseline> <candidate> [--tol NAME=KIND:TOL[:DIR]]
                      [--summary-json PATH]
    repro-obs fleet   summary|curves|failures|top [--algorithm A]
                      [--experiment E] [--status S] [--json]
    repro-obs gc      [--service ROOT] [--force]
    repro-obs flame   <run|trace.json> [--min-fraction 0.005]

A *run* argument may be a run directory, a ``journal.jsonl`` path, or a
bare run id resolved against the runs root (``REPRO_RUNS_DIR`` or
``runs/``; see :mod:`repro.obs.runs`).  ``compare`` exits non-zero on a
tolerance breach, which is what lets CI gate on it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

__all__ = ["main", "build_parser"]


def _resolve_run_path(argument: str, root: Optional[str] = None) -> str:
    """Map a run id / run dir / journal path to a concrete file path."""
    if os.path.exists(argument):
        return argument
    from repro.obs.runs import RunRegistry
    registry = RunRegistry(root)
    run = registry.load_run(argument)  # KeyError lists known runs
    return run.path


def _journal_path(argument: str, root: Optional[str] = None) -> str:
    path = _resolve_run_path(argument, root)
    if os.path.isdir(path):
        path = os.path.join(path, "journal.jsonl")
    return path


def _parse_tolerance(spec: str) -> Tuple[str, Tuple[str, float, str]]:
    """Parse ``NAME=KIND:TOL[:DIR]`` into a tolerance-table entry."""
    try:
        name, rule = spec.split("=", 1)
        parts = rule.split(":")
        kind, tol = parts[0], float(parts[1])
        direction = parts[2] if len(parts) > 2 else None
    except (ValueError, IndexError):
        raise argparse.ArgumentTypeError(
            f"bad tolerance {spec!r}; expected NAME=KIND:TOL[:DIR], "
            f"e.g. final_best=rel:0.05:increase"
        )
    if not name.strip():
        raise argparse.ArgumentTypeError(
            f"bad tolerance {spec!r}: empty metric name "
            f"(expected NAME=KIND:TOL[:DIR])"
        )
    if kind not in ("rel", "abs"):
        raise argparse.ArgumentTypeError(
            f"bad tolerance kind {kind!r} in {spec!r} (rel or abs)"
        )
    if direction is not None and direction not in ("increase", "decrease",
                                                   "both"):
        raise argparse.ArgumentTypeError(
            f"bad direction {direction!r} in {spec!r} "
            f"(increase, decrease, or both)"
        )
    return name.strip(), (kind, tol, direction)


# -- subcommands -------------------------------------------------------------

def _cmd_tail(args) -> int:
    """Print the last N events, reading the file backwards.

    The bounded tail read (:func:`repro.obs.journal.read_tail_events`)
    touches only the final blocks of the journal, so tailing a
    multi-gigabyte live run is as cheap as tailing a small one.
    ``--follow`` then streams new events as the run appends them,
    exiting at the ``run_end`` trailer (or on Ctrl-C).
    """
    import time as _time

    from repro.obs.journal import read_tail_events
    path = _journal_path(args.run, args.runs_root)
    events, truncated = read_tail_events(path, args.lines,
                                         event=args.event or None)
    for event in events:
        print(json.dumps(event, separators=(",", ":"), default=str))
    if truncated and not args.follow:
        print("(truncated tail: last line was torn mid-write)",
              file=sys.stderr)
    if not args.follow:
        return 0
    if any(e.get("event") == "run_end" for e in events):
        return 0  # the run already finished; nothing to follow
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            remainder = b""
            while True:
                chunk = handle.read(65536)
                if not chunk:
                    _time.sleep(args.poll)
                    continue
                remainder += chunk
                lines = remainder.split(b"\n")
                remainder = lines.pop()  # partial line stays buffered
                for raw in lines:
                    if not raw:
                        continue
                    try:
                        event = json.loads(raw.decode("utf-8"))
                    except (ValueError, UnicodeDecodeError):
                        continue
                    if not isinstance(event, dict):
                        continue
                    if not args.event \
                            or event.get("event") == args.event \
                            or event.get("event") == "run_end":
                        print(json.dumps(event, separators=(",", ":"),
                                         default=str), flush=True)
                    if event.get("event") == "run_end":
                        return 0
    except KeyboardInterrupt:
        return 0


def _cmd_summary(args) -> int:
    from repro.obs.compare import load_summary
    path = _resolve_run_path(args.run, args.runs_root)
    summary = load_summary(path)
    if args.json:
        print(summary.to_json())
        return 0
    print(f"run        : {summary.run_id or '(unknown)'}")
    print(f"source     : {summary.source}")
    print(f"status     : {summary.status}")
    if summary.algorithms:
        print(f"algorithms : {', '.join(summary.algorithms)}")
    rows = [
        ("generations", summary.n_generations),
        ("final best", summary.final_best),
        ("final violation", summary.final_violation),
        ("evaluations", summary.total_nfev),
        ("failures", summary.n_failures),
        ("guard violations", summary.guard_violations),
        ("cache hit rate", summary.cache_hit_rate),
        ("wall time [s]", summary.wall_time_s),
        ("best yield", summary.yield_fraction),
        ("worst-case NF [dB]", summary.worst_case_nf_db),
        ("resumes", summary.n_resumes),
    ]
    for label, value in rows:
        if value is None:
            continue
        rendered = f"{value:.6g}" if isinstance(value, float) else str(value)
        print(f"{label:<16}: {rendered}")
    if summary.truncated_tail or summary.n_corrupt:
        print(f"integrity  : truncated_tail={summary.truncated_tail} "
              f"n_corrupt={summary.n_corrupt}")
    return 0


def _cmd_compare(args) -> int:
    from repro.obs.compare import compare_runs, format_diff
    tolerances: Dict[str, Tuple] = {}
    for name, (kind, tol, direction) in (args.tol or []):
        from repro.obs.compare import DEFAULT_TOLERANCES
        default = DEFAULT_TOLERANCES.get(name, (None, None, "both"))
        tolerances[name] = (kind, tol, direction or default[2])
    counter_checks = {name: tol for name, tol in (args.counter or [])}
    diff = compare_runs(
        _resolve_run_path(args.baseline, args.runs_root),
        _resolve_run_path(args.candidate, args.runs_root),
        tolerances=tolerances or None,
        counter_checks=counter_checks or None,
    )
    if args.summary_json:
        # Archive the full check table regardless of verdict, so a CI
        # gate keeps the evidence of what was compared even on failure.
        with open(args.summary_json, "w", encoding="utf-8") as handle:
            handle.write(diff.to_json() + "\n")
    if args.json:
        print(diff.to_json())
    else:
        print(format_diff(diff))
    return 0 if diff.ok else 1


def _parse_counter(spec: str) -> Tuple[str, float]:
    try:
        name, tol = spec.split("=", 1)
        parsed = name.strip(), float(tol)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad counter check {spec!r}; expected NAME=RELTOL"
        )
    if not parsed[0]:
        raise argparse.ArgumentTypeError(
            f"bad counter check {spec!r}: empty counter name "
            f"(expected NAME=RELTOL)"
        )
    return parsed


def _fleet_view(args):
    from repro.obs.analytics import FleetView, RunIndex
    root = args.runs_root or os.environ.get("REPRO_RUNS_DIR") or "runs"
    index = RunIndex(root)
    if getattr(args, "rebuild", False):
        index.rebuild()
        return FleetView(index=index, refresh=False)
    return FleetView(index=index)


def _fleet_filters(args) -> Dict[str, Optional[str]]:
    return {
        "algorithm": args.algorithm,
        "experiment": args.experiment,
        "config_fingerprint": args.fingerprint,
        "status": args.status,
    }


def _cmd_fleet_summary(args) -> int:
    view = _fleet_view(args)
    summary = view.summary(**_fleet_filters(args))
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"runs        : {summary['n_runs']}")
    for label, bucket in (("status", "by_status"),
                          ("algorithm", "by_algorithm"),
                          ("experiment", "by_experiment")):
        tallies = summary[bucket]
        if tallies:
            rendered = ", ".join(f"{key}={count}" for key, count
                                 in sorted(tallies.items()))
            print(f"{label:<12}: {rendered}")
    print(f"evaluations : {summary['total_nfev']}")
    print(f"wall time   : {summary['total_wall_time_s']:.3g} s")
    if summary["best"] is not None:
        print(f"best        : {summary['best']['final_best']:.6g} "
              f"({summary['best']['run_id']})")
    failures = summary["failures"]
    print(f"failures    : {failures['total']} across "
          f"{failures['runs_with_failures']} run(s), "
          f"guard violations {failures['guard_violations']:g}")
    rates = summary["rates"]
    for label, key in (("cache hit rate", "cache_hit_rate"),
                       ("woodbury engagement", "woodbury_engagement"),
                       ("screen fraction", "screen_fraction")):
        value = rates[key]
        if value is not None:
            print(f"{label:<19} : {value:.3f}")
    return 0


def _cmd_fleet_curves(args) -> int:
    view = _fleet_view(args)
    envelopes = view.envelopes(n_grid=args.grid, **_fleet_filters(args))
    if args.json:
        print(json.dumps(envelopes, indent=2, sort_keys=True))
        return 0
    if not envelopes:
        print("no complete convergence curves in the selection")
        return 0
    for label, envelope in envelopes.items():
        print(f"{label} ({envelope['n_runs']} run(s)):")
        print("  progress  median        q25           q75")
        for i, progress in enumerate(envelope["grid"]):
            print(f"  {progress:>8.2f}  {envelope['median'][i]:<12.6g} "
                  f"{envelope['q25'][i]:<12.6g} "
                  f"{envelope['q75'][i]:<12.6g}")
    return 0


def _cmd_fleet_failures(args) -> int:
    view = _fleet_view(args)
    failures = view.failures(**_fleet_filters(args))
    if args.json:
        print(json.dumps(failures, indent=2, sort_keys=True))
        return 0
    print(f"total failures   : {failures['total']}")
    print(f"guard violations : {failures['guard_violations']:g}")
    print(f"affected runs    : {failures['runs_with_failures']}")
    for category, count in sorted(failures["by_category"].items(),
                                  key=lambda kv: (-kv[1], kv[0])):
        print(f"  {category:<16} {count}")
    for worst in failures["worst_runs"]:
        print(f"  worst: {worst['run_id']}  "
              f"({worst['n_failures']} failure(s))")
    return 0


def _cmd_fleet_top(args) -> int:
    view = _fleet_view(args)
    rows = view.top(n=args.n, key=args.key, **_fleet_filters(args))
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if not rows:
        print("no runs with a finite value for that key")
        return 0
    for rank, row in enumerate(rows, 1):
        print(f"{rank:>3}. {row['run_id']:<40} "
              f"{args.key}={row[args.key]:.6g}  "
              f"nfev={row['total_nfev']}  "
              f"[{','.join(row['algorithms']) or '-'}]")
    return 0


def _cmd_gc(args) -> int:
    """Report (or with ``--force`` delete) crash wreckage.

    Two sweeps:

    * **Orphan run directories** — runs whose journal never got its
      ``run_end`` trailer and that no live service job (pending or
      leased in a ``--service`` root's queue) still owns.  Live jobs
      are protected because a released or recovered job has no trailer
      *by design*: its checkpoint must survive for lease takeover.
    * **Stale shared-memory segments** — ``/dev/shm`` segments with the
      worker-fleet name prefix whose embedded owner pid is dead.

    Reporting is the default; nothing is deleted without ``--force``.
    """
    import shutil

    from repro.obs.runs import find_orphan_runs
    from repro.optimize.fleet import (
        segment_owner_pid,
        stale_segments,
        unlink_segment,
    )
    from repro.service.queue import live_job_ids

    service_roots = list(args.service or [])
    scan_roots: List[Tuple[str, Tuple[str, ...]]] = []
    runs_root = args.runs_root or os.environ.get("REPRO_RUNS_DIR") or "runs"
    # A bare runs root that sits inside a service root inherits that
    # service's live-job protection automatically.
    implicit_service = os.path.dirname(os.path.abspath(runs_root))
    protected = tuple(live_job_ids(implicit_service))
    scan_roots.append((runs_root, protected))
    for root in service_roots:
        scan_roots.append((os.path.join(root, "runs"),
                           tuple(live_job_ids(root))))

    orphans: List[dict] = []
    seen_paths = set()
    for root, protected in scan_roots:
        for orphan in find_orphan_runs(root, protected=protected):
            real = os.path.realpath(orphan["path"])
            if real not in seen_paths:
                seen_paths.add(real)
                orphans.append(orphan)
    segments = [] if args.no_shm else stale_segments()

    for orphan in orphans:
        print(f"orphan run     : {orphan['path']}  ({orphan['reason']})")
    for name in segments:
        owner = segment_owner_pid(name)
        print(f"stale segment  : {name}  "
              f"(owner pid {owner if owner is not None else '?'} is dead)")
    if not orphans and not segments:
        print("nothing to collect")
        return 0
    if not args.force:
        print(f"(report only: {len(orphans)} orphan run(s), "
              f"{len(segments)} stale segment(s); "
              f"rerun with --force to delete)")
        return 0
    n_removed = 0
    for orphan in orphans:
        try:
            shutil.rmtree(orphan["path"])
            n_removed += 1
        except OSError as exc:
            print(f"error: could not remove {orphan['path']!r}: {exc}",
                  file=sys.stderr)
    n_unlinked = sum(1 for name in segments if unlink_segment(name))
    print(f"deleted {n_removed} orphan run(s), "
          f"unlinked {n_unlinked} stale segment(s)")
    return 0


def _cmd_flame(args) -> int:
    from repro.obs.tracer import Tracer
    path = _resolve_run_path(args.run, args.runs_root)
    if os.path.isdir(path):
        path = os.path.join(path, "trace.json")
    if not os.path.exists(path):
        print(f"no trace export at {path!r} "
              f"(was the run recorded with REPRO_TRACE=1?)",
              file=sys.stderr)
        return 2
    tracer = Tracer.from_json(path)
    print(tracer.format_spans(min_fraction=args.min_fraction))
    return 0


# -- entry point -------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect and diff recorded optimization runs.",
    )
    parser.add_argument(
        "--runs-root", default=None,
        help="runs root for bare run-id arguments "
             "(default: $REPRO_RUNS_DIR or ./runs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tail = sub.add_parser("tail", help="print the last journal events")
    tail.add_argument("run", help="run id, run directory, or journal file")
    tail.add_argument("-n", "--lines", type=int, default=20)
    tail.add_argument("--event", default=None,
                      help="only events of this type (e.g. generation)")
    tail.add_argument("-f", "--follow", action="store_true",
                      help="keep streaming new events until run_end")
    tail.add_argument("--poll", type=float, default=0.2,
                      help="follow-mode poll interval in seconds")
    tail.set_defaults(handler=_cmd_tail)

    summary = sub.add_parser("summary", help="summarize one run")
    summary.add_argument("run", help="run id, run directory, journal, "
                                     "or summary JSON")
    summary.add_argument("--json", action="store_true",
                         help="machine-readable RunSummary JSON")
    summary.set_defaults(handler=_cmd_summary)

    compare = sub.add_parser(
        "compare", help="diff two runs; exit 1 on regression")
    compare.add_argument("baseline", help="baseline run/journal/summary/"
                                          "BENCH_*.json")
    compare.add_argument("candidate", help="candidate run/journal/summary")
    compare.add_argument(
        "--tol", action="append", type=_parse_tolerance, metavar="SPEC",
        help="override a tolerance: NAME=KIND:TOL[:DIR], e.g. "
             "final_best=rel:0.05 or n_failures=abs:2:increase "
             "(repeatable)",
    )
    compare.add_argument(
        "--counter", action="append", type=_parse_counter, metavar="SPEC",
        help="also compare a metrics counter: NAME=RELTOL (repeatable)",
    )
    compare.add_argument("--json", action="store_true",
                         help="machine-readable RunDiff JSON")
    compare.add_argument(
        "--summary-json", metavar="PATH", default=None,
        help="also write the full RunDiff check table to PATH "
             "(written even when the diff regresses)",
    )
    compare.set_defaults(handler=_cmd_compare)

    fleet = sub.add_parser(
        "fleet", help="indexed analytics across every run under the "
                      "runs root")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    def _fleet_common(sub_parser):
        sub_parser.add_argument("--algorithm", default=None,
                                help="only runs that ran this algorithm")
        sub_parser.add_argument("--experiment", default=None,
                                help="only runs of this experiment "
                                     "(e5, e12, ...)")
        sub_parser.add_argument("--fingerprint", default=None,
                                help="only runs with this config "
                                     "fingerprint")
        sub_parser.add_argument("--status", default=None,
                                help="only runs with this outcome "
                                     "(completed, failed, incomplete)")
        sub_parser.add_argument("--rebuild", action="store_true",
                                help="drop the index and re-derive every "
                                     "entry from its journal first")
        sub_parser.add_argument("--json", action="store_true",
                                help="machine-readable JSON output")

    fleet_summary = fleet_sub.add_parser(
        "summary", help="headline numbers for the (filtered) fleet")
    _fleet_common(fleet_summary)
    fleet_summary.set_defaults(handler=_cmd_fleet_summary)

    fleet_curves = fleet_sub.add_parser(
        "curves", help="median/IQR convergence envelopes per algorithm")
    _fleet_common(fleet_curves)
    fleet_curves.add_argument("--grid", type=int, default=12,
                              help="points on the normalized progress "
                                   "grid")
    fleet_curves.set_defaults(handler=_cmd_fleet_curves)

    fleet_failures = fleet_sub.add_parser(
        "failures", help="failure taxonomy and guard-violation roll-up")
    _fleet_common(fleet_failures)
    fleet_failures.set_defaults(handler=_cmd_fleet_failures)

    fleet_top = fleet_sub.add_parser(
        "top", help="best runs by a summary key")
    _fleet_common(fleet_top)
    fleet_top.add_argument("-n", type=int, default=10)
    fleet_top.add_argument("--key", default="final_best",
                           help="entry key to rank by (ascending)")
    fleet_top.set_defaults(handler=_cmd_fleet_top)

    gc = sub.add_parser(
        "gc", help="find (and with --force delete) orphaned run "
                   "directories and stale shared-memory segments")
    gc.add_argument(
        "--service", action="append", metavar="ROOT",
        help="also scan this service root's runs/, protecting its "
             "live (pending/leased) jobs (repeatable)",
    )
    gc.add_argument("--no-shm", action="store_true",
                    help="skip the /dev/shm stale-segment scan")
    gc.add_argument("--force", action="store_true",
                    help="delete what the scan found (default: report)")
    gc.set_defaults(handler=_cmd_gc)

    flame = sub.add_parser(
        "flame", help="re-render a trace.json span summary")
    flame.add_argument("run", help="run id, run directory, or trace.json")
    flame.add_argument("--min-fraction", type=float, default=0.005)
    flame.set_defaults(handler=_cmd_flame)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped into head/less that exited early; not an error.
        # Detach stdout so interpreter shutdown doesn't re-raise.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0
    except KeyError as exc:
        # load_run raises KeyError listing the known run ids.
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
