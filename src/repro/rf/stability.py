"""Two-port stability measures and stability circles.

Unconditional stability requires ``K > 1`` and ``|Δ| < 1``
(equivalently ``μ > 1``, the single-parameter Edwards–Sinsky test).
The amplifier design flow treats ``μ > 1`` across a wide guard band as
a hard constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "determinant",
    "rollett_k",
    "mu_source",
    "mu_load",
    "is_unconditionally_stable",
    "StabilityCircle",
    "source_stability_circle",
    "load_stability_circle",
]


def _split(s):
    s = np.asarray(s, dtype=complex)
    return s[..., 0, 0], s[..., 0, 1], s[..., 1, 0], s[..., 1, 1]


def determinant(s):
    """Δ = S11 S22 − S12 S21."""
    s11, s12, s21, s22 = _split(s)
    return s11 * s22 - s12 * s21


def rollett_k(s):
    """Rollett stability factor K."""
    s11, s12, s21, s22 = _split(s)
    delta = determinant(s)
    numerator = 1.0 - np.abs(s11) ** 2 - np.abs(s22) ** 2 + np.abs(delta) ** 2
    return numerator / (2.0 * np.abs(s12 * s21))


def mu_source(s):
    """Edwards–Sinsky μ (geometric distance of the unstable region, port 1)."""
    s11, s12, s21, s22 = _split(s)
    delta = determinant(s)
    denominator = np.abs(s22 - delta * np.conjugate(s11)) + np.abs(s12 * s21)
    return (1.0 - np.abs(s11) ** 2) / denominator


def mu_load(s):
    """Edwards–Sinsky μ′ (port 2 counterpart of :func:`mu_source`)."""
    s11, s12, s21, s22 = _split(s)
    delta = determinant(s)
    denominator = np.abs(s11 - delta * np.conjugate(s22)) + np.abs(s12 * s21)
    return (1.0 - np.abs(s22) ** 2) / denominator


def is_unconditionally_stable(s) -> np.ndarray:
    """Boolean per-frequency test: μ > 1 (Edwards–Sinsky)."""
    return mu_source(s) > 1.0


@dataclass(frozen=True)
class StabilityCircle:
    """A circle in the reflection-coefficient plane.

    ``stable_outside`` records whether the stable region is the circle
    exterior (True) or interior (False), judged from the matched
    (Γ = 0) condition.
    """

    center: complex
    radius: float
    stable_outside: bool

    def contains(self, gamma) -> np.ndarray:
        """Whether points lie inside the circle."""
        return np.abs(np.asarray(gamma, dtype=complex) - self.center) < self.radius

    def is_stable(self, gamma) -> np.ndarray:
        """Whether terminations at *gamma* keep the port stable."""
        inside = self.contains(gamma)
        return ~inside if self.stable_outside else inside


def source_stability_circle(s2x2) -> StabilityCircle:
    """Source-plane (Γs) stability circle of a single 2x2 S matrix."""
    return _stability_circle(np.asarray(s2x2, dtype=complex), source=True)


def load_stability_circle(s2x2) -> StabilityCircle:
    """Load-plane (ΓL) stability circle of a single 2x2 S matrix."""
    return _stability_circle(np.asarray(s2x2, dtype=complex), source=False)


def _stability_circle(s, source: bool) -> StabilityCircle:
    if s.shape != (2, 2):
        raise ValueError(f"expected a single 2x2 S matrix, got {s.shape}")
    s11, s12, s21, s22 = s[0, 0], s[0, 1], s[1, 0], s[1, 1]
    delta = s11 * s22 - s12 * s21
    if source:
        own, other = s11, s22
    else:
        own, other = s22, s11
    denom = np.abs(own) ** 2 - np.abs(delta) ** 2
    if abs(denom) < 1e-30:
        raise ValueError("degenerate stability circle (|Sii| == |Δ|)")
    center = np.conjugate(own - delta * np.conjugate(other)) / denom
    radius = abs(s12 * s21 / denom)
    # The origin (matched termination) is stable iff |S_other_port| < 1;
    # decide which side of the circle is the stable one accordingly.
    origin_inside = abs(center) < radius
    origin_is_stable = abs(other) < 1.0
    stable_outside = origin_is_stable != origin_inside
    return StabilityCircle(complex(center), float(radius), bool(stable_outside))
