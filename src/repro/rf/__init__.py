"""RF network substrate: frequency grids, two-ports, noise, gain, stability.

The public surface of this package is everything an RF designer needs
to manipulate linear networks analytically; the circuit-level MNA
simulator lives in :mod:`repro.analysis` and produces objects from this
package.
"""

from repro.rf.frequency import Band, FrequencyGrid
from repro.rf.twoport import (
    TwoPort,
    attenuator,
    ideal_transformer,
    series_impedance,
    shunt_admittance,
    shunt_impedance,
    thru,
    transmission_line,
)
from repro.rf.nport import NPort
from repro.rf.noise import NoiseParameters, NoisyTwoPort, friis_cascade
from repro.rf.gain import (
    available_gain,
    input_reflection,
    maximum_available_gain,
    maximum_stable_gain,
    operating_gain,
    output_reflection,
    transducer_gain,
)
from repro.rf.stability import (
    is_unconditionally_stable,
    load_stability_circle,
    mu_load,
    mu_source,
    rollett_k,
    source_stability_circle,
)
from repro.rf.circles import available_gain_circle, noise_circle
from repro.rf.matching import (
    design_l_section,
    gamma_from_impedance,
    impedance_from_gamma,
    mismatch_loss_db,
    simultaneous_conjugate_match,
    vswr_from_gamma,
)
from repro.rf.deembedding import (
    open_short_deembed,
    split_thru,
    thru_deembed,
)
from repro.rf.touchstone import TouchstoneData, read_touchstone, write_touchstone

__all__ = [
    "Band",
    "FrequencyGrid",
    "TwoPort",
    "attenuator",
    "ideal_transformer",
    "series_impedance",
    "shunt_admittance",
    "shunt_impedance",
    "thru",
    "transmission_line",
    "NPort",
    "NoiseParameters",
    "NoisyTwoPort",
    "friis_cascade",
    "available_gain",
    "input_reflection",
    "maximum_available_gain",
    "maximum_stable_gain",
    "operating_gain",
    "output_reflection",
    "transducer_gain",
    "is_unconditionally_stable",
    "load_stability_circle",
    "mu_load",
    "mu_source",
    "rollett_k",
    "source_stability_circle",
    "available_gain_circle",
    "noise_circle",
    "design_l_section",
    "gamma_from_impedance",
    "impedance_from_gamma",
    "mismatch_loss_db",
    "simultaneous_conjugate_match",
    "vswr_from_gamma",
    "open_short_deembed",
    "split_thru",
    "thru_deembed",
    "TouchstoneData",
    "read_touchstone",
    "write_touchstone",
]
