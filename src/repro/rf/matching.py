"""Impedance-matching helpers: reflection algebra, L-sections, conjugate match.

These utilities seed the optimizer with sensible starting points (the
analytic L-section and simultaneous-conjugate-match solutions) before
the goal-attainment stage refines real, lossy, dispersive elements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.stability import determinant, rollett_k

__all__ = [
    "gamma_from_impedance",
    "impedance_from_gamma",
    "vswr_from_gamma",
    "mismatch_loss_db",
    "LSection",
    "design_l_section",
    "simultaneous_conjugate_match",
]


def gamma_from_impedance(z, z0=50.0):
    """Reflection coefficient of impedance *z* against reference *z0*."""
    z = np.asarray(z, dtype=complex)
    return (z - z0) / (z + z0)


def impedance_from_gamma(gamma, z0=50.0):
    """Impedance corresponding to reflection coefficient *gamma*."""
    gamma = np.asarray(gamma, dtype=complex)
    return z0 * (1.0 + gamma) / (1.0 - gamma)


def vswr_from_gamma(gamma):
    """Voltage standing-wave ratio from a reflection coefficient."""
    mag = np.abs(np.asarray(gamma, dtype=complex))
    mag = np.minimum(mag, 1.0 - 1e-15)
    return (1.0 + mag) / (1.0 - mag)


def mismatch_loss_db(gamma):
    """Power lost to reflection, in dB (always >= 0)."""
    mag2 = np.abs(np.asarray(gamma, dtype=complex)) ** 2
    return -10.0 * np.log10(np.maximum(1.0 - mag2, 1e-300))


@dataclass(frozen=True)
class LSection:
    """An ideal lossless L-section matching network at one frequency.

    ``series_x`` is the reactance of the series arm and ``shunt_b`` the
    susceptance of the shunt arm.  ``shunt_first`` tells whether the
    shunt element faces the load (True) or the source (False).
    """

    series_x: float
    shunt_b: float
    shunt_first: bool
    f_hz: float

    def element_values(self):
        """Realize the section with an inductor/capacitor pair.

        Returns a dict mapping ``'series'`` and ``'shunt'`` to
        ``('L', henries)`` or ``('C', farads)``.
        """
        omega = 2.0 * np.pi * self.f_hz
        if self.series_x >= 0:
            series = ("L", self.series_x / omega)
        else:
            series = ("C", -1.0 / (omega * self.series_x))
        if self.shunt_b >= 0:
            shunt = ("C", self.shunt_b / omega)
        else:
            shunt = ("L", -1.0 / (omega * self.shunt_b))
        return {"series": series, "shunt": shunt}


def design_l_section(z_load: complex, z_target: complex, f_hz: float) -> LSection:
    """Design the lossless L-section transforming *z_load* into *z_target*.

    The classic two-branch solution: when ``Re(z_load) > Re(z_target)``
    the shunt element faces the load, otherwise the series element does.
    Both impedances must have positive real parts.
    """
    zl = complex(z_load)
    zt = complex(z_target)
    if zl.real <= 0 or zt.real <= 0:
        raise ValueError("both impedances must have positive real part")
    rl, xl = zl.real, zl.imag
    rt, xt = zt.real, zt.imag
    if abs(rl - rt) < 1e-12:
        # Degenerate case: a pure series reactance completes the match.
        return LSection(series_x=xt - xl, shunt_b=0.0, shunt_first=False,
                        f_hz=float(f_hz))
    if rl > rt:
        # Shunt element across the load first, then series toward target.
        q = np.sqrt(rl / rt - 1.0 + xl**2 / (rl * rt))
        # Choose the root giving a positive-square-root branch; either
        # sign is a valid network, we take +q for determinism.
        b = (xl + q * rl) / (rl**2 + xl**2)
        g_after = rl / (rl**2 + xl**2)
        b_after = b - xl / (rl**2 + xl**2)
        z_after = 1.0 / complex(g_after, b_after)
        x = xt - z_after.imag
        return LSection(series_x=float(x), shunt_b=float(b),
                        shunt_first=True, f_hz=float(f_hz))
    # rl < rt: series element at the load first, then shunt toward target.
    q = np.sqrt(rt / rl - 1.0 + xt**2 / (rl * rt))
    x = q * rl - xl
    z_mid = complex(rl, xl + x)
    y_mid = 1.0 / z_mid
    y_target = 1.0 / zt
    b = y_target.imag - y_mid.imag
    return LSection(series_x=float(x), shunt_b=float(b),
                    shunt_first=False, f_hz=float(f_hz))


def simultaneous_conjugate_match(s2x2):
    """Source/load reflection coefficients for simultaneous conjugate match.

    Only valid for an unconditionally stable two-port (K > 1); raises
    ``ValueError`` otherwise.  Returns ``(gamma_source, gamma_load)``.
    """
    s = np.asarray(s2x2, dtype=complex)
    if s.shape != (2, 2):
        raise ValueError(f"expected a single 2x2 S matrix, got {s.shape}")
    k = float(rollett_k(s))
    if k <= 1.0:
        raise ValueError(
            f"device is not unconditionally stable (K = {k:.4f}); "
            "simultaneous conjugate match does not exist"
        )
    s11, s12, s21, s22 = s[0, 0], s[0, 1], s[1, 0], s[1, 1]
    delta = determinant(s)
    b1 = 1.0 + np.abs(s11) ** 2 - np.abs(s22) ** 2 - np.abs(delta) ** 2
    b2 = 1.0 + np.abs(s22) ** 2 - np.abs(s11) ** 2 - np.abs(delta) ** 2
    c1 = s11 - delta * np.conjugate(s22)
    c2 = s22 - delta * np.conjugate(s11)
    gamma_s = _match_root(b1, c1)
    gamma_l = _match_root(b2, c2)
    return complex(gamma_s), complex(gamma_l)


def _match_root(b, c):
    """Select the |Γ| < 1 root of the conjugate-match quadratic."""
    discriminant = b**2 - 4.0 * np.abs(c) ** 2
    root = np.sqrt(max(float(discriminant), 0.0))
    sign = 1.0 if b > 0 else -1.0
    return (b - sign * root) / (2.0 * c)
