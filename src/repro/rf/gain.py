"""Power gains of a two-port with arbitrary source/load terminations.

All gains are linear power ratios; convert to dB with
:func:`repro.util.units.db10`.  Reflection coefficients are referenced
to the network's own ``z0``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "input_reflection",
    "output_reflection",
    "transducer_gain",
    "available_gain",
    "operating_gain",
    "maximum_stable_gain",
    "maximum_available_gain",
    "unilateral_transducer_gain",
]


def _split(s):
    s = np.asarray(s, dtype=complex)
    return s[..., 0, 0], s[..., 0, 1], s[..., 1, 0], s[..., 1, 1]


def input_reflection(s, gamma_load):
    """Γin looking into port 1 with the given load on port 2."""
    s11, s12, s21, s22 = _split(s)
    gl = np.asarray(gamma_load, dtype=complex)
    return s11 + s12 * s21 * gl / (1.0 - s22 * gl)


def output_reflection(s, gamma_source):
    """Γout looking into port 2 with the given source on port 1."""
    s11, s12, s21, s22 = _split(s)
    gs = np.asarray(gamma_source, dtype=complex)
    return s22 + s12 * s21 * gs / (1.0 - s11 * gs)


def transducer_gain(s, gamma_source=0.0, gamma_load=0.0):
    """Transducer power gain GT = P_delivered_to_load / P_available_from_source."""
    s11, s12, s21, s22 = _split(s)
    gs = np.asarray(gamma_source, dtype=complex)
    gl = np.asarray(gamma_load, dtype=complex)
    gamma_in = input_reflection(s, gl)
    numerator = (1.0 - np.abs(gs) ** 2) * np.abs(s21) ** 2 * (
        1.0 - np.abs(gl) ** 2
    )
    denominator = (
        np.abs(1.0 - gs * gamma_in) ** 2 * np.abs(1.0 - s22 * gl) ** 2
    )
    return numerator / denominator


def available_gain(s, gamma_source=0.0):
    """Available power gain GA = P_available_at_output / P_available_from_source."""
    s11, s12, s21, s22 = _split(s)
    gs = np.asarray(gamma_source, dtype=complex)
    gamma_out = output_reflection(s, gs)
    numerator = (1.0 - np.abs(gs) ** 2) * np.abs(s21) ** 2
    denominator = (
        np.abs(1.0 - s11 * gs) ** 2 * (1.0 - np.abs(gamma_out) ** 2)
    )
    return numerator / denominator


def operating_gain(s, gamma_load=0.0):
    """Operating power gain GP = P_delivered_to_load / P_input_to_network."""
    s11, s12, s21, s22 = _split(s)
    gl = np.asarray(gamma_load, dtype=complex)
    gamma_in = input_reflection(s, gl)
    numerator = np.abs(s21) ** 2 * (1.0 - np.abs(gl) ** 2)
    denominator = (
        (1.0 - np.abs(gamma_in) ** 2) * np.abs(1.0 - s22 * gl) ** 2
    )
    return numerator / denominator


def maximum_stable_gain(s):
    """MSG = |S21| / |S12| — the gain limit of a potentially unstable device."""
    __, s12, s21, __ = _split(s)
    return np.abs(s21) / np.abs(s12)


def maximum_available_gain(s):
    """MAG for an unconditionally stable device (NaN where K < 1)."""
    from repro.rf.stability import rollett_k

    k = rollett_k(s)
    msg = maximum_stable_gain(s)
    with np.errstate(invalid="ignore"):
        mag = msg * (k - np.sqrt(np.square(k) - 1.0))
    return np.where(k >= 1.0, mag, np.nan)


def unilateral_transducer_gain(s, gamma_source=0.0, gamma_load=0.0):
    """GT under the unilateral (S12 = 0) approximation."""
    s11, __, s21, s22 = _split(s)
    gs = np.asarray(gamma_source, dtype=complex)
    gl = np.asarray(gamma_load, dtype=complex)
    g_source = (1.0 - np.abs(gs) ** 2) / np.abs(1.0 - s11 * gs) ** 2
    g_load = (1.0 - np.abs(gl) ** 2) / np.abs(1.0 - s22 * gl) ** 2
    return g_source * np.abs(s21) ** 2 * g_load
