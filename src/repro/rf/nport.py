"""General N-port network container with connection algebra.

The two-port class covers the amplifier chain, but antenna units also
contain splitters and multi-way feeds.  :class:`NPort` carries an
``(F, n, n)`` S-matrix and supports the two standard composition
operations (Filipsson's formulas):

* :meth:`terminate` — close one port with a reflection coefficient,
  producing an (n-1)-port;
* :meth:`connect` — join a port of one network to a port of another;
* :meth:`innerconnect` — join two ports of the same network.

The test suite validates every operation against independent MNA
solutions of the same physical circuits.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.rf.frequency import FrequencyGrid
from repro.rf.twoport import TwoPort
from repro.util.constants import Z0_REFERENCE

__all__ = ["NPort"]


class NPort:
    """An S-parameter N-port over a frequency grid (single real z0)."""

    def __init__(self, frequency: FrequencyGrid, s, z0: float = Z0_REFERENCE,
                 port_names: Optional[Sequence[str]] = None, name: str = ""):
        s = np.asarray(s, dtype=complex)
        if s.ndim != 3 or s.shape[0] != len(frequency) or (
            s.shape[1] != s.shape[2]
        ):
            raise ValueError(
                f"s must have shape ({len(frequency)}, n, n), got {s.shape}"
            )
        if z0 <= 0:
            raise ValueError(f"z0 must be positive, got {z0}")
        self.frequency = frequency
        self._s = s
        self.z0 = float(z0)
        self.name = name
        n = s.shape[1]
        if port_names is None:
            port_names = [f"p{k + 1}" for k in range(n)]
        if len(port_names) != n:
            raise ValueError(
                f"{len(port_names)} port names for {n} ports"
            )
        self.port_names = list(port_names)

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_twoport(cls, network: TwoPort, name: str = "") -> "NPort":
        return cls(network.frequency, network.s, z0=network.z0,
                   name=name or network.name)

    @classmethod
    def from_acresult(cls, result, name: str = "") -> "NPort":
        """Wrap an :class:`repro.analysis.acsolver.ACResult`."""
        return cls(result.frequency, result.s, z0=result.z0,
                   port_names=result.port_names, name=name)

    # -- views --------------------------------------------------------------
    @property
    def s(self) -> np.ndarray:
        return self._s

    @property
    def n_ports(self) -> int:
        return self._s.shape[1]

    def port_index(self, port) -> int:
        """Resolve a port given by index or name."""
        if isinstance(port, str):
            try:
                return self.port_names.index(port)
            except ValueError:
                raise KeyError(
                    f"unknown port {port!r} (have {self.port_names})"
                ) from None
        index = int(port)
        if not 0 <= index < self.n_ports:
            raise IndexError(
                f"port index {index} out of range for {self.n_ports} ports"
            )
        return index

    def s_element(self, i: int, j: int) -> np.ndarray:
        """S(i, j) trace with 1-indexed ports."""
        return self._s[:, i - 1, j - 1]

    def as_twoport(self, name: str = "") -> TwoPort:
        if self.n_ports != 2:
            raise ValueError(f"network has {self.n_ports} ports, need 2")
        return TwoPort(self.frequency, self._s, z0=self.z0,
                       name=name or self.name)

    def is_reciprocal(self, tol: float = 1e-9) -> bool:
        return bool(np.all(np.abs(
            self._s - np.swapaxes(self._s, 1, 2)
        ) <= tol))

    def is_passive(self, tol: float = 1e-9) -> bool:
        gram = np.conjugate(np.swapaxes(self._s, 1, 2)) @ self._s
        return bool(np.all(np.linalg.eigvalsh(gram) <= 1.0 + tol))

    # -- composition -----------------------------------------------------
    def terminate(self, port, gamma) -> "NPort":
        """Close *port* with reflection coefficient *gamma*.

        *gamma* may be scalar or per-frequency.  Returns the reduced
        network; terminating a two-port yields a one-port whose single
        S11 is the driving-point reflection.
        """
        k = self.port_index(port)
        gamma = np.broadcast_to(
            np.asarray(gamma, dtype=complex), (len(self.frequency),)
        )
        s = self._s
        denominator = 1.0 - gamma * s[:, k, k]
        if np.any(np.abs(denominator) < 1e-15):
            raise ValueError(
                f"termination resonates with port {port!r} "
                "(1 - Gamma*Skk == 0)"
            )
        keep = [i for i in range(self.n_ports) if i != k]
        factor = gamma / denominator
        s_reduced = (
            s[np.ix_(range(len(self.frequency)), keep, keep)]
            + factor[:, None, None]
            * s[:, keep, k][:, :, None] * s[:, k, keep][:, None, :]
        )
        return NPort(
            self.frequency, s_reduced, z0=self.z0,
            port_names=[self.port_names[i] for i in keep],
            name=self.name,
        )

    def connect(self, own_port, other: "NPort", other_port) -> "NPort":
        """Join *own_port* to *other_port* of another network.

        The result's ports are this network's remaining ports followed
        by the other network's remaining ports (original names kept,
        prefixed on collision).
        """
        if not isinstance(other, NPort):
            raise TypeError(f"expected NPort, got {type(other).__name__}")
        if self.frequency != other.frequency:
            raise ValueError("networks sampled on different grids")
        if abs(self.z0 - other.z0) > 1e-9:
            raise ValueError(
                f"reference impedances differ: {self.z0} vs {other.z0}"
            )
        k = self.port_index(own_port)
        j = other.port_index(other_port)
        n_a = self.n_ports
        n_total = n_a + other.n_ports
        s_block = np.zeros((len(self.frequency), n_total, n_total),
                           dtype=complex)
        s_block[:, :n_a, :n_a] = self._s
        s_block[:, n_a:, n_a:] = other.s
        names_a = list(self.port_names)
        names_b = list(other.port_names)
        for idx, candidate in enumerate(names_b):
            if candidate in names_a:
                names_b[idx] = f"{other.name or 'b'}.{candidate}"
        combined = NPort(self.frequency, s_block, z0=self.z0,
                         port_names=names_a + names_b,
                         name=_join(self.name, other.name))
        return combined.innerconnect(k, n_a + j)

    def innerconnect(self, port_a, port_b) -> "NPort":
        """Join two ports of this network (Filipsson's reduction)."""
        k = self.port_index(port_a)
        l = self.port_index(port_b)
        if k == l:
            raise ValueError("cannot connect a port to itself")
        s = self._s
        skk = s[:, k, k]
        sll = s[:, l, l]
        skl = s[:, k, l]
        slk = s[:, l, k]
        denominator = (1.0 - skl) * (1.0 - slk) - skk * sll
        if np.any(np.abs(denominator) < 1e-13):
            raise ValueError(
                "inner connection is resonant (singular reduction); "
                "insert a small line or resistance between the ports"
            )
        keep = [i for i in range(self.n_ports) if i not in (k, l)]
        f_idx = np.arange(len(self.frequency))
        s_ik = s[:, keep, k]
        s_il = s[:, keep, l]
        s_kj = s[:, k, keep]
        s_lj = s[:, l, keep]
        numerator = (
            s_kj[:, None, :] * ((1.0 - slk)[:, None, None] * s_il[:, :, None])
            + s_lj[:, None, :] * ((1.0 - skl)[:, None, None] * s_ik[:, :, None])
            + s_kj[:, None, :] * (sll[:, None, None] * s_ik[:, :, None])
            + s_lj[:, None, :] * (skk[:, None, None] * s_il[:, :, None])
        )
        s_reduced = (
            s[np.ix_(f_idx, keep, keep)]
            + numerator / denominator[:, None, None]
        )
        return NPort(
            self.frequency, s_reduced, z0=self.z0,
            port_names=[self.port_names[i] for i in keep],
            name=self.name,
        )

    def __repr__(self):
        f = self.frequency.f_hz
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<NPort{label} {self.n_ports} ports, {len(f)} pts "
            f"{f[0] / 1e9:.4g}-{f[-1] / 1e9:.4g} GHz>"
        )


def _join(a: str, b: str) -> str:
    if a and b:
        return f"{a}+{b}"
    return a or b
