"""Constant-noise-figure and constant-available-gain circles.

These are the classic Smith-chart design aids: for a chosen NF (or GA)
target they give the locus of source reflection coefficients achieving
it.  The multi-objective optimizer does not use them directly — it
works on the full circuit — but they are invaluable for sanity-checking
optimized operating points and are exercised by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.stability import determinant, rollett_k

__all__ = [
    "SmithCircle",
    "noise_circle",
    "available_gain_circle",
]


@dataclass(frozen=True)
class SmithCircle:
    """A circle of constant performance in the Γ plane."""

    center: complex
    radius: float
    level: float

    def points(self, n: int = 181) -> np.ndarray:
        """Sample *n* complex points along the circle."""
        theta = np.linspace(0.0, 2.0 * np.pi, int(n))
        return self.center + self.radius * np.exp(1j * theta)

    def contains(self, gamma) -> np.ndarray:
        """Whether points lie inside the circle."""
        return np.abs(np.asarray(gamma, dtype=complex) - self.center) < self.radius


def noise_circle(fmin: float, rn: float, gamma_opt: complex,
                 nf_target_db: float, z0: float = 50.0) -> SmithCircle:
    """Constant-NF circle in the source plane at one frequency.

    Parameters
    ----------
    fmin:
        Minimum noise factor (linear).
    rn:
        Noise resistance [ohm].
    gamma_opt:
        Optimum source reflection coefficient.
    nf_target_db:
        Requested noise figure [dB]; must be >= NFmin.

    Degenerate inputs stay finite: a target at NFmin (within rounding)
    collapses to the point circle at ``gamma_opt`` whatever ``rn``, and
    a vanishing noise resistance is clamped so the circle fills the
    chart instead of dividing by zero.
    """
    f_target = 10.0 ** (nf_target_db / 10.0)
    nfmin_db = 10.0 * np.log10(fmin)
    # Compare in dB — the caller's unit — so the tolerance means the
    # same thing at every NFmin and the error message is consistent.
    if nf_target_db < nfmin_db - 1e-9:
        raise ValueError(
            f"target NF {nf_target_db:.3f} dB is below NFmin "
            f"{nfmin_db:.3f} dB"
        )
    excess = f_target - fmin
    if excess <= 0.0:
        # Target at NFmin: only Γopt achieves it — a point circle, even
        # when rn == 0 would make the general formula 0/0.
        return SmithCircle(complex(gamma_opt), 0.0, float(nf_target_db))
    # rn -> 0 means NF barely depends on the source match; the circle
    # limit is the whole chart.  Clamp the denominator so it stays a
    # finite (huge) circle rather than inf/nan.
    rn_normalized = max(rn / z0, 1e-30)
    n_param = excess * np.abs(1.0 + gamma_opt) ** 2 / (4.0 * rn_normalized)
    center = gamma_opt / (1.0 + n_param)
    radius = np.sqrt(
        max(n_param * (n_param + 1.0 - np.abs(gamma_opt) ** 2), 0.0)
    ) / (1.0 + n_param)
    return SmithCircle(complex(center), float(radius), float(nf_target_db))


def available_gain_circle(s2x2, ga_target_db: float) -> SmithCircle:
    """Constant available-gain circle in the source plane at one frequency."""
    s = np.asarray(s2x2, dtype=complex)
    if s.shape != (2, 2):
        raise ValueError(f"expected a single 2x2 S matrix, got {s.shape}")
    s11, s12, s21, s22 = s[0, 0], s[0, 1], s[1, 0], s[1, 1]
    delta = determinant(s)
    k = float(rollett_k(s))
    ga = 10.0 ** (ga_target_db / 10.0)
    ga_normalized = ga / np.abs(s21) ** 2
    c1 = s11 - delta * np.conjugate(s22)
    denom = 1.0 + ga_normalized * (np.abs(s11) ** 2 - np.abs(delta) ** 2)
    center = ga_normalized * np.conjugate(c1) / denom
    radicand = (
        1.0
        - 2.0 * k * np.abs(s12 * s21) * ga_normalized
        + np.abs(s12 * s21) ** 2 * ga_normalized**2
    )
    radius = np.sqrt(max(float(radicand), 0.0)) / abs(denom)
    return SmithCircle(complex(center), float(radius), float(ga_target_db))
