"""The :class:`TwoPort` network container and elementary network factories.

A :class:`TwoPort` couples a :class:`~repro.rf.frequency.FrequencyGrid`
with per-frequency S-parameters (shape ``(F, 2, 2)``) referenced to a
single real impedance.  All other representations (Z, Y, ABCD, T) are
derived on demand.

Cascading uses the ``**`` operator, mirroring the left-to-right signal
flow: ``input_match ** transistor ** output_match``.
"""

from __future__ import annotations

import numpy as np

from repro.rf import conversions as cv
from repro.rf.frequency import FrequencyGrid
from repro.util.constants import Z0_REFERENCE

__all__ = [
    "TwoPort",
    "series_impedance",
    "shunt_admittance",
    "shunt_impedance",
    "transmission_line",
    "ideal_transformer",
    "attenuator",
    "thru",
]


class TwoPort:
    """An S-parameter two-port over a frequency grid.

    Parameters
    ----------
    frequency:
        The grid the matrices are sampled on.
    s:
        Complex array of shape ``(len(frequency), 2, 2)``.
    z0:
        Real reference impedance in ohms (default 50).
    name:
        Optional label used in ``repr`` and reports.
    """

    def __init__(self, frequency: FrequencyGrid, s, z0: float = Z0_REFERENCE,
                 name: str = ""):
        s = np.asarray(s, dtype=complex)
        if s.shape != (len(frequency), 2, 2):
            raise ValueError(
                f"s must have shape ({len(frequency)}, 2, 2), got {s.shape}"
            )
        if z0 <= 0:
            raise ValueError(f"z0 must be positive, got {z0}")
        self.frequency = frequency
        self._s = s
        self.z0 = float(z0)
        self.name = name

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_s(cls, frequency, s, z0=Z0_REFERENCE, name=""):
        """Build from S-parameters (identity constructor, for symmetry)."""
        return cls(frequency, s, z0=z0, name=name)

    @classmethod
    def from_z(cls, frequency, z, z0=Z0_REFERENCE, name=""):
        """Build from impedance parameters."""
        return cls(frequency, cv.z_to_s(z, z0), z0=z0, name=name)

    @classmethod
    def from_y(cls, frequency, y, z0=Z0_REFERENCE, name=""):
        """Build from admittance parameters."""
        return cls(frequency, cv.y_to_s(y, z0), z0=z0, name=name)

    @classmethod
    def from_abcd(cls, frequency, abcd, z0=Z0_REFERENCE, name=""):
        """Build from chain (ABCD) parameters."""
        return cls(frequency, cv.abcd_to_s(abcd, z0), z0=z0, name=name)

    # ------------------------------------------------------------------
    # representations
    # ------------------------------------------------------------------
    @property
    def s(self) -> np.ndarray:
        """S-parameters, shape (F, 2, 2)."""
        return self._s

    @property
    def z(self) -> np.ndarray:
        """Impedance parameters, shape (F, 2, 2)."""
        return cv.s_to_z(self._s, self.z0)

    @property
    def y(self) -> np.ndarray:
        """Admittance parameters, shape (F, 2, 2)."""
        return cv.s_to_y(self._s, self.z0)

    @property
    def abcd(self) -> np.ndarray:
        """Chain parameters, shape (F, 2, 2)."""
        return cv.s_to_abcd(self._s, self.z0)

    @property
    def t(self) -> np.ndarray:
        """Transfer-scattering parameters, shape (F, 2, 2)."""
        return cv.s_to_t(self._s)

    def s_element(self, i: int, j: int) -> np.ndarray:
        """One S-parameter trace, e.g. ``s_element(2, 1)`` for S21."""
        return self._s[:, i - 1, j - 1]

    @property
    def s11(self):
        return self._s[:, 0, 0]

    @property
    def s12(self):
        return self._s[:, 0, 1]

    @property
    def s21(self):
        return self._s[:, 1, 0]

    @property
    def s22(self):
        return self._s[:, 1, 1]

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def cascade(self, other: "TwoPort") -> "TwoPort":
        """Cascade self followed by *other* (signal flows self -> other)."""
        self._check_compatible(other)
        t_total = self.t @ other.t
        return TwoPort(self.frequency, cv.t_to_s(t_total), z0=self.z0,
                       name=_join_names(self.name, other.name, "**"))

    def __pow__(self, other: "TwoPort") -> "TwoPort":
        return self.cascade(other)

    def parallel(self, other: "TwoPort") -> "TwoPort":
        """Parallel-parallel connection (admittances add)."""
        self._check_compatible(other)
        return TwoPort.from_y(self.frequency, self.y + other.y, z0=self.z0,
                              name=_join_names(self.name, other.name, "||"))

    def series(self, other: "TwoPort") -> "TwoPort":
        """Series-series connection (impedances add)."""
        self._check_compatible(other)
        return TwoPort.from_z(self.frequency, self.z + other.z, z0=self.z0,
                              name=_join_names(self.name, other.name, "++"))

    def flipped(self) -> "TwoPort":
        """The network seen with ports 1 and 2 exchanged."""
        s = self._s
        flipped = np.empty_like(s)
        flipped[:, 0, 0] = s[:, 1, 1]
        flipped[:, 0, 1] = s[:, 1, 0]
        flipped[:, 1, 0] = s[:, 0, 1]
        flipped[:, 1, 1] = s[:, 0, 0]
        return TwoPort(self.frequency, flipped, z0=self.z0,
                       name=f"flip({self.name})" if self.name else "")

    def renormalized(self, z0_new: float) -> "TwoPort":
        """The same physical network referenced to a new real impedance."""
        s_new = cv.renormalize_s(self._s, self.z0, z0_new)
        return TwoPort(self.frequency, s_new, z0=z0_new, name=self.name)

    def at(self, f_hz) -> np.ndarray:
        """The 2x2 S matrix at the grid point closest to *f_hz*."""
        return self._s[self.frequency.index_of(f_hz)]

    # ------------------------------------------------------------------
    # physical checks
    # ------------------------------------------------------------------
    def is_reciprocal(self, tol: float = 1e-9) -> bool:
        """True when S12 == S21 within *tol* at every frequency."""
        return bool(np.all(np.abs(self.s12 - self.s21) <= tol))

    def is_passive(self, tol: float = 1e-9) -> bool:
        """True when no eigenvalue of S^H S exceeds 1 (no power gain)."""
        gram = np.conjugate(np.swapaxes(self._s, -1, -2)) @ self._s
        eigvals = np.linalg.eigvalsh(gram)
        return bool(np.all(eigvals <= 1.0 + tol))

    def _check_compatible(self, other: "TwoPort"):
        if not isinstance(other, TwoPort):
            raise TypeError(f"expected TwoPort, got {type(other).__name__}")
        if self.frequency != other.frequency:
            raise ValueError("two-ports are sampled on different grids")
        if abs(self.z0 - other.z0) > 1e-9:
            raise ValueError(
                f"reference impedances differ: {self.z0} vs {other.z0}"
            )

    def __repr__(self):
        label = f" {self.name!r}" if self.name else ""
        f = self.frequency.f_hz
        return (
            f"<TwoPort{label} {len(f)} pts "
            f"{f[0] / 1e9:.4g}-{f[-1] / 1e9:.4g} GHz z0={self.z0:g}>"
        )


def _join_names(a: str, b: str, op: str) -> str:
    if a and b:
        return f"({a} {op} {b})"
    return a or b


# ----------------------------------------------------------------------
# elementary networks
# ----------------------------------------------------------------------

def series_impedance(frequency: FrequencyGrid, z, z0=Z0_REFERENCE,
                     name="series") -> TwoPort:
    """A two-port consisting of impedance *z* in the series arm.

    *z* may be a scalar or an array over the grid.
    """
    z = np.broadcast_to(np.asarray(z, dtype=complex), (len(frequency),))
    abcd = np.zeros((len(frequency), 2, 2), dtype=complex)
    abcd[:, 0, 0] = 1.0
    abcd[:, 0, 1] = z
    abcd[:, 1, 1] = 1.0
    return TwoPort.from_abcd(frequency, abcd, z0=z0, name=name)


def shunt_admittance(frequency: FrequencyGrid, y, z0=Z0_REFERENCE,
                     name="shunt") -> TwoPort:
    """A two-port consisting of admittance *y* from the line to ground."""
    y = np.broadcast_to(np.asarray(y, dtype=complex), (len(frequency),))
    abcd = np.zeros((len(frequency), 2, 2), dtype=complex)
    abcd[:, 0, 0] = 1.0
    abcd[:, 1, 0] = y
    abcd[:, 1, 1] = 1.0
    return TwoPort.from_abcd(frequency, abcd, z0=z0, name=name)


def shunt_impedance(frequency: FrequencyGrid, z, z0=Z0_REFERENCE,
                    name="shunt") -> TwoPort:
    """A shunt element specified by its impedance (must be nonzero)."""
    z = np.asarray(z, dtype=complex)
    return shunt_admittance(frequency, 1.0 / z, z0=z0, name=name)


def transmission_line(frequency: FrequencyGrid, z_char, gamma_l,
                      z0=Z0_REFERENCE, name="line") -> TwoPort:
    """A transmission-line two-port from characteristic impedance and γl.

    Parameters
    ----------
    z_char:
        Characteristic impedance [ohm], scalar or per-frequency array.
    gamma_l:
        Complex propagation constant times physical length, ``(α + jβ) l``,
        scalar or per-frequency array (dimensionless).
    """
    n = len(frequency)
    zc = np.broadcast_to(np.asarray(z_char, dtype=complex), (n,))
    gl = np.broadcast_to(np.asarray(gamma_l, dtype=complex), (n,))
    cosh_gl = np.cosh(gl)
    sinh_gl = np.sinh(gl)
    abcd = np.empty((n, 2, 2), dtype=complex)
    abcd[:, 0, 0] = cosh_gl
    abcd[:, 0, 1] = zc * sinh_gl
    abcd[:, 1, 0] = sinh_gl / zc
    abcd[:, 1, 1] = cosh_gl
    return TwoPort.from_abcd(frequency, abcd, z0=z0, name=name)


def ideal_transformer(frequency: FrequencyGrid, turns_ratio: float,
                      z0=Z0_REFERENCE, name="xfmr") -> TwoPort:
    """An ideal transformer with voltage ratio n:1 (port1:port2)."""
    n_pts = len(frequency)
    ratio = float(turns_ratio)
    if ratio == 0:
        raise ValueError("turns ratio must be nonzero")
    abcd = np.zeros((n_pts, 2, 2), dtype=complex)
    abcd[:, 0, 0] = ratio
    abcd[:, 1, 1] = 1.0 / ratio
    return TwoPort.from_abcd(frequency, abcd, z0=z0, name=name)


def attenuator(frequency: FrequencyGrid, loss_db: float, z0=Z0_REFERENCE,
               name="") -> TwoPort:
    """A matched resistive T-pad attenuator with the given loss in dB."""
    if loss_db < 0:
        raise ValueError(f"loss must be non-negative dB, got {loss_db}")
    if loss_db == 0:
        return thru(frequency, z0=z0, name=name or "thru")
    k = 10.0 ** (loss_db / 20.0)
    r_series = z0 * (k - 1.0) / (k + 1.0)
    r_shunt = 2.0 * z0 * k / (k * k - 1.0)
    half = series_impedance(frequency, r_series, z0=z0)
    middle = shunt_admittance(frequency, 1.0 / r_shunt, z0=z0)
    pad = half ** middle ** half
    pad.name = name or f"att{loss_db:g}dB"
    return pad


def thru(frequency: FrequencyGrid, z0=Z0_REFERENCE, name="thru") -> TwoPort:
    """A zero-length perfect through connection."""
    s = np.zeros((len(frequency), 2, 2), dtype=complex)
    s[:, 0, 1] = 1.0
    s[:, 1, 0] = 1.0
    return TwoPort(frequency, s, z0=z0, name=name)
