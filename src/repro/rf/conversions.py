"""Conversions between two-port (and N-port) matrix representations.

All functions are vectorized over leading axes: inputs of shape
``(..., n, n)`` produce outputs of the same shape.  Two-port specific
conversions (ABCD, T) require ``n == 2``.

Conventions
-----------
* S-parameters use a real, positive reference impedance ``z0`` (equal at
  all ports).
* The transfer-scattering matrix ``T`` follows the convention
  ``[a1, b1]^T = T [b2, a2]^T`` so that a cascade of networks multiplies
  as ``T_total = T_first @ T_second``.
* ABCD (chain) parameters follow ``[V1, I1]^T = ABCD [V2, -I2]^T`` with
  port currents flowing *into* the network.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "s_to_z",
    "z_to_s",
    "s_to_y",
    "y_to_s",
    "z_to_y",
    "y_to_z",
    "s_to_abcd",
    "abcd_to_s",
    "y_to_abcd",
    "abcd_to_y",
    "z_to_abcd",
    "abcd_to_z",
    "s_to_t",
    "t_to_s",
    "renormalize_s",
]

_EYE_CACHE: dict = {}


def _eye_like(matrix: np.ndarray) -> np.ndarray:
    """Identity matrix broadcastable against *matrix* (shape (..., n, n))."""
    n = matrix.shape[-1]
    if n not in _EYE_CACHE:
        _EYE_CACHE[n] = np.eye(n, dtype=complex)
    return _EYE_CACHE[n]


def _as_square(matrix) -> np.ndarray:
    arr = np.asarray(matrix, dtype=complex)
    if arr.ndim < 2 or arr.shape[-1] != arr.shape[-2]:
        raise ValueError(f"expected (..., n, n) matrix, got shape {arr.shape}")
    return arr


def _as_two_port(matrix) -> np.ndarray:
    arr = _as_square(matrix)
    if arr.shape[-1] != 2:
        raise ValueError(f"two-port conversion requires 2x2, got {arr.shape}")
    return arr


def s_to_z(s, z0=50.0):
    """Scattering to impedance matrix, real equal reference impedance."""
    s = _as_square(s)
    eye = _eye_like(s)
    return float(z0) * np.linalg.solve(eye - s, eye + s)


def z_to_s(z, z0=50.0):
    """Impedance to scattering matrix, real equal reference impedance."""
    z = _as_square(z)
    eye = _eye_like(z)
    zn = z / float(z0)
    return np.linalg.solve(zn + eye, zn - eye)


def s_to_y(s, z0=50.0):
    """Scattering to admittance matrix, real equal reference impedance."""
    s = _as_square(s)
    eye = _eye_like(s)
    return np.linalg.solve(eye + s, eye - s) / float(z0)


def y_to_s(y, z0=50.0):
    """Admittance to scattering matrix, real equal reference impedance."""
    y = _as_square(y)
    eye = _eye_like(y)
    yn = y * float(z0)
    return np.linalg.solve(eye + yn, eye - yn)


def z_to_y(z):
    """Impedance to admittance matrix (inverse)."""
    return np.linalg.inv(_as_square(z))


def y_to_z(y):
    """Admittance to impedance matrix (inverse)."""
    return np.linalg.inv(_as_square(y))


def s_to_abcd(s, z0=50.0):
    """Two-port S to ABCD (chain) parameters."""
    s = _as_two_port(s)
    z0 = float(z0)
    s11, s12 = s[..., 0, 0], s[..., 0, 1]
    s21, s22 = s[..., 1, 0], s[..., 1, 1]
    denom = 2.0 * s21
    a = ((1 + s11) * (1 - s22) + s12 * s21) / denom
    b = z0 * ((1 + s11) * (1 + s22) - s12 * s21) / denom
    c = ((1 - s11) * (1 - s22) - s12 * s21) / (z0 * denom)
    d = ((1 - s11) * (1 + s22) + s12 * s21) / denom
    return _stack2(a, b, c, d)


def abcd_to_s(abcd, z0=50.0):
    """Two-port ABCD (chain) parameters to S."""
    abcd = _as_two_port(abcd)
    z0 = float(z0)
    a, b = abcd[..., 0, 0], abcd[..., 0, 1]
    c, d = abcd[..., 1, 0], abcd[..., 1, 1]
    denom = a + b / z0 + c * z0 + d
    s11 = (a + b / z0 - c * z0 - d) / denom
    s12 = 2.0 * (a * d - b * c) / denom
    s21 = 2.0 / denom
    s22 = (-a + b / z0 - c * z0 + d) / denom
    return _stack2(s11, s12, s21, s22)


def y_to_abcd(y):
    """Two-port Y to ABCD parameters."""
    y = _as_two_port(y)
    y11, y12 = y[..., 0, 0], y[..., 0, 1]
    y21, y22 = y[..., 1, 0], y[..., 1, 1]
    det = y11 * y22 - y12 * y21
    return _stack2(-y22 / y21, -1.0 / y21, -det / y21, -y11 / y21)


def abcd_to_y(abcd):
    """Two-port ABCD to Y parameters."""
    abcd = _as_two_port(abcd)
    a, b = abcd[..., 0, 0], abcd[..., 0, 1]
    c, d = abcd[..., 1, 0], abcd[..., 1, 1]
    det = a * d - b * c
    return _stack2(d / b, -det / b, -1.0 / b, a / b)


def z_to_abcd(z):
    """Two-port Z to ABCD parameters."""
    z = _as_two_port(z)
    z11, z12 = z[..., 0, 0], z[..., 0, 1]
    z21, z22 = z[..., 1, 0], z[..., 1, 1]
    det = z11 * z22 - z12 * z21
    return _stack2(z11 / z21, det / z21, 1.0 / z21, z22 / z21)


def abcd_to_z(abcd):
    """Two-port ABCD to Z parameters."""
    abcd = _as_two_port(abcd)
    a, b = abcd[..., 0, 0], abcd[..., 0, 1]
    c, d = abcd[..., 1, 0], abcd[..., 1, 1]
    det = a * d - b * c
    return _stack2(a / c, det / c, 1.0 / c, d / c)


def s_to_t(s):
    """Two-port S to transfer-scattering T (cascade multiplies left-to-right)."""
    s = _as_two_port(s)
    s11, s12 = s[..., 0, 0], s[..., 0, 1]
    s21, s22 = s[..., 1, 0], s[..., 1, 1]
    det = s11 * s22 - s12 * s21
    return _stack2(1.0 / s21, -s22 / s21, s11 / s21, -det / s21)


def t_to_s(t):
    """Two-port transfer-scattering T back to S."""
    t = _as_two_port(t)
    t11, t12 = t[..., 0, 0], t[..., 0, 1]
    t21, t22 = t[..., 1, 0], t[..., 1, 1]
    det = t11 * t22 - t12 * t21
    return _stack2(t21 / t11, det / t11, 1.0 / t11, -t12 / t11)


def renormalize_s(s, z0_old, z0_new):
    """Renormalize S-parameters from one real reference impedance to another.

    Uses the direct bilinear form ``S' = (S - rho I)(I - rho S)^{-1}``
    with ``rho = (z0_new - z0_old)/(z0_new + z0_old)``, which stays
    valid for networks whose Z or Y representation is singular (pure
    series or shunt elements).
    """
    s = _as_square(s)
    rho = (float(z0_new) - float(z0_old)) / (float(z0_new) + float(z0_old))
    eye = _eye_like(s)
    # Right-division form: solve (I - rho S)^T X^T = (S - rho I)^T.
    numerator = s - rho * eye
    denominator = eye - rho * s
    return np.linalg.solve(
        np.swapaxes(denominator, -1, -2), np.swapaxes(numerator, -1, -2)
    ).swapaxes(-1, -2)


def _stack2(m11, m12, m21, m22) -> np.ndarray:
    """Assemble four (...,) arrays into a (..., 2, 2) matrix."""
    m11, m12, m21, m22 = np.broadcast_arrays(m11, m12, m21, m22)
    out = np.empty(m11.shape + (2, 2), dtype=complex)
    out[..., 0, 0] = m11
    out[..., 0, 1] = m12
    out[..., 1, 0] = m21
    out[..., 1, 1] = m22
    return out
