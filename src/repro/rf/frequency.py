"""Frequency grids and band descriptions.

Every network object in :mod:`repro.rf` carries a :class:`FrequencyGrid`
so that matrix data and the frequencies it was evaluated at cannot drift
apart.  Grids are immutable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import ensure_1d

__all__ = ["FrequencyGrid", "Band"]


@dataclass(frozen=True)
class Band:
    """A contiguous frequency band [f_low, f_high] in Hz with a label."""

    label: str
    f_low: float
    f_high: float

    def __post_init__(self):
        if self.f_low <= 0 or self.f_high <= self.f_low:
            raise ValueError(
                f"band {self.label!r} needs 0 < f_low < f_high, "
                f"got [{self.f_low}, {self.f_high}]"
            )

    @property
    def center(self) -> float:
        """Arithmetic band centre in Hz."""
        return 0.5 * (self.f_low + self.f_high)

    @property
    def width(self) -> float:
        """Bandwidth in Hz."""
        return self.f_high - self.f_low

    def contains(self, f_hz) -> np.ndarray:
        """Elementwise test whether frequencies fall inside the band."""
        f = np.asarray(f_hz, dtype=float)
        return (f >= self.f_low) & (f <= self.f_high)

    def grid(self, n_points: int = 101) -> "FrequencyGrid":
        """Return a linear :class:`FrequencyGrid` spanning the band."""
        return FrequencyGrid.linear(self.f_low, self.f_high, n_points)


@dataclass(frozen=True)
class FrequencyGrid:
    """An immutable, strictly increasing grid of frequencies in Hz."""

    f_hz: np.ndarray = field()

    def __post_init__(self):
        f = ensure_1d(self.f_hz, "f_hz")
        if np.any(f <= 0):
            raise ValueError("frequencies must be positive")
        if np.any(np.diff(f) <= 0):
            raise ValueError("frequencies must be strictly increasing")
        f = np.ascontiguousarray(f)
        f.setflags(write=False)
        object.__setattr__(self, "f_hz", f)

    @classmethod
    def linear(cls, f_start, f_stop, n_points) -> "FrequencyGrid":
        """Linearly spaced grid of *n_points* from f_start to f_stop [Hz]."""
        return cls(np.linspace(float(f_start), float(f_stop), int(n_points)))

    @classmethod
    def logarithmic(cls, f_start, f_stop, n_points) -> "FrequencyGrid":
        """Logarithmically spaced grid from f_start to f_stop [Hz]."""
        return cls(
            np.logspace(
                np.log10(float(f_start)), np.log10(float(f_stop)), int(n_points)
            )
        )

    @classmethod
    def single(cls, f_hz) -> "FrequencyGrid":
        """A one-point grid, convenient for spot analyses."""
        return cls(np.array([float(f_hz)]))

    @property
    def omega(self) -> np.ndarray:
        """Angular frequencies [rad/s]."""
        return 2.0 * np.pi * self.f_hz

    @property
    def f_ghz(self) -> np.ndarray:
        """Frequencies in GHz (for display)."""
        return self.f_hz / 1e9

    def __len__(self) -> int:
        return self.f_hz.size

    def __iter__(self):
        return iter(self.f_hz)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FrequencyGrid):
            return NotImplemented
        return self.f_hz.shape == other.f_hz.shape and bool(
            np.allclose(self.f_hz, other.f_hz, rtol=1e-12, atol=0.0)
        )

    def __hash__(self):
        return hash((self.f_hz.size, float(self.f_hz[0]), float(self.f_hz[-1])))

    def index_of(self, f_hz) -> int:
        """Index of the grid point closest to *f_hz*."""
        return int(np.argmin(np.abs(self.f_hz - float(f_hz))))

    def mask(self, band: Band) -> np.ndarray:
        """Boolean mask of grid points inside *band*."""
        return band.contains(self.f_hz)

    def restricted(self, band: Band) -> "FrequencyGrid":
        """A new grid containing only the points inside *band*."""
        selected = self.f_hz[self.mask(band)]
        if selected.size == 0:
            raise ValueError(f"no grid points inside band {band.label!r}")
        return FrequencyGrid(selected)
