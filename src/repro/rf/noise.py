"""Noise two-port theory: noise parameters and correlation matrices.

The toolkit represents the noise of a linear two-port in two equivalent
ways:

* the four **noise parameters** ``(Fmin, Rn, Yopt)`` (``Yopt`` complex),
  which directly give the noise factor for any source admittance; and
* the 2x2 **chain noise-correlation matrix** ``CA`` of the equivalent
  input voltage/current noise pair, which composes under cascading.

Conversions between the two and between correlation-matrix
representations (chain ``CA``, admittance ``CY``, impedance ``CZ``)
follow Hillbrand & Russer (1976).  Correlation matrices are one-sided
spectral densities, e.g. a resistor ``R`` at temperature ``T`` has the
series voltage-noise density ``4 k T R`` and the formulas below use the
consistent ``2 k T`` normalization of Hillbrand-Russer (the factor of
two cancels in every ratio that produces a noise figure).

Validation anchors (exercised in the test suite):

* a series resistor ``R`` at ``T0`` has ``F = 1 + R / Rs``;
* a matched resistive attenuator at ``T0`` has ``NF = loss``;
* cascade noise figure agrees with the Friis formula.
"""

from __future__ import annotations

import numpy as np

from repro.rf import conversions as cv
from repro.rf.frequency import FrequencyGrid
from repro.rf.twoport import TwoPort
from repro.util.constants import BOLTZMANN, T0_KELVIN

__all__ = [
    "NoiseParameters",
    "NoisyTwoPort",
    "ca_from_noise_parameters",
    "noise_parameters_from_ca",
    "cy_from_ca",
    "ca_from_cy",
    "cz_from_ca",
    "ca_from_cz",
    "passive_cy",
    "cascade_ca",
    "friis_cascade",
]

_2KT0 = 2.0 * BOLTZMANN * T0_KELVIN


class NoiseParameters:
    """The four noise parameters of a two-port, per frequency.

    Parameters
    ----------
    fmin:
        Minimum noise factor (linear, >= 1), shape ``(F,)``.
    rn:
        Equivalent noise resistance [ohm], shape ``(F,)``.
    y_opt:
        Optimum source admittance [S], complex, shape ``(F,)``.
    """

    def __init__(self, fmin, rn, y_opt):
        fmin = np.atleast_1d(np.asarray(fmin, dtype=float))
        rn = np.atleast_1d(np.asarray(rn, dtype=float))
        y_opt = np.atleast_1d(np.asarray(y_opt, dtype=complex))
        if not fmin.shape == rn.shape == y_opt.shape:
            raise ValueError(
                f"shape mismatch: fmin {fmin.shape}, rn {rn.shape}, "
                f"y_opt {y_opt.shape}"
            )
        if np.any(fmin < 1.0 - 1e-9):
            raise ValueError("fmin must be >= 1 (linear noise factor)")
        if np.any(rn < 0):
            raise ValueError("rn must be non-negative")
        self.fmin = fmin
        self.rn = rn
        self.y_opt = y_opt

    @classmethod
    def from_nfmin_db(cls, nfmin_db, rn, gamma_opt, z0=50.0):
        """Build from the datasheet convention: NFmin [dB], Rn, Γopt."""
        fmin = 10.0 ** (np.asarray(nfmin_db, dtype=float) / 10.0)
        gamma_opt = np.asarray(gamma_opt, dtype=complex)
        y_opt = (1.0 - gamma_opt) / (1.0 + gamma_opt) / z0
        return cls(fmin, rn, y_opt)

    @property
    def nfmin_db(self) -> np.ndarray:
        """Minimum noise figure in dB."""
        return 10.0 * np.log10(self.fmin)

    def gamma_opt(self, z0=50.0) -> np.ndarray:
        """Optimum source reflection coefficient for reference *z0*."""
        z_opt = 1.0 / self.y_opt
        return (z_opt - z0) / (z_opt + z0)

    def noise_factor(self, y_source) -> np.ndarray:
        """Noise factor for a source admittance (scalar or per-frequency)."""
        ys = np.asarray(y_source, dtype=complex)
        gs = ys.real
        if np.any(gs <= 0):
            raise ValueError("source admittance must have positive real part")
        return self.fmin + (self.rn / gs) * np.abs(ys - self.y_opt) ** 2

    def noise_figure_db(self, y_source) -> np.ndarray:
        """Noise figure in dB for a source admittance."""
        return 10.0 * np.log10(self.noise_factor(y_source))

    def noise_factor_gamma(self, gamma_source, z0=50.0) -> np.ndarray:
        """Noise factor for a source reflection coefficient at *z0*."""
        gamma_s = np.asarray(gamma_source, dtype=complex)
        ys = (1.0 - gamma_s) / (1.0 + gamma_s) / z0
        return self.noise_factor(ys)

    def __len__(self):
        return self.fmin.size

    def __repr__(self):
        return (
            f"<NoiseParameters {self.fmin.size} pts "
            f"NFmin {self.nfmin_db.min():.3f}-{self.nfmin_db.max():.3f} dB>"
        )


# ----------------------------------------------------------------------
# correlation-matrix algebra
# ----------------------------------------------------------------------

def ca_from_noise_parameters(params: NoiseParameters) -> np.ndarray:
    """Chain correlation matrix CA (F, 2, 2) from noise parameters."""
    rn = params.rn
    fmin = params.fmin
    y_opt = params.y_opt
    n = rn.size
    ca = np.empty((n, 2, 2), dtype=complex)
    off = 0.5 * (fmin - 1.0) - rn * np.conjugate(y_opt)
    ca[:, 0, 0] = rn
    ca[:, 0, 1] = off
    ca[:, 1, 0] = np.conjugate(off)
    ca[:, 1, 1] = rn * np.abs(y_opt) ** 2
    return _2KT0 * ca


def noise_parameters_from_ca(ca) -> NoiseParameters:
    """Noise parameters from a chain correlation matrix (F, 2, 2)."""
    ca = np.asarray(ca, dtype=complex)
    c11 = ca[..., 0, 0].real
    c22 = ca[..., 1, 1].real
    c12 = ca[..., 0, 1]
    if np.any(c11 <= 0):
        raise ValueError(
            "CA[0,0] must be positive; the network has no voltage noise, "
            "so noise parameters are degenerate"
        )
    rn = c11 / _2KT0
    im_ratio = c12.imag / c11
    radicand = np.maximum(c22 / c11 - im_ratio**2, 0.0)
    y_opt = np.sqrt(radicand) + 1j * im_ratio
    fmin = 1.0 + (c12 + c11 * np.conjugate(y_opt)).real / (0.5 * _2KT0)
    fmin = np.maximum(fmin, 1.0)
    return NoiseParameters(fmin, rn, y_opt)


def cy_from_ca(ca, y) -> np.ndarray:
    """Convert chain CA to admittance CY given the network's Y-parameters."""
    ca = np.asarray(ca, dtype=complex)
    y = np.asarray(y, dtype=complex)
    t = np.zeros_like(y)
    t[..., 0, 0] = -y[..., 0, 0]
    t[..., 0, 1] = 1.0
    t[..., 1, 0] = -y[..., 1, 0]
    return t @ ca @ _hermitian(t)


def ca_from_cy(cy, abcd) -> np.ndarray:
    """Convert admittance CY to chain CA given the network's ABCD params."""
    cy = np.asarray(cy, dtype=complex)
    abcd = np.asarray(abcd, dtype=complex)
    t = np.zeros_like(abcd)
    t[..., 0, 1] = abcd[..., 0, 1]
    t[..., 1, 0] = 1.0
    t[..., 1, 1] = abcd[..., 1, 1]
    return t @ cy @ _hermitian(t)


def cz_from_ca(ca, z) -> np.ndarray:
    """Convert chain CA to impedance CZ given the network's Z-parameters."""
    ca = np.asarray(ca, dtype=complex)
    z = np.asarray(z, dtype=complex)
    t = np.zeros_like(z)
    t[..., 0, 0] = 1.0
    t[..., 0, 1] = -z[..., 0, 0]
    t[..., 1, 1] = -z[..., 1, 0]
    return t @ ca @ _hermitian(t)


def ca_from_cz(cz, abcd) -> np.ndarray:
    """Convert impedance CZ to chain CA given the network's ABCD params."""
    cz = np.asarray(cz, dtype=complex)
    abcd = np.asarray(abcd, dtype=complex)
    t = np.zeros_like(abcd)
    t[..., 0, 0] = 1.0
    t[..., 0, 1] = -abcd[..., 0, 0]
    t[..., 1, 1] = -abcd[..., 1, 0]
    return t @ cz @ _hermitian(t)


def passive_cy(y, temperature: float = T0_KELVIN) -> np.ndarray:
    """Admittance correlation matrix of a passive network in equilibrium.

    Implements the Twiss/Bosma relation ``CY = 2 k T Re(Y)``.
    """
    y = np.asarray(y, dtype=complex)
    return 2.0 * BOLTZMANN * float(temperature) * y.real.astype(complex)


def cascade_ca(ca1, abcd1, ca2) -> np.ndarray:
    """Chain correlation matrix of stage1 followed by stage2.

    ``CA = CA1 + ABCD1 @ CA2 @ ABCD1^H``.
    """
    abcd1 = np.asarray(abcd1, dtype=complex)
    return np.asarray(ca1, dtype=complex) + abcd1 @ np.asarray(
        ca2, dtype=complex
    ) @ _hermitian(abcd1)


def friis_cascade(noise_factors, available_gains) -> np.ndarray:
    """Total noise factor of a cascade via the Friis formula.

    Parameters
    ----------
    noise_factors:
        Sequence of per-stage noise factors (scalars or arrays).
    available_gains:
        Sequence of per-stage available power gains (linear).
    """
    factors = [np.asarray(f, dtype=float) for f in noise_factors]
    gains = [np.asarray(g, dtype=float) for g in available_gains]
    if len(factors) != len(gains):
        raise ValueError("need one available gain per stage")
    if not factors:
        raise ValueError("cascade must contain at least one stage")
    total = factors[0].copy()
    gain_product = np.ones_like(total)
    for f_stage, g_prev in zip(factors[1:], gains[:-1]):
        gain_product = gain_product * g_prev
        total = total + (f_stage - 1.0) / gain_product
    return total


def _hermitian(matrix: np.ndarray) -> np.ndarray:
    return np.conjugate(np.swapaxes(matrix, -1, -2))


# ----------------------------------------------------------------------
# noisy two-port container
# ----------------------------------------------------------------------

class NoisyTwoPort:
    """A two-port together with its chain noise-correlation matrix.

    This is the object the amplifier designer manipulates: it cascades
    both the signal matrices and the noise correlation, so the noise
    figure of an arbitrary chain of matching networks and transistors
    falls out directly.
    """

    def __init__(self, network: TwoPort, ca):
        ca = np.asarray(ca, dtype=complex)
        if ca.shape != (len(network.frequency), 2, 2):
            raise ValueError(
                f"ca must have shape ({len(network.frequency)}, 2, 2), "
                f"got {ca.shape}"
            )
        self.network = network
        self.ca = ca

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_noise_parameters(cls, network: TwoPort,
                              params: NoiseParameters) -> "NoisyTwoPort":
        """Attach datasheet-style noise parameters to a network."""
        if len(params) != len(network.frequency):
            raise ValueError(
                "noise parameters and network sampled on different grids"
            )
        return cls(network, ca_from_noise_parameters(params))

    @classmethod
    def from_passive(cls, network: TwoPort,
                     temperature: float = T0_KELVIN) -> "NoisyTwoPort":
        """Thermal noise of a passive network at a physical temperature.

        Per frequency, uses whichever of ``CY = 2kT Re(Y)`` or
        ``CZ = 2kT Re(Z)`` is better conditioned — a nearly ideal
        series element has an ill-conditioned Z representation and a
        nearly ideal shunt element an ill-conditioned Y representation,
        and a solve against the wrong one silently amplifies rounding
        noise into the correlation matrix.  Frequencies where both are
        unusable must be lossless (ideal thru/transformer/line) and get
        exactly zero noise.
        """
        s = network.s
        n_freq = len(network.frequency)
        eye = np.eye(2)
        cond_y = np.linalg.cond(eye + s)
        cond_z = np.linalg.cond(eye - s)
        usable_y = cond_y < 1e9
        usable_z = cond_z < 1e9
        use_y = usable_y & ((cond_y <= cond_z) | ~usable_z)
        use_z = usable_z & ~use_y
        degenerate = ~(use_y | use_z)

        ca = np.zeros((n_freq, 2, 2), dtype=complex)
        kt2 = 2.0 * BOLTZMANN * float(temperature)
        if np.any(use_y):
            abcd = cv.s_to_abcd(s[use_y], network.z0)
            y = cv.s_to_y(s[use_y], network.z0)
            ca[use_y] = ca_from_cy(kt2 * y.real.astype(complex), abcd)
        if np.any(use_z):
            abcd = cv.s_to_abcd(s[use_z], network.z0)
            z = cv.s_to_z(s[use_z], network.z0)
            ca[use_z] = ca_from_cz(kt2 * z.real.astype(complex), abcd)
        if np.any(degenerate):
            gram = (
                np.conjugate(np.swapaxes(s[degenerate], -1, -2))
                @ s[degenerate]
            )
            if not np.allclose(gram, eye, atol=1e-8):
                raise ValueError(
                    "passive network has neither a usable Y nor Z "
                    "representation and is not lossless; cannot form "
                    "its noise correlation"
                )
        return cls(network, ca)

    # -- views ------------------------------------------------------------
    @property
    def frequency(self) -> FrequencyGrid:
        return self.network.frequency

    @property
    def noise_parameters(self) -> NoiseParameters:
        """The (Fmin, Rn, Yopt) representation of this network's noise."""
        return noise_parameters_from_ca(self.ca)

    # -- composition ------------------------------------------------------
    def cascade(self, other: "NoisyTwoPort") -> "NoisyTwoPort":
        """Cascade self followed by *other*, composing signal and noise."""
        if not isinstance(other, NoisyTwoPort):
            raise TypeError(
                f"expected NoisyTwoPort, got {type(other).__name__}"
            )
        combined = self.network.cascade(other.network)
        ca_total = cascade_ca(self.ca, self.network.abcd, other.ca)
        return NoisyTwoPort(combined, ca_total)

    def __pow__(self, other: "NoisyTwoPort") -> "NoisyTwoPort":
        return self.cascade(other)

    # -- figures of merit --------------------------------------------------
    def noise_factor(self, y_source) -> np.ndarray:
        """Noise factor versus frequency for a given source admittance.

        Computed directly from the chain correlation matrix — valid
        even for networks whose (Fmin, Rn, Yopt) representation is
        degenerate (zero equivalent voltage noise):
        ``F = 1 + <|e_n + Zs i_n|^2> / (2 k T0 Re Zs)``.
        """
        ys = np.asarray(y_source, dtype=complex)
        if np.any(ys.real <= 0):
            raise ValueError("source admittance must have positive real part")
        zs = 1.0 / ys
        ca = self.ca
        e_total = (
            ca[:, 0, 0]
            + np.conjugate(zs) * ca[:, 0, 1]
            + zs * ca[:, 1, 0]
            + np.abs(zs) ** 2 * ca[:, 1, 1]
        ).real
        return 1.0 + e_total / (_2KT0 * zs.real)

    def noise_figure_db(self, y_source=None) -> np.ndarray:
        """Noise figure [dB]; defaults to the network reference impedance."""
        if y_source is None:
            y_source = 1.0 / self.network.z0
        return 10.0 * np.log10(self.noise_factor(y_source))

    def __repr__(self):
        nf = self.noise_parameters.nfmin_db
        return (
            f"<NoisyTwoPort {self.network!r} "
            f"NFmin {nf.min():.3f}-{nf.max():.3f} dB>"
        )
