"""Minimal Touchstone (.s2p) reader/writer.

Supports the version-1 format with ``# <unit> S <fmt> R <z0>`` option
lines, the RI/MA/DB data formats, comment lines, and the conventional
noise-parameter block that may follow the S-parameter data in ``.s2p``
files (frequency, NFmin dB, |Γopt|, ∠Γopt deg, rn/z0).

This is the interchange format between the synthetic "measurement"
datasets and the extraction pipeline, mirroring how the paper's authors
would have moved VNA data into their fitting tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.guards import contracts as _contracts
from repro.rf.frequency import FrequencyGrid
from repro.rf.noise import NoiseParameters
from repro.rf.twoport import TwoPort

__all__ = ["TouchstoneData", "read_touchstone", "write_touchstone"]

_UNIT_SCALE = {"HZ": 1.0, "KHZ": 1e3, "MHZ": 1e6, "GHZ": 1e9}


@dataclass
class TouchstoneData:
    """Parsed contents of a two-port Touchstone file."""

    network: TwoPort
    noise: Optional[NoiseParameters] = None


def read_touchstone(source, expect_passive: bool = False) -> TouchstoneData:
    """Parse a .s2p file.

    Parameters
    ----------
    source:
        A path, or any object with a ``read`` method, or a string
        containing the file body (detected by the presence of newlines).
    expect_passive:
        Additionally enforce the passivity and reciprocity contracts on
        the parsed S-data (for files describing passive structures —
        transistor files are legitimately active, so the default checks
        only finiteness, grid monotonicity, and noise consistency).
    """
    text = _slurp(source)
    unit_scale = 1e9
    data_format = "MA"
    z0 = 50.0
    rows = []
    for raw_line in text.splitlines():
        line = raw_line.split("!", 1)[0].strip()
        if not line:
            continue
        if line.startswith("#"):
            tokens = line[1:].upper().split()
            idx = 0
            while idx < len(tokens):
                token = tokens[idx]
                if token in _UNIT_SCALE:
                    unit_scale = _UNIT_SCALE[token]
                elif token in ("RI", "MA", "DB"):
                    data_format = token
                elif token == "R" and idx + 1 < len(tokens):
                    z0 = float(tokens[idx + 1])
                    idx += 1
                idx += 1
            continue
        rows.append([float(v) for v in line.split()])
    if not rows:
        raise ValueError("no data rows found in touchstone input")

    # Classify positionally: the v1 .s2p layout is one block of
    # 9-column S rows optionally followed by one block of 5-column
    # noise rows.  Anything else (odd column counts, S rows after the
    # noise block began) is a malformed file — raise instead of
    # silently dropping or mis-assigning the row.
    s_rows = []
    noise_rows = []
    for row_number, row in enumerate(rows, start=1):
        if len(row) == 9 and not noise_rows:
            s_rows.append(row)
        elif len(row) == 5:
            noise_rows.append(row)
        elif len(row) == 9:
            raise ValueError(
                f"data row {row_number}: 9-column S-parameter row after "
                f"the noise block started"
            )
        else:
            raise ValueError(
                f"data row {row_number}: expected 9 columns "
                f"(S-parameters) or 5 columns (noise parameters), "
                f"got {len(row)}"
            )
    if not s_rows:
        raise ValueError("no 9-column S-parameter rows found")

    s_arr = np.asarray(s_rows, dtype=float)
    f_hz = s_arr[:, 0] * unit_scale
    # Trust-boundary contract: check the grid before FrequencyGrid's
    # own constructor rejects it, so strict mode reports a typed
    # ContractViolation naming the touchstone source.
    _contracts.check_frequency_grid(f_hz, "touchstone frequency grid")
    pair_order = [(0, 0), (1, 0), (0, 1), (1, 1)]  # S11 S21 S12 S22
    s = np.empty((len(f_hz), 2, 2), dtype=complex)
    for k, (i, j) in enumerate(pair_order):
        col = 1 + 2 * k
        s[:, i, j] = _to_complex(s_arr[:, col], s_arr[:, col + 1], data_format)

    grid = FrequencyGrid(f_hz)
    network = TwoPort(grid, s, z0=z0)

    noise = None
    if noise_rows:
        n_arr = np.asarray(noise_rows, dtype=float)
        nf_min_db = n_arr[:, 1]
        gamma_opt = n_arr[:, 2] * np.exp(1j * np.deg2rad(n_arr[:, 3]))
        rn = n_arr[:, 4] * z0
        noise = NoiseParameters.from_nfmin_db(nf_min_db, rn, gamma_opt, z0=z0)
        if n_arr.shape[0] != len(f_hz) or not np.allclose(
            n_arr[:, 0] * unit_scale, f_hz
        ):
            # Noise data on its own grid: resample onto the S grid.
            noise = _resample_noise(n_arr[:, 0] * unit_scale, noise, f_hz, z0)

    # Trust-boundary contracts: external data enters the pipeline here.
    _contracts.check_finite(s, "touchstone S-parameters")
    if expect_passive:
        _contracts.check_passivity(s, "touchstone S-parameters")
        _contracts.check_reciprocity(s, "touchstone S-parameters")
    if noise is not None:
        _contracts.check_noise_parameters(
            noise.fmin, noise.rn, noise.gamma_opt(z0),
            "touchstone noise parameters",
        )
    return TouchstoneData(network=network, noise=noise)


def write_touchstone(data: TouchstoneData, destination=None,
                     data_format: str = "RI") -> str:
    """Serialize to .s2p text (GHz / S / *data_format*).  Returns the text.

    ``data_format`` is one of ``"RI"``, ``"MA"``, ``"DB"``.  Values are
    written with 17 significant digits, so a write→read round trip
    reproduces the S-parameters to double-precision rounding in every
    format (the DB path goes through one ``log10``/``exp10`` pair).
    When *destination* is a path or file object the text is also
    written there.
    """
    data_format = data_format.upper()
    if data_format not in ("RI", "MA", "DB"):
        raise ValueError(
            f"unknown touchstone data format {data_format!r}; "
            f"use 'RI', 'MA', or 'DB'"
        )
    network = data.network
    lines = ["! generated by repro.rf.touchstone",
             f"# GHz S {data_format} R {network.z0:g}"]
    s = network.s
    for idx, f in enumerate(network.frequency.f_hz):
        values = []
        for i, j in [(0, 0), (1, 0), (0, 1), (1, 1)]:
            value = s[idx, i, j]
            if data_format == "RI":
                a, b = value.real, value.imag
            else:
                magnitude = np.abs(value)
                b = np.angle(value, deg=True)
                if data_format == "MA":
                    a = magnitude
                else:  # DB; clamp so a true zero stays finite
                    a = 20.0 * np.log10(max(magnitude, 1e-300))
            values.append(f"{a:.17e} {b:.17e}")
        lines.append(f"{f / 1e9:.17e} " + " ".join(values))
    if data.noise is not None:
        lines.append("! noise parameters")
        gamma_opt = data.noise.gamma_opt(network.z0)
        for idx, f in enumerate(network.frequency.f_hz):
            lines.append(
                f"{f / 1e9:.17e} {data.noise.nfmin_db[idx]:.17e} "
                f"{np.abs(gamma_opt[idx]):.17e} "
                f"{np.angle(gamma_opt[idx], deg=True):.17e} "
                f"{data.noise.rn[idx] / network.z0:.17e}"
            )
    text = "\n".join(lines) + "\n"
    if destination is not None:
        if hasattr(destination, "write"):
            destination.write(text)
        else:
            with open(destination, "w", encoding="ascii") as handle:
                handle.write(text)
    return text


def _slurp(source) -> str:
    if hasattr(source, "read"):
        return source.read()
    text = str(source)
    if "\n" in text:
        return text
    with open(text, "r", encoding="ascii") as handle:
        return handle.read()


def _to_complex(a, b, data_format: str) -> np.ndarray:
    if data_format == "RI":
        return a + 1j * b
    if data_format == "MA":
        return a * np.exp(1j * np.deg2rad(b))
    if data_format == "DB":
        return 10.0 ** (a / 20.0) * np.exp(1j * np.deg2rad(b))
    raise ValueError(f"unknown touchstone data format {data_format!r}")


def _resample_noise(f_noise, noise: NoiseParameters, f_target, z0) -> NoiseParameters:
    """Linear interpolation of noise parameters onto the S grid.

    ``np.interp`` clamps outside the measured band, which would
    silently extend NFmin/rn/Gamma_opt flat over frequencies the
    datasheet never characterized — that is reported as a contract
    violation (an exception in strict mode, a ``GuardWarning`` in warn
    mode) before the clamped values are returned.
    """
    f_target = np.asarray(f_target, dtype=float)
    outside = (f_target < f_noise[0]) | (f_target > f_noise[-1])
    if np.any(outside):
        _contracts.report_violation(
            "touchstone noise grid",
            f"{int(np.sum(outside))} of {f_target.size} target "
            f"frequencies lie outside the measured noise band "
            f"[{f_noise[0] / 1e9:.3f}, {f_noise[-1] / 1e9:.3f}] GHz "
            f"(target spans [{f_target.min() / 1e9:.3f}, "
            f"{f_target.max() / 1e9:.3f}] GHz); noise parameters are "
            f"clamped, not extrapolated",
        )
    nfmin_db = np.interp(f_target, f_noise, noise.nfmin_db)
    rn = np.interp(f_target, f_noise, noise.rn)
    gamma = noise.gamma_opt(z0)
    g_re = np.interp(f_target, f_noise, gamma.real)
    g_im = np.interp(f_target, f_noise, gamma.imag)
    return NoiseParameters.from_nfmin_db(nfmin_db, rn, g_re + 1j * g_im, z0=z0)
