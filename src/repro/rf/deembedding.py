"""Fixture de-embedding: open/short and thru-based corrections.

The extraction pipeline assumes the device's S-parameters are referred
to its own terminals, but a VNA measures the device *in a fixture*
(pads + access lines).  These are the two standard corrections:

* :func:`open_short_deembed` — remove the fixture's parallel (pad) and
  series (lead) parasitics using measurements of an OPEN and a SHORT
  dummy structure (the classic on-wafer recipe):
  ``Y1 = Y_meas - Y_open``; ``Z_dut = Z1 - (Y_short - Y_open)^-1``.
* :func:`thru_deembed` — split a symmetric THRU standard into two
  half-fixtures and strip them from both sides of the measurement
  (square-root-of-ABCD method).

Both are exercised in the test suite by embedding a known device in a
synthetic fixture and recovering it exactly.
"""

from __future__ import annotations

import numpy as np

from repro.rf import conversions as cv
from repro.rf.twoport import TwoPort

__all__ = ["open_short_deembed", "thru_deembed", "split_thru"]


def open_short_deembed(measured: TwoPort, open_standard: TwoPort,
                       short_standard: TwoPort) -> TwoPort:
    """Open-short de-embedding of a fixtured two-port measurement.

    The fixture model is parallel pad admittances (captured by the
    OPEN) followed by series lead impedances (captured by the SHORT
    after pad removal).  Returns the device referred to its own
    terminals.
    """
    _check_grids(measured, open_standard, short_standard)
    y_meas = measured.y
    y_open = open_standard.y
    y_short = short_standard.y
    # Strip the pads from both the measurement and the short.
    y1 = y_meas - y_open
    y_series = y_short - y_open
    z_dut = np.linalg.inv(y1) - np.linalg.inv(y_series)
    return TwoPort.from_z(measured.frequency, z_dut, z0=measured.z0,
                          name=f"deembed({measured.name})")


def split_thru(thru_standard: TwoPort) -> TwoPort:
    """The half-fixture of a symmetric THRU (matrix square root of ABCD).

    Uses the eigendecomposition square root; for the reciprocal,
    symmetric fixtures this targets, the principal root is the physical
    half.
    """
    abcd = thru_standard.abcd
    halves = np.empty_like(abcd)
    for idx in range(abcd.shape[0]):
        eigenvalues, eigenvectors = np.linalg.eig(abcd[idx])
        sqrt_eigenvalues = np.sqrt(eigenvalues.astype(complex))
        # Choose principal branch (non-negative real part) so the half
        # fixture keeps positive electrical length.
        sqrt_eigenvalues = np.where(
            sqrt_eigenvalues.real < 0, -sqrt_eigenvalues, sqrt_eigenvalues
        )
        halves[idx] = (
            eigenvectors
            @ np.diag(sqrt_eigenvalues)
            @ np.linalg.inv(eigenvectors)
        )
    return TwoPort.from_abcd(thru_standard.frequency, halves,
                             z0=thru_standard.z0,
                             name=f"half({thru_standard.name})")


def thru_deembed(measured: TwoPort, thru_standard: TwoPort) -> TwoPort:
    """Strip symmetric half-fixtures from both sides of a measurement.

    The THRU standard is the two half-fixtures back to back; the left
    half is removed as-is, the right half flipped.
    """
    _check_grids(measured, thru_standard)
    half = split_thru(thru_standard)
    half_abcd = half.abcd
    # Right half of the fixture is the mirrored (flipped) half.
    flipped_abcd = half.flipped().abcd
    dut_abcd = (
        np.linalg.inv(half_abcd)
        @ measured.abcd
        @ np.linalg.inv(flipped_abcd)
    )
    return TwoPort.from_abcd(measured.frequency, dut_abcd, z0=measured.z0,
                             name=f"deembed({measured.name})")


def _check_grids(*networks: TwoPort):
    first = networks[0]
    for other in networks[1:]:
        if other.frequency != first.frequency:
            raise ValueError(
                "all standards must share the measurement's grid"
            )
        if abs(other.z0 - first.z0) > 1e-9:
            raise ValueError("all standards must share one z0")
