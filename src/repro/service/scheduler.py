"""Job execution: turning a leased :class:`JobRecord` into results.

:class:`JobRunner` is the worker side of the service — the supervisor
(:mod:`repro.service.supervisor`) claims jobs from the queue and hands
them here to run.  One runner executes one job at a time inside the
calling thread; concurrency comes from the supervisor running several
runner slots.

The contract that makes lease takeover loss-free:

* Every job owns the run directory ``<runs_root>/<job_id>/`` — the
  journal, checkpoint, and ``result.json`` all live there, keyed by the
  job id, so *whichever* process leases the job next finds the same
  artifacts.
* The optimizer checkpoints **every completed generation**
  (``spec.checkpoint_every`` defaults to 1), with the journal's
  telemetry riding inside the checkpoint payload; a takeover resumes
  the exact RNG trajectory and the replayed journal stays contiguous.
* Control is checked at **generation boundaries**, through the
  ``on_generation`` sink, *before* the generation is journaled: the
  lease heartbeat, the cancel marker, the deadline, and the drain flag
  all run there.  A zombie runner — one whose lease expired and was
  taken over while it was stalled — therefore raises
  :class:`~repro.service.queue.LeaseLost` out of its optimizer loop
  before it can append a single event to a journal the new owner now
  owns.
* ``result.json`` is written with sorted keys and split into a
  ``"result"`` subtree (the deterministic payload — bit-identical
  between an interrupted-and-recovered run and an uninterrupted one)
  and a ``"health"`` subtree (retry/rebuild counters, which a crashy
  run legitimately accumulates more of).

Experiment jobs (``kind="experiment"``) run a whole driver's ``run()``
instead; they are coarse-grained and restart from scratch on retry —
the drivers orchestrate several optimizer stages of their own, so
mid-run resume is not meaningful at this layer.
"""

from __future__ import annotations

import importlib
import json
import os
import time
from typing import Callable, Dict, Optional

from repro.obs.journal import RunJournal, set_thread_journal
from repro.obs.runs import RunRegistry
from repro.optimize.faults import FaultInjector
from repro.service.jobs import JobRecord, build_objective
from repro.service.queue import JobQueue, LeaseLost

__all__ = [
    "JobCancelled",
    "JobDeadlineExceeded",
    "DrainRequested",
    "JobRunner",
    "register_experiment",
    "registered_experiments",
    "RESULT_NAME",
]

RESULT_NAME = "result.json"

#: name -> module path (or injected module-like object) exposing
#: ``run(**kwargs)``.  The standard drivers register lazily by path so
#: importing the service does not drag in every experiment's
#: dependencies; tests inject fakes with :func:`register_experiment`.
_EXPERIMENTS: Dict[str, object] = {
    "e5_optimizer_comparison": "repro.experiments.e5_optimizer_comparison",
    "e6_tradeoff_front": "repro.experiments.e6_tradeoff_front",
    "e8_selected_design": "repro.experiments.e8_selected_design",
    "e12_robust_front": "repro.experiments.e12_robust_front",
}


def register_experiment(name: str, module) -> None:
    """Register an experiment driver (module path or module-like)."""
    _EXPERIMENTS[str(name)] = module


def registered_experiments():
    return sorted(_EXPERIMENTS)


def _resolve_experiment(name: str):
    try:
        module = _EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"no experiment {name!r} registered "
            f"(known: {', '.join(sorted(_EXPERIMENTS))})"
        ) from None
    if isinstance(module, str):
        module = importlib.import_module(module)
    runner = getattr(module, "run", None)
    if not callable(runner):
        raise TypeError(f"experiment {name!r} has no callable run()")
    return runner


class JobCancelled(RuntimeError):
    """The job's cancel marker appeared; stop at this boundary."""


class JobDeadlineExceeded(RuntimeError):
    """The job's wall-clock deadline passed; fail terminally."""


class DrainRequested(RuntimeError):
    """The service is draining; checkpoint and release the job."""


class _SupervisedSink:
    """``on_generation`` sink running the control checks, then journaling.

    Check order matters: lease renewal / cancel / deadline / drain run
    *before* the generation event is appended, so a runner that must
    abandon the job never writes into a journal it no longer owns.
    ``state()``/``restore()`` delegate to the journal so the telemetry
    trace rides inside optimizer checkpoints and survives takeover.
    """

    def __init__(self, journal: RunJournal, control: Callable[..., None]):
        self._journal = journal
        self._control = control

    def __call__(self, record) -> None:
        self._control(record)
        self._journal(record)

    def state(self):
        return self._journal.state()

    def restore(self, state) -> None:
        self._journal.restore(state)


class JobRunner:
    """Executes leased jobs for one owner (one runner slot).

    Parameters
    ----------
    queue:
        The durable queue the job was claimed from; used for the lease
        heartbeat and the cancel-marker poll.
    runs_root:
        Directory (or :class:`RunRegistry`) the per-job run directories
        live under.
    owner:
        Lease owner string — must match the claim, or every heartbeat
        raises :class:`LeaseLost`.
    lease_s:
        Lease duration re-granted by each heartbeat.
    drain:
        Optional zero-argument callable (typically
        ``threading.Event.is_set``); when it turns true the runner
        raises :class:`DrainRequested` at the next generation boundary.
    """

    def __init__(self, queue: JobQueue, runs_root, owner: str,
                 lease_s: float = 30.0,
                 drain: Optional[Callable[[], bool]] = None):
        self.queue = queue
        self.registry = (runs_root if isinstance(runs_root, RunRegistry)
                         else RunRegistry(runs_root))
        self.owner = str(owner)
        self.lease_s = float(lease_s)
        self.drain = drain

    # -- control ------------------------------------------------------------
    def _control_check(self, record: JobRecord,
                       generation=None) -> None:
        """One generation-boundary tick; raises to stop the optimizer.

        When the tick fires from the generation sink, the generation
        record's progress (generation index, cumulative nfev, current
        best) piggybacks on the lease heartbeat — the supervisor's
        Prometheus collector reads it back out of the lease records.
        """
        if self.drain is not None and self.drain():
            raise DrainRequested(record.job_id)
        if self.queue.cancel_requested(record.job_id):
            raise JobCancelled(record.job_id)
        if record.spec.deadline_s is not None \
                and record.started_at is not None \
                and time.time() - record.started_at > record.spec.deadline_s:
            raise JobDeadlineExceeded(record.job_id)
        progress = None
        if generation is not None:
            try:
                progress = {
                    "generation": int(generation.generation),
                    "nfev": int(generation.nfev),
                    "best": float(generation.best),
                }
            except (AttributeError, TypeError, ValueError):
                progress = None
        self.queue.renew(record.job_id, self.owner, self.lease_s,
                         progress=progress)

    # -- execution ----------------------------------------------------------
    def run(self, record: JobRecord) -> dict:
        """Run one leased job to completion; returns the result summary.

        Raises :class:`JobCancelled` / :class:`JobDeadlineExceeded` /
        :class:`DrainRequested` / :class:`LeaseLost` for the supervisor
        to translate into queue transitions, or the job's own exception
        on a genuine failure.  The run journal is scoped to *this
        thread* for the duration, so concurrent slots never cross-talk
        through the process-global flight recorder.
        """
        run = self.registry.create_run(run_id=record.job_id)
        journal = run.open_journal()
        previous = set_thread_journal(journal)
        try:
            journal.run_start(
                config={"spec": record.spec.to_dict()},
                seeds={"optimizer": record.spec.seed},
                job_id=record.job_id,
                owner=self.owner,
                attempt=record.attempt,
                takeovers=record.takeovers,
            )
            if record.spec.kind == "experiment":
                summary = self._run_experiment(record, run)
            else:
                summary = self._run_optimize(record, run, journal)
            journal.run_end(status="completed")
            return summary
        except (JobCancelled, JobDeadlineExceeded) as exc:
            # Terminal control outcomes close the run's story here; the
            # supervisor still owns the queue-side transition.
            journal.run_end(status="failed",
                            error=f"{type(exc).__name__}: {exc}")
            raise
        except (DrainRequested, LeaseLost):
            # The job stays live (released or owned by its new leaser):
            # no run_end — the checkpoint must remain resumable and the
            # gc orphan scan protects live job ids.
            raise
        except BaseException as exc:
            if record.attempt >= record.spec.max_retries:
                journal.run_end(status="failed",
                                error=f"{type(exc).__name__}: {exc}")
            else:
                journal.append("attempt_failed", attempt=record.attempt,
                               error=f"{type(exc).__name__}: {exc}")
                journal.flush()
            raise
        finally:
            set_thread_journal(previous)
            journal.close()

    def _run_optimize(self, record: JobRecord, run, journal) -> dict:
        from repro.optimize import metaheuristics as mh

        spec = record.spec
        problem = build_objective(spec.objective, spec.objective_params)
        objective = problem["objective"]
        objective_batch = problem["objective_batch"]
        if spec.fault_injection:
            # The chaos harness: injected faults wrap the scalar path
            # only (the injector draws one RNG variate per call), so
            # the batch shortcut is disabled to keep injection honest.
            objective = FaultInjector(objective, **dict(spec.fault_injection))
            objective_batch = None

        sink = _SupervisedSink(
            journal,
            lambda generation=None: self._control_check(record, generation))
        budget = dict(spec.budget)
        common = dict(
            max_iterations=int(budget.get("max_iterations", 50)),
            seed=spec.seed,
            objective_batch=objective_batch,
            workers=spec.workers,
            backend=spec.backend,
            generation_timeout=spec.generation_timeout,
            checkpoint_store=run.checkpoint_store(),
            checkpoint_every=spec.checkpoint_every,
            resume=True,
            on_generation=sink,
        )
        common.update(spec.options)
        size = int(budget.get("population_size", 20))
        if spec.algorithm == "particle_swarm":
            result = mh.particle_swarm(
                objective, problem["lower"], problem["upper"],
                n_particles=size, **common)
        else:
            result = mh.differential_evolution(
                objective, problem["lower"], problem["upper"],
                population_size=size, **common)

        payload = {
            "result": {
                "x": [float(v) for v in result.x],
                "fun": float(result.fun),
                "nfev": int(result.nfev),
                "n_iterations": int(result.n_iterations),
                "converged": bool(result.converged),
                "message": str(result.message),
                "history": [float(v) for v in result.history],
            },
            "health": result.health.as_dict(),
        }
        self._write_result(run, payload)
        journal.record_health(result.health)
        return {
            "fun": payload["result"]["fun"],
            "nfev": payload["result"]["nfev"],
            "n_iterations": payload["result"]["n_iterations"],
            "converged": payload["result"]["converged"],
            "run_dir": run.path,
        }

    def _run_experiment(self, record: JobRecord, run) -> dict:
        spec = record.spec
        runner = _resolve_experiment(spec.experiment)
        self._control_check(record)  # heartbeat before the long haul
        value = runner(**dict(spec.experiment_kwargs))
        summary = {"experiment": spec.experiment, "status": "completed"}
        if isinstance(value, dict):
            # Keep only JSON-clean leaves; drivers return rich objects.
            for key, item in value.items():
                if isinstance(item, (int, float, str, bool)) \
                        or item is None:
                    summary[str(key)] = item
        # Experiment jobs honor the same fetch contract as optimize
        # jobs: ServiceClient.result() reads result.json from the run
        # dir, so a completed job must always have written one.
        self._write_result(run, {"result": summary})
        return summary

    @staticmethod
    def _write_result(run, payload: dict) -> None:
        """Atomically write ``result.json`` with deterministic bytes."""
        target = os.path.join(run.path, RESULT_NAME)
        blob = json.dumps(payload, sort_keys=True, indent=2)
        tmp = target + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(blob + "\n")
        os.replace(tmp, target)
