"""Job vocabulary of the optimization service.

A *job* is the unit the service supervises: a declarative description
of one optimization (or one experiment driver) that can be serialized
into the durable queue, leased to a runner slot, checkpointed, and —
after a crash — resumed by a different runner with bit-identical
results.  Everything here is therefore **data, not callables**: the
objective is named against a registry of builders
(:func:`register_objective` / :func:`build_objective`) so a freshly
restarted service process can reconstruct exactly the problem a dead
runner was solving.

Two record types travel through the queue:

* :class:`JobSpec` — what the client asked for (objective, algorithm,
  budget, deadline, retry policy).  Immutable once submitted.
* :class:`JobRecord` — the spec plus the supervisor's bookkeeping
  (state, attempt counter, lease, takeovers, error, result summary).

State machine (dirs of :class:`repro.service.queue.JobQueue`)::

    submitted ──> pending ──claim──> leased ──run──> done
                     ^                  │              │
                     │   retry/backoff  │ fail         └─> failed
                     ├──────────────────┤ (retryable)
                     │   lease expiry   │
                     └──────────────────┘ (orphan takeover, checkpoint
                         resume — results bit-identical to a run that
                         was never interrupted)
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = [
    "JOB_STATE_PENDING",
    "JOB_STATE_LEASED",
    "JOB_STATE_DONE",
    "JOB_STATE_FAILED",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobSpec",
    "JobRecord",
    "new_job_id",
    "job_id_of",
    "register_objective",
    "build_objective",
    "registered_objectives",
]

JOB_STATE_PENDING = "pending"
JOB_STATE_LEASED = "leased"
JOB_STATE_DONE = "done"
JOB_STATE_FAILED = "failed"
JOB_STATES = (JOB_STATE_PENDING, JOB_STATE_LEASED, JOB_STATE_DONE,
              JOB_STATE_FAILED)
TERMINAL_STATES = (JOB_STATE_DONE, JOB_STATE_FAILED)

#: Algorithms a ``kind="optimize"`` job may name.  Both support full
#: checkpoint/resume, which is what makes lease takeover loss-free.
OPTIMIZE_ALGORITHMS = ("differential_evolution", "particle_swarm")

JOB_KINDS = ("optimize", "experiment")


def new_job_id(name: str = "job") -> str:
    """A fresh, filesystem-safe, chronologically sortable job id."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{name}-{stamp}-{os.urandom(3).hex()}"


@dataclass(frozen=True)
class JobSpec:
    """What a client submits: a self-contained description of one job.

    Parameters
    ----------
    kind:
        ``"optimize"`` runs a registry objective through one of
        :data:`OPTIMIZE_ALGORITHMS` with checkpoint-backed recovery;
        ``"experiment"`` runs a whole experiment driver (e5/e6/e8) —
        retried from scratch rather than resumed, since the drivers
        orchestrate several optimizer stages of their own.
    objective, objective_params:
        Registry name (see :func:`register_objective`) and its builder
        parameters.  Ignored for experiment jobs.
    algorithm, budget, options, seed:
        Optimizer entry point, its size knobs
        (``population_size`` / ``max_iterations``), extra keyword
        arguments passed through verbatim, and the run seed.
    workers, backend, generation_timeout:
        Parallel-evaluation knobs threaded into the optimizer (see
        :class:`repro.optimize.batching.PopulationEvaluator`).
    checkpoint_every:
        Generations between durable checkpoints.  The default ``1``
        makes every completed generation recoverable — the service's
        lease-takeover guarantee is only as fresh as this.
    deadline_s:
        Wall-clock budget measured from the job's *first* start,
        spanning retries and takeovers; exceeding it fails the job
        terminally (``error="deadline"``).
    max_retries:
        Transient-failure retries before the job fails terminally.
        Lease-expiry takeovers are *not* retries — a crashed runner
        never burns the client's retry budget.
    fault_injection:
        Test-harness knob: constructor kwargs for
        :class:`repro.optimize.faults.FaultInjector` wrapped around the
        scalar objective (the chaos soak submits ``{"p_exit": ...}``
        jobs).  ``None`` in production.
    experiment, experiment_kwargs:
        Driver name and its ``run()`` keyword arguments, for
        ``kind="experiment"``.
    """

    kind: str = "optimize"
    objective: str = "bench.sphere"
    objective_params: Dict[str, object] = field(default_factory=dict)
    algorithm: str = "differential_evolution"
    budget: Dict[str, int] = field(default_factory=dict)
    options: Dict[str, object] = field(default_factory=dict)
    seed: Optional[int] = 0
    workers: Optional[int] = None
    backend: Optional[str] = None
    generation_timeout: Optional[float] = None
    checkpoint_every: int = 1
    deadline_s: Optional[float] = None
    max_retries: int = 2
    fault_injection: Optional[Dict[str, object]] = None
    experiment: Optional[str] = None
    experiment_kwargs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"kind must be one of {JOB_KINDS}, got {self.kind!r}")
        if self.kind == "optimize" \
                and self.algorithm not in OPTIMIZE_ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {OPTIMIZE_ALGORITHMS}, "
                f"got {self.algorithm!r}")
        if self.kind == "experiment" and not self.experiment:
            raise ValueError("experiment jobs must name an experiment")
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}")

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class JobRecord:
    """One job's spec plus the service's durable bookkeeping."""

    job_id: str
    spec: JobSpec
    state: str = JOB_STATE_PENDING
    attempt: int = 0          # failed attempts so far
    takeovers: int = 0        # lease expiries recovered from
    submitted_at: float = 0.0
    started_at: Optional[float] = None   # first lease — deadline anchor
    finished_at: Optional[float] = None
    not_before: float = 0.0   # retry backoff gate (epoch seconds)
    lease: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    result: Optional[Dict[str, object]] = None  # small summary only

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["spec"] = self.spec.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobRecord":
        known = {f for f in cls.__dataclass_fields__}
        fields_ = {k: v for k, v in data.items() if k in known}
        fields_["spec"] = JobSpec.from_dict(dict(data["spec"]))
        return cls(**fields_)


def job_id_of(job) -> str:
    """Normalize a job handle — a job id string or a :class:`JobRecord`.

    The client surfaces accept either, so ``submit()``'s return value
    can be passed straight back to ``wait``/``result``/``cancel``.
    """
    return job.job_id if isinstance(job, JobRecord) else str(job)


# ----------------------------------------------------------------------
# objective registry
# ----------------------------------------------------------------------

#: name -> builder(params) -> {"objective", "objective_batch",
#:                             "lower", "upper"}
_OBJECTIVES: Dict[str, Callable] = {}


def register_objective(name: str):
    """Decorator registering an objective builder under *name*.

    A builder takes the spec's ``objective_params`` dict and returns a
    problem description::

        {"objective": callable(x) -> float,
         "objective_batch": callable((B, n)) -> (B,) or None,
         "lower": (n,) array, "upper": (n,) array}

    Builders run inside whichever process leases the job — they must
    depend only on their params and importable code, never on client
    process state.
    """
    def decorate(builder: Callable):
        _OBJECTIVES[name] = builder
        return builder
    return decorate


def build_objective(name: str, params: Optional[dict] = None) -> dict:
    """Instantiate a registered objective; ``KeyError`` names the rest."""
    try:
        builder = _OBJECTIVES[name]
    except KeyError:
        raise KeyError(
            f"no objective {name!r} registered "
            f"(known: {', '.join(sorted(_OBJECTIVES)) or 'none'})"
        ) from None
    problem = builder(dict(params or {}))
    problem.setdefault("objective_batch", None)
    problem["lower"] = np.asarray(problem["lower"], dtype=float)
    problem["upper"] = np.asarray(problem["upper"], dtype=float)
    return problem


def registered_objectives() -> List[str]:
    return sorted(_OBJECTIVES)


# -- built-in objectives ------------------------------------------------------

def _sphere(x) -> float:
    return float(np.sum(np.square(np.asarray(x, dtype=float))))


def _sphere_batch(population) -> np.ndarray:
    return np.sum(np.square(np.asarray(population, dtype=float)), axis=1)


def _rosenbrock(x) -> float:
    x = np.asarray(x, dtype=float)
    return float(np.sum(100.0 * (x[1:] - x[:-1] ** 2) ** 2
                        + (1.0 - x[:-1]) ** 2))


class _SlowObjective:
    """Picklable wrapper adding a fixed per-call delay (test pacing)."""

    def __init__(self, fn: Callable, delay_s: float):
        self._fn = fn
        self.delay_s = float(delay_s)

    def __call__(self, x) -> float:
        if self.delay_s > 0.0:
            time.sleep(self.delay_s)
        return self._fn(x)


@register_objective("bench.sphere")
def _build_sphere(params: dict) -> dict:
    dim = int(params.get("dim", 4))
    half_width = float(params.get("half_width", 5.0))
    delay_s = float(params.get("delay_s", 0.0))
    objective = _SlowObjective(_sphere, delay_s) if delay_s > 0 else _sphere
    return {
        "objective": objective,
        "objective_batch": None if delay_s > 0 else _sphere_batch,
        "lower": np.full(dim, -half_width),
        "upper": np.full(dim, half_width),
    }


@register_objective("bench.rosenbrock")
def _build_rosenbrock(params: dict) -> dict:
    dim = int(params.get("dim", 4))
    delay_s = float(params.get("delay_s", 0.0))
    objective = (_SlowObjective(_rosenbrock, delay_s) if delay_s > 0
                 else _rosenbrock)
    return {
        "objective": objective,
        "objective_batch": None,
        "lower": np.full(dim, -2.0),
        "upper": np.full(dim, 2.0),
    }


@register_objective("robust.optimize")
def _build_robust_optimize(params: dict) -> dict:
    """Yield-aware robust scalarization of the paper's LNA.

    Builds a :class:`repro.optimize.robust.RobustScalarObjective` —
    worst-case NF over a tolerance corner set plus a yield-shortfall
    penalty — against the reference device.  The evaluator compiles
    lazily inside whichever process leases the job (and inside each
    fleet worker via the picklable factory), and the corner set is a
    pure function of the params, so a lease takeover resumes
    bit-identical evaluations.
    """
    from repro.core.amplifier import DesignVariables
    from repro.optimize.robust import RobustScalarObjective

    objective = RobustScalarObjective(
        n_mc_trials=int(params.get("n_trials", 8)),
        seed=params.get("corner_seed", 0),
        yield_weight=float(params.get("yield_weight", 5.0)),
        n_band=int(params.get("n_band", 9)),
        n_guard=int(params.get("n_guard", 12)),
        solver=str(params.get("solver", "auto")),
        nf_ship_limit_db=float(params.get("nf_ship_limit_db", 0.8)),
        gt_ship_limit_db=float(params.get("gt_ship_limit_db", 13.0)),
    )
    dim = len(DesignVariables.NAMES)
    return {
        "objective": objective,
        "objective_batch": objective.batch,
        "lower": np.zeros(dim),
        "upper": np.ones(dim),
    }


@register_objective("lna.metric")
def _build_lna_metric(params: dict) -> dict:
    """The paper's LNA, optimizing one compiled figure of merit.

    Compiles the reference-device amplifier template inside the runner
    (and again inside each fleet worker via the picklable factory) —
    the same deterministic inputs yield the same stamp plan, so every
    evaluation is bit-identical to an in-client compile.
    """
    from dataclasses import fields as dc_fields

    from repro.core.amplifier import AmplifierTemplate, DesignVariables
    from repro.core.engine import CompiledMetricObjective
    from repro.experiments.common import reference_device

    metric = str(params.get("metric", "nf_max_db"))
    sign = float(params.get("sign", 1.0))
    template = AmplifierTemplate(reference_device().small_signal)
    factory = CompiledMetricObjective(template, metric=metric, sign=sign)
    objective, objective_batch = factory()
    dim = len(dc_fields(DesignVariables))
    return {
        "objective": objective,
        "objective_batch": objective_batch,
        "lower": np.zeros(dim),
        "upper": np.ones(dim),
    }
