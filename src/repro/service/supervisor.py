"""The supervised job service: runner slots, recovery, and drain.

:class:`JobService` is the process that makes the queue *move*.  It
owns:

* **Runner slots** — ``slots`` daemon threads, each claiming one job at
  a time from the durable queue and executing it through
  :class:`~repro.service.scheduler.JobRunner`.  Slots heartbeat their
  leases at every generation boundary; a slot that stalls long enough
  for its lease to expire loses the job to recovery and aborts with
  :class:`~repro.service.queue.LeaseLost` before touching shared state.
* **The recovery sweep** — a supervisor thread that periodically
  re-queues expired leases (crash takeover), reaps shared-memory
  segments whose owning process is dead (the fleet janitor — a
  SIGKILLed service cannot unlink its own ``/dev/shm`` segments, so the
  next service does it), and exports queue depths as gauges.
* **Graceful drain** — :meth:`stop` flips the drain flag; each slot
  finishes its current *generation*, releases the job back to pending
  with its checkpoint durable (attempt counter untouched), and exits.
  The service journal then records ``service_stop`` and its
  ``run_end`` trailer, so a drained service leaves no orphan run.

Every queue transition is journaled into the service's own run
directory (``runs/<service-id>/journal.jsonl``) — the service is a run
like any other, addressable by ``repro-obs summary`` and diffable
against a previous incarnation.  A service that is SIGKILLed leaves
that journal without a trailer; the *next* service recovers its jobs
via lease expiry, and ``repro-obs gc`` collects the dead service's run
directory once nothing references it.

Crash-recovery invariant (enforced by the chaos soak in
``tests/test_service.py``): kill the service at any instant, start a
fresh one on the same root, and every in-flight optimization resumes
from its last durable generation and finishes **bit-identical** to an
uninterrupted run — with zero leaked shm segments and zero orphaned
run directories left behind.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional

from repro.obs import metrics as _obs_metrics
from repro.obs.promexport import PromExporter
from repro.obs.runs import RunRegistry
from repro.optimize import fleet as _fleet
from repro.service.jobs import (JobRecord, JobSpec, TERMINAL_STATES,
                                job_id_of as _job_id)
from repro.service.queue import JobQueue, LeaseLost
from repro.service.scheduler import (
    DrainRequested,
    JobCancelled,
    JobDeadlineExceeded,
    JobRunner,
)

__all__ = ["JobService", "service_paths"]


def service_paths(root: str) -> Dict[str, str]:
    """The well-known directories of a service root."""
    root = str(root)
    return {
        "root": root,
        "queue": os.path.join(root, "queue"),
        "runs": os.path.join(root, "runs"),
    }


class JobService:
    """A fault-tolerant optimization job service over one root directory.

    Parameters
    ----------
    root:
        Service root; the durable queue lives in ``<root>/queue`` and
        every run directory (per-job and the service's own) in
        ``<root>/runs``.  Two services pointed at the same root share
        the queue safely — claims are atomic renames.
    slots:
        Concurrent runner threads.
    lease_s:
        Lease duration granted on claim and re-granted by each
        generation heartbeat.  The recovery sweep takes over any job
        whose lease is this stale — it bounds the takeover latency
        after a crash.
    poll_interval_s:
        Idle slot sleep between claim attempts.
    recovery_interval_s:
        Supervisor sweep period (lease recovery + shm janitor).
    max_pending:
        Admission-control ceiling forwarded to the queue.
    prom_textfile:
        Optional path: every supervisor sweep atomically rewrites this
        file in Prometheus textfile-collector format (queue depths,
        per-job generation progress, evaluator throughput).
    prom_port:
        Optional port for a live scrape endpoint (0 = ephemeral);
        served from :meth:`start` until :meth:`stop`.  The bound port
        is available as ``service.exporter.port``.
    """

    def __init__(self, root: str, slots: int = 2, lease_s: float = 30.0,
                 poll_interval_s: float = 0.05,
                 recovery_interval_s: float = 1.0,
                 max_pending: int = 256,
                 name: str = "service",
                 prom_textfile: Optional[str] = None,
                 prom_port: Optional[int] = None):
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        paths = service_paths(root)
        self.root = paths["root"]
        self.queue = JobQueue(paths["queue"], max_pending=max_pending)
        self.registry = RunRegistry(paths["runs"])
        self.slots = int(slots)
        self.lease_s = float(lease_s)
        self.poll_interval_s = float(poll_interval_s)
        self.recovery_interval_s = float(recovery_interval_s)
        self.name = str(name)
        self.service_run = None
        self.prom_textfile = prom_textfile
        self.prom_port = prom_port
        self.exporter: Optional[PromExporter] = None
        self._last_nfev_sweep: Optional[tuple] = None
        self._drain = threading.Event()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._started = False

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "JobService":
        """Open the service journal and launch the slot/supervisor threads."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._drain.clear()
        self._stop.clear()
        self.service_run = self.registry.create_run(name=self.name)
        journal = self.service_run.open_journal()
        journal.run_start(
            config={"slots": self.slots, "lease_s": self.lease_s,
                    "root": self.root},
            pid_role="service",
        )
        self.queue.journal = journal
        # Inherit the wreckage of any predecessor on this root before
        # taking new work: expired leases become claimable and a dead
        # service's shm segments are unlinked.
        self.queue.recover_expired()
        self._sweep_segments()
        if self.prom_textfile is not None or self.prom_port is not None:
            self.exporter = PromExporter(collectors=[self._prom_samples])
            if self.prom_port is not None:
                bound = self.exporter.serve(port=self.prom_port)
                self.queue._emit("prom_endpoint", port=bound)
        supervisor = threading.Thread(
            target=self._supervisor_loop, name=f"{self.name}-supervisor",
            daemon=True)
        supervisor.start()
        self._threads.append(supervisor)
        for slot in range(self.slots):
            thread = threading.Thread(
                target=self._slot_loop, args=(slot,),
                name=f"{self.name}-slot{slot}", daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain: checkpoint in-flight jobs, release, shut down.

        Idempotent.  Slots observe the drain flag at their next
        generation boundary, release their jobs back to pending (the
        checkpoint written at the previous boundary makes the release
        loss-free), and exit.  The service journal gets a
        ``service_stop`` event and its ``run_end`` trailer — a drained
        service is a *finished* run, not an orphan.
        """
        if not self._started:
            return
        self._drain.set()
        deadline = time.monotonic() + float(timeout)
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        self._stop.set()
        exporter, self.exporter = self.exporter, None
        if exporter is not None:
            if self.prom_textfile is not None:
                try:
                    exporter.write_textfile(self.prom_textfile)
                except OSError:
                    pass
            exporter.close()
        journal = self.queue.journal
        self.queue.journal = None
        self._sweep_segments()
        if journal is not None and not journal.closed:
            journal.append("service_stop", counts=self.queue.counts())
            journal.run_end(status="completed")
            journal.close()
        self._started = False
        self._threads = []

    def __enter__(self) -> "JobService":
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
        return False

    # -- client surface ---------------------------------------------------------
    def submit(self, spec: JobSpec, name: Optional[str] = None) -> JobRecord:
        """Admit a job into this service's queue (may raise QueueFull)."""
        return self.queue.submit(spec, name=name)

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll_s: float = 0.05) -> JobRecord:
        """Block until *job_id* reaches a terminal state.

        Accepts a job id or the :class:`JobRecord` that ``submit``
        returned.  Raises ``TimeoutError`` with the job's last observed
        state if the deadline passes first.
        """
        job_id = _job_id(job_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.queue.load(job_id)
            if record.state in TERMINAL_STATES:
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {record.state!r} after "
                    f"{timeout}s")
            time.sleep(poll_s)

    def cancel(self, job_id: str) -> str:
        return self.queue.cancel(_job_id(job_id))

    # -- slot loop ---------------------------------------------------------------
    def _slot_loop(self, slot: int) -> None:
        owner = f"{self.name}-{os.getpid()}-slot{slot}"
        runner = JobRunner(self.queue, self.registry, owner,
                           lease_s=self.lease_s, drain=self._drain.is_set)
        while not self._drain.is_set():
            try:
                record = self.queue.claim(owner, self.lease_s)
            except OSError:
                record = None
            if record is None:
                # Idle wait doubles as the drain poll.
                self._drain.wait(self.poll_interval_s)
                continue
            self._execute(runner, record, owner)

    def _execute(self, runner: JobRunner, record: JobRecord,
                 owner: str) -> None:
        """Run one claimed job and translate its outcome into the queue."""
        job_id = record.job_id
        try:
            summary = runner.run(record)
        except LeaseLost:
            # Someone recovered our lease while we ran: the new owner's
            # trajectory is authoritative; walk away without touching
            # any state (the control check fired before journaling).
            _obs_metrics.inc("service.lease_lost")
            return
        except DrainRequested:
            self._transition(self.queue.release, job_id, owner,
                             reason="drain")
            return
        except JobCancelled:
            self._transition(self.queue.fail, job_id, owner,
                             error="cancelled", retryable=False)
            return
        except JobDeadlineExceeded:
            self._transition(self.queue.fail, job_id, owner,
                             error="deadline", retryable=False)
            return
        except Exception as exc:  # noqa: BLE001 - job faults are data here
            self._transition(self.queue.fail, job_id, owner,
                             error=f"{type(exc).__name__}: {exc}",
                             retryable=True)
            return
        self._transition(self.queue.complete, job_id, owner,
                         result=summary)

    def _transition(self, method, job_id: str, owner: str, **kwargs) -> None:
        """Apply a queue transition, tolerating a concurrent takeover."""
        try:
            method(job_id, owner, **kwargs)
        except LeaseLost:
            _obs_metrics.inc("service.lease_lost")

    # -- supervisor loop -----------------------------------------------------------
    def _supervisor_loop(self) -> None:
        while not self._stop.wait(self.recovery_interval_s):
            try:
                self.queue.recover_expired()
                self._sweep_segments()
                registry = _obs_metrics.get_metrics()
                for state, depth in self.queue.counts().items():
                    registry.gauge(f"service.queue.{state}", depth)
                self._update_throughput(registry)
                if self.exporter is not None \
                        and self.prom_textfile is not None:
                    self.exporter.write_textfile(self.prom_textfile)
            except Exception:  # noqa: BLE001 - the sweep must never die
                _obs_metrics.inc("service.supervisor_errors")
            if self._drain.is_set():
                break

    def _update_throughput(self, registry) -> None:
        """Evaluator throughput from heartbeat nfev deltas.

        The per-job progress payloads the runners piggyback on lease
        renewals give a fleet-wide cumulative nfev; its delta between
        sweeps, over wall time, is the live evaluations/second gauge.
        A negative delta (job finished, lease retired) resets the
        baseline instead of publishing a bogus rate.
        """
        total_nfev = sum(
            int(progress.get("nfev", 0))
            for progress in self.queue.leased_progress().values()
        )
        now = time.monotonic()
        previous = self._last_nfev_sweep
        self._last_nfev_sweep = (now, total_nfev)
        if previous is None:
            return
        then, nfev_then = previous
        elapsed = now - then
        delta = total_nfev - nfev_then
        if elapsed > 0 and delta >= 0:
            registry.gauge("service.eval_per_s", delta / elapsed)

    def _prom_samples(self):
        """Collector: live queue depth + per-job progress gauges."""
        for state, depth in self.queue.counts().items():
            yield ("service_queue_depth", {"state": state}, float(depth))
        for job_id, progress in self.queue.leased_progress().items():
            labels = {"job": job_id}
            for key, metric in (("generation", "run_generation"),
                                ("nfev", "run_nfev"),
                                ("best", "run_best")):
                value = progress.get(key)
                if isinstance(value, (int, float)):
                    yield (metric, labels, float(value))

    def _sweep_segments(self) -> int:
        """Unlink fleet shm segments whose owning process is dead."""
        reaped = 0
        for segment in _fleet.stale_segments():
            if _fleet.unlink_segment(segment):
                reaped += 1
        if reaped:
            _obs_metrics.inc("service.segments_reaped", reaped)
            self.queue._emit("segments_reaped", n=reaped)
        return reaped
