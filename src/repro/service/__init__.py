"""Fault-tolerant optimization job service with lease-based recovery.

The layers, bottom to top:

* :mod:`repro.service.jobs` — the vocabulary: :class:`JobSpec` /
  :class:`JobRecord` and the named-objective registry that lets a
  restarted process reconstruct the problem a dead runner was solving.
* :mod:`repro.service.queue` — the durable on-disk queue
  (state-as-directory, atomic-rename claims, jittered retry backoff,
  lease expiry, torn-file quarantine).
* :mod:`repro.service.scheduler` — :class:`JobRunner`, which executes
  one leased job with per-generation lease heartbeats, cooperative
  cancellation, deadline enforcement, and checkpoint-per-generation
  durability (takeovers resume bit-identically).
* :mod:`repro.service.supervisor` — :class:`JobService`, the runner
  slots plus the recovery sweep (expired-lease takeover, dead-owner
  shm reaping) and graceful drain.
* :mod:`repro.service.api` — :class:`ServiceClient`, the
  submit / poll / fetch surface over a service root directory.
"""

from repro.service.api import (
    ServiceClient,
    job_result,
    job_status,
    submit_job,
)
from repro.service.jobs import (
    JOB_STATE_DONE,
    JOB_STATE_FAILED,
    JOB_STATE_LEASED,
    JOB_STATE_PENDING,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    build_objective,
    job_id_of,
    register_objective,
    registered_objectives,
)
from repro.service.queue import JobNotFound, JobQueue, LeaseLost, QueueFull
from repro.service.scheduler import (
    DrainRequested,
    JobCancelled,
    JobDeadlineExceeded,
    JobRunner,
    register_experiment,
)
from repro.service.supervisor import JobService, service_paths

__all__ = [
    "JOB_STATE_PENDING",
    "JOB_STATE_LEASED",
    "JOB_STATE_DONE",
    "JOB_STATE_FAILED",
    "TERMINAL_STATES",
    "JobSpec",
    "JobRecord",
    "job_id_of",
    "register_objective",
    "build_objective",
    "registered_objectives",
    "JobQueue",
    "QueueFull",
    "LeaseLost",
    "JobNotFound",
    "JobRunner",
    "JobCancelled",
    "JobDeadlineExceeded",
    "DrainRequested",
    "register_experiment",
    "JobService",
    "service_paths",
    "ServiceClient",
    "submit_job",
    "job_status",
    "job_result",
]
