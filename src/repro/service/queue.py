"""Durable on-disk job queue with lease-based ownership.

The queue is a directory tree in which **a job's state is the
directory its record file lives in**::

    <root>/
        pending/<job_id>.json   # waiting (or backing off before retry)
        leased/<job_id>.json    # owned by a runner; lease stamped inside
        done/<job_id>.json      # terminal: finished, result summary inside
        failed/<job_id>.json    # terminal: error inside
        cancel/<job_id>         # cooperative-cancellation marker

Every transition is one atomic ``os.replace`` of a freshly written
record (temp file + rename, the same discipline as
:class:`repro.optimize.checkpoint.FileCheckpointStore`), so a crash at
any instant leaves each job in exactly one well-defined state:

* **Claiming is race-free without locks.**  A claimer renames
  ``pending/X`` to ``leased/X``; of N concurrent claimers exactly one
  rename succeeds and the losers get ``FileNotFoundError`` and move on.
* **A crash between rename and lease stamp is safe.**  The leased file
  still holds the old record (no lease inside), which
  :meth:`JobQueue.recover_expired` treats as already expired — the job
  is recovered on the supervisor's next sweep.
* **Torn files are quarantined, never fatal.**  A record that fails to
  parse is renamed to ``<file>.corrupt`` and reported; the rest of the
  queue keeps flowing (a single corrupted sector must not stop the
  service).

Retries observe the shared capped-exponential backoff *with
deterministic seeded jitter* (:func:`repro.optimize.faults.backoff_delay`
keyed by job id), so a burst of jobs failing on the same transient
cause does not retry in a synchronized wave.

All state transitions are journaled (``job_submitted``, ``job_leased``,
``job_retried``, ``job_orphan_recovered``, ``job_done``, …) through the
journal the owning service installs — or the ambient
:func:`repro.obs.journal.emit` hook when used standalone — and counted
in the metrics registry under ``service.*``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs import journal as _obs_journal
from repro.obs import metrics as _obs_metrics
from repro.optimize.faults import (
    BACKOFF_BASE,
    BACKOFF_CAP,
    backoff_delay,
    retry_transient,
)
from repro.service.jobs import (
    JOB_STATE_DONE,
    JOB_STATE_FAILED,
    JOB_STATE_LEASED,
    JOB_STATE_PENDING,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    new_job_id,
)

__all__ = [
    "QueueFull",
    "LeaseLost",
    "JobNotFound",
    "JobQueue",
    "live_job_ids",
]

_STATE_DIRS = (JOB_STATE_PENDING, JOB_STATE_LEASED, JOB_STATE_DONE,
               JOB_STATE_FAILED)
_CANCEL_DIR = "cancel"
#: Lookup order for :meth:`JobQueue.load` — terminal states win, so a
#: crash that left a stale ``leased/`` copy behind a terminal record
#: never masks the outcome.
_LOOKUP_ORDER = (JOB_STATE_DONE, JOB_STATE_FAILED, JOB_STATE_LEASED,
                 JOB_STATE_PENDING)


class QueueFull(RuntimeError):
    """Admission control rejected a submit (backpressure)."""


class LeaseLost(RuntimeError):
    """The caller no longer owns the job it tried to act on.

    Raised when the lease file is gone (job recovered, completed, or
    re-queued by someone else) or stamped with a different owner.  A
    runner receiving this must abandon the job *without* touching its
    state — the new owner's trajectory is authoritative.
    """


class JobNotFound(KeyError):
    """No record of the job in any state directory."""


class JobQueue:
    """The durable queue; see the module docstring for the layout.

    Parameters
    ----------
    root:
        Queue directory (created on first use).
    max_pending:
        Admission-control ceiling: :meth:`submit` raises
        :class:`QueueFull` while this many jobs are already pending.
        The count-then-write window makes the ceiling approximate under
        concurrent submitters — it bounds the backlog, it is not a
        semaphore.
    retry_backoff_base, retry_backoff_cap:
        Failed-job retry backoff schedule (seconds), jittered
        deterministically by job id.
    retry_attempts:
        Transient-``OSError`` retries per file read/write.
    """

    def __init__(self, root: str, max_pending: int = 256,
                 retry_backoff_base: float = BACKOFF_BASE,
                 retry_backoff_cap: float = BACKOFF_CAP,
                 retry_attempts: int = 3):
        self.root = str(root)
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = int(max_pending)
        self.retry_backoff_base = float(retry_backoff_base)
        self.retry_backoff_cap = float(retry_backoff_cap)
        self.retry_attempts = int(retry_attempts)
        #: Journal receiving transition events; ``None`` falls back to
        #: the ambient :func:`repro.obs.journal.emit` hook.
        self.journal = None
        self.n_quarantined = 0
        for name in _STATE_DIRS + (_CANCEL_DIR,):
            os.makedirs(os.path.join(self.root, name), exist_ok=True)

    # -- paths / io ----------------------------------------------------------
    def _path(self, state: str, job_id: str) -> str:
        return os.path.join(self.root, state, f"{job_id}.json")

    def _cancel_path(self, job_id: str) -> str:
        return os.path.join(self.root, _CANCEL_DIR, job_id)

    def _write_record(self, state: str, record: JobRecord) -> str:
        """Atomically materialize *record* in *state*'s directory."""
        target = self._path(state, record.job_id)
        blob = json.dumps(record.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

        def write():
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".job.tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, target)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

        retry_transient(write, attempts=self.retry_attempts, no_retry=(),
                        jitter_key=record.job_id)
        return target

    def _read_record(self, path: str) -> Optional[JobRecord]:
        """Parse one record; quarantine (never raise on) torn files."""
        try:
            data = retry_transient(
                self._read_bytes, path, attempts=self.retry_attempts)
        except FileNotFoundError:
            return None
        try:
            return JobRecord.from_dict(json.loads(data.decode("utf-8")))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            self._quarantine(path, exc)
            return None

    @staticmethod
    def _read_bytes(path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def _quarantine(self, path: str, reason) -> None:
        corrupt = path + ".corrupt"
        try:
            os.replace(path, corrupt)
        except OSError:
            corrupt = path
        self.n_quarantined += 1
        _obs_metrics.inc("service.jobs_quarantined")
        self._emit("job_quarantined", path=str(path),
                   reason=str(reason)[:200])

    def _emit(self, event: str, **fields) -> None:
        """Journal a transition; a broken recorder never stops the queue."""
        _obs_metrics.inc(f"service.{event}")
        try:
            if self.journal is not None:
                self.journal.append(event, **fields)
            else:
                _obs_journal.emit(event, **fields)
        except Exception:  # noqa: BLE001 - flight recorder must not crash us
            pass

    def _list_ids(self, state: str) -> List[str]:
        try:
            entries = os.listdir(os.path.join(self.root, state))
        except FileNotFoundError:
            return []
        return sorted(entry[:-5] for entry in entries
                      if entry.endswith(".json"))

    # -- submission ----------------------------------------------------------
    def submit(self, spec: JobSpec, name: Optional[str] = None,
               job_id: Optional[str] = None,
               now: Optional[float] = None) -> JobRecord:
        """Admit one job; raises :class:`QueueFull` at the backlog cap."""
        now = time.time() if now is None else float(now)
        backlog = len(self._list_ids(JOB_STATE_PENDING))
        if backlog >= self.max_pending:
            self._emit("job_rejected", reason="queue_full",
                       backlog=backlog, max_pending=self.max_pending)
            raise QueueFull(
                f"queue {self.root!r} is full "
                f"({backlog}/{self.max_pending} pending)")
        record = JobRecord(
            job_id=job_id or new_job_id(name or spec.kind),
            spec=spec, state=JOB_STATE_PENDING, submitted_at=now)
        self._write_record(JOB_STATE_PENDING, record)
        self._emit("job_submitted", job_id=record.job_id, kind=spec.kind,
                   algorithm=spec.algorithm if spec.kind == "optimize"
                   else None, experiment=spec.experiment)
        return record

    # -- claiming / leasing ---------------------------------------------------
    def claim(self, owner: str, lease_s: float,
              now: Optional[float] = None) -> Optional[JobRecord]:
        """Lease the oldest eligible pending job, or ``None``.

        FIFO by job id (ids embed the submission timestamp); jobs whose
        retry backoff gate (``not_before``) is still in the future are
        skipped.  The pending→leased rename is the atomic claim: of
        concurrent claimers exactly one wins each job.
        """
        now = time.time() if now is None else float(now)
        for job_id in self._list_ids(JOB_STATE_PENDING):
            pending_path = self._path(JOB_STATE_PENDING, job_id)
            record = self._read_record(pending_path)
            if record is None or record.not_before > now:
                continue
            leased_path = self._path(JOB_STATE_LEASED, job_id)
            try:
                os.replace(pending_path, leased_path)
            except FileNotFoundError:
                continue  # another slot won the rename
            record.state = JOB_STATE_LEASED
            record.lease = {"owner": str(owner), "leased_at": now,
                            "expires_at": now + float(lease_s)}
            if record.started_at is None:
                record.started_at = now
            self._write_record(JOB_STATE_LEASED, record)
            self._emit("job_leased", job_id=job_id, owner=str(owner),
                       attempt=record.attempt, takeovers=record.takeovers,
                       expires_at=record.lease["expires_at"])
            return record
        return None

    def _owned(self, job_id: str, owner: str) -> JobRecord:
        """The leased record if *owner* still holds it; else LeaseLost."""
        record = self._read_record(self._path(JOB_STATE_LEASED, job_id))
        if record is None or record.lease is None \
                or record.lease.get("owner") != str(owner):
            raise LeaseLost(
                f"{owner!r} no longer holds the lease on {job_id!r}")
        return record

    def renew(self, job_id: str, owner: str, lease_s: float,
              now: Optional[float] = None,
              progress: Optional[dict] = None) -> JobRecord:
        """Extend the lease (the runner's heartbeat).

        *progress* — a small JSON-able dict (generation, nfev, best) —
        rides inside the lease record, so live per-job telemetry costs
        nothing beyond the heartbeat write the runner already pays.
        It is visible through :meth:`leased_progress` until the lease
        retires; no ``JobRecord`` schema change is involved.
        """
        now = time.time() if now is None else float(now)
        record = self._owned(job_id, owner)
        record.lease["expires_at"] = now + float(lease_s)
        if progress is not None:
            record.lease["progress"] = dict(progress)
        self._write_record(JOB_STATE_LEASED, record)
        _obs_metrics.inc("service.lease_renewals")
        return record

    def leased_progress(self) -> Dict[str, dict]:
        """Latest heartbeat progress of every currently leased job."""
        progress: Dict[str, dict] = {}
        for job_id in self._list_ids(JOB_STATE_LEASED):
            record = self._read_record(self._path(JOB_STATE_LEASED, job_id))
            if record is None or record.lease is None:
                continue
            payload = record.lease.get("progress")
            if isinstance(payload, dict):
                progress[job_id] = dict(payload)
        return progress

    # -- terminal / requeue transitions ---------------------------------------
    def _finish(self, record: JobRecord, state: str) -> None:
        """Write the terminal record, then retire the leased copy."""
        record.lease = None
        self._write_record(state, record)
        try:
            os.unlink(self._path(JOB_STATE_LEASED, record.job_id))
        except OSError:
            pass
        self._clear_cancel(record.job_id)

    def complete(self, job_id: str, owner: str,
                 result: Optional[dict] = None,
                 now: Optional[float] = None) -> JobRecord:
        """Terminal success: leased → done with a small result summary."""
        now = time.time() if now is None else float(now)
        record = self._owned(job_id, owner)
        record.state = JOB_STATE_DONE
        record.result = dict(result or {})
        record.finished_at = now
        self._finish(record, JOB_STATE_DONE)
        self._emit("job_done", job_id=job_id, owner=str(owner),
                   attempt=record.attempt, takeovers=record.takeovers,
                   wall_time_s=(now - record.submitted_at))
        return record

    def fail(self, job_id: str, owner: str, error: str,
             retryable: bool = True,
             now: Optional[float] = None) -> JobRecord:
        """Failure: retry with jittered backoff, or fail terminally.

        A retryable failure within the spec's ``max_retries`` moves the
        job back to pending behind a ``not_before`` gate computed by
        :func:`repro.optimize.faults.backoff_delay` keyed on the job id
        — deterministic for the job, de-synchronized across jobs.
        """
        now = time.time() if now is None else float(now)
        record = self._owned(job_id, owner)
        record.attempt += 1
        record.error = str(error)[:500]
        if retryable and record.attempt <= record.spec.max_retries:
            delay = backoff_delay(
                record.attempt - 1,
                self.retry_backoff_base, self.retry_backoff_cap,
                key=job_id)
            record.state = JOB_STATE_PENDING
            record.not_before = now + delay
            record.lease = None
            self._write_record(JOB_STATE_PENDING, record)
            try:
                os.unlink(self._path(JOB_STATE_LEASED, job_id))
            except OSError:
                pass
            self._emit("job_retried", job_id=job_id, owner=str(owner),
                       attempt=record.attempt, backoff_s=delay,
                       error=record.error)
            return record
        record.state = JOB_STATE_FAILED
        record.finished_at = now
        self._finish(record, JOB_STATE_FAILED)
        self._emit("job_failed", job_id=job_id, owner=str(owner),
                   attempt=record.attempt, error=record.error)
        return record

    def release(self, job_id: str, owner: str, reason: str = "drain",
                now: Optional[float] = None) -> JobRecord:
        """Hand a leased job back to pending intact (graceful drain).

        Neither the attempt counter nor the takeover counter moves —
        the job simply waits for the next service, resuming from its
        checkpoint as if never claimed.
        """
        record = self._owned(job_id, owner)
        record.state = JOB_STATE_PENDING
        record.lease = None
        record.not_before = 0.0
        self._write_record(JOB_STATE_PENDING, record)
        try:
            os.unlink(self._path(JOB_STATE_LEASED, job_id))
        except OSError:
            pass
        self._emit("job_released", job_id=job_id, owner=str(owner),
                   reason=reason)
        return record

    # -- crash recovery --------------------------------------------------------
    def recover_expired(self, now: Optional[float] = None) -> List[str]:
        """Re-queue every leased job whose lease expired (or never stuck).

        The supervisor's sweep.  A leased file shadowed by a terminal
        record (crash between terminal write and leased unlink) is
        simply retired.  Recovered jobs keep their checkpoint — the
        next claimer resumes them bit-identically — and count a
        takeover, not a retry.
        """
        now = time.time() if now is None else float(now)
        recovered: List[str] = []
        for job_id in self._list_ids(JOB_STATE_LEASED):
            leased_path = self._path(JOB_STATE_LEASED, job_id)
            terminal = next(
                (s for s in TERMINAL_STATES
                 if os.path.exists(self._path(s, job_id))), None)
            if terminal is not None:
                try:
                    os.unlink(leased_path)
                except OSError:
                    pass
                continue
            record = self._read_record(leased_path)
            if record is None:
                continue  # torn lease file: quarantined above
            expired = (record.lease is None
                       or float(record.lease.get("expires_at", 0.0)) <= now)
            if not expired:
                continue
            previous_owner = (record.lease or {}).get("owner")
            record.state = JOB_STATE_PENDING
            record.lease = None
            record.not_before = 0.0
            record.takeovers += 1
            self._write_record(JOB_STATE_PENDING, record)
            try:
                os.unlink(leased_path)
            except OSError:
                pass
            self._emit("job_orphan_recovered", job_id=job_id,
                       previous_owner=previous_owner,
                       takeovers=record.takeovers)
            recovered.append(job_id)
        return recovered

    # -- cancellation -----------------------------------------------------------
    def cancel(self, job_id: str) -> str:
        """Request cancellation; returns the job's state at request time.

        A still-pending job fails immediately; a leased job gets a
        marker its runner observes at the next generation boundary
        (cooperative cancellation — no state is torn mid-write).
        """
        pending_path = self._path(JOB_STATE_PENDING, job_id)
        record = self._read_record(pending_path)
        if record is not None:
            try:
                os.unlink(pending_path)
            except FileNotFoundError:
                record = None  # claimed in the window; fall through
            if record is not None:
                record.state = JOB_STATE_FAILED
                record.error = "cancelled"
                record.finished_at = time.time()
                record.lease = None
                self._write_record(JOB_STATE_FAILED, record)
                self._emit("job_cancelled", job_id=job_id, was="pending")
                return JOB_STATE_FAILED
        state = self.state_of(job_id)  # raises JobNotFound if unknown
        if state in TERMINAL_STATES:
            return state
        with open(self._cancel_path(job_id), "w", encoding="utf-8") as f:
            f.write(str(time.time()))
        self._emit("job_cancel_requested", job_id=job_id, was=state)
        return state

    def cancel_requested(self, job_id: str) -> bool:
        return os.path.exists(self._cancel_path(job_id))

    def _clear_cancel(self, job_id: str) -> None:
        try:
            os.unlink(self._cancel_path(job_id))
        except OSError:
            pass

    # -- inspection --------------------------------------------------------------
    def load(self, job_id: str) -> JobRecord:
        """The job's current record; terminal states take precedence."""
        for state in _LOOKUP_ORDER:
            record = self._read_record(self._path(state, job_id))
            if record is not None:
                return record
        raise JobNotFound(job_id)

    def state_of(self, job_id: str) -> str:
        return self.load(job_id).state

    def counts(self) -> Dict[str, int]:
        """Backlog by state (the supervisor exports these as gauges)."""
        return {state: len(self._list_ids(state)) for state in _STATE_DIRS}

    def list_jobs(self, state: Optional[str] = None
                  ) -> List[Tuple[str, str]]:
        """``(job_id, state)`` pairs, optionally filtered to one state."""
        states: Iterable[str] = (state,) if state else _STATE_DIRS
        return [(job_id, s) for s in states for job_id in self._list_ids(s)]


def live_job_ids(service_root: str) -> List[str]:
    """Job ids that still own their run directory (pending or leased).

    Used by ``repro-obs gc`` to protect resumable jobs' run dirs — a
    released or orphaned job has no ``run_end`` trailer *by design*
    (its checkpoint must survive for takeover), so the orphan scan must
    not collect it.  Reads the queue layout directly; tolerant of a
    root that is not (yet) a queue.
    """
    queue_root = os.path.join(str(service_root), "queue")
    ids: List[str] = []
    for state in (JOB_STATE_PENDING, JOB_STATE_LEASED):
        try:
            entries = os.listdir(os.path.join(queue_root, state))
        except OSError:
            continue
        ids.extend(entry[:-5] for entry in entries
                   if entry.endswith(".json"))
    return sorted(set(ids))
