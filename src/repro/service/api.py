"""Client surface of the job service: submit → poll → fetch result.

A client never talks to a :class:`~repro.service.supervisor.JobService`
object directly — the durable queue *is* the protocol.
:class:`ServiceClient` wraps a service root directory and works whether
or not a service process is currently alive on it: jobs submitted while
the service is down are simply claimed when one starts (that property
is what the chaos soak leans on — submit, kill the service, start a
fresh one, and the job finishes as if nothing happened).

Quickstart::

    from repro.service import JobSpec, JobService, ServiceClient

    client = ServiceClient("state/svc")
    job = client.submit(JobSpec(objective="bench.sphere",
                                budget={"population_size": 16,
                                        "max_iterations": 40},
                                seed=7))

    with JobService("state/svc", slots=2):     # any process, any time
        record = client.wait(job.job_id, timeout=60.0)

    print(record.state, record.result)         # done {...summary...}
    payload = client.result(job.job_id)        # full result.json
    print(payload["result"]["fun"])
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.runs import RunRegistry
from repro.service.jobs import (JobRecord, JobSpec, TERMINAL_STATES,
                                job_id_of as _job_id)
from repro.service.queue import JobQueue
from repro.service.scheduler import RESULT_NAME

__all__ = [
    "ServiceClient",
    "submit_job",
    "job_status",
    "job_result",
    "submit_experiment",
]


class ServiceClient:
    """Submit to and inspect a service root (live service optional).

    Every ``job_id`` argument also accepts the :class:`JobRecord`
    returned by :meth:`submit`.
    """

    def __init__(self, root: str, max_pending: int = 256):
        from repro.service.supervisor import service_paths
        paths = service_paths(root)
        self.root = paths["root"]
        self.queue = JobQueue(paths["queue"], max_pending=max_pending)
        self.registry = RunRegistry(paths["runs"])

    # -- submit / cancel -------------------------------------------------------
    def submit(self, spec: JobSpec, name: Optional[str] = None) -> JobRecord:
        """Admit one job; raises :class:`~repro.service.queue.QueueFull`."""
        return self.queue.submit(spec, name=name)

    def cancel(self, job_id: str) -> str:
        return self.queue.cancel(_job_id(job_id))

    # -- poll -------------------------------------------------------------------
    def status(self, job_id: str) -> JobRecord:
        return self.queue.load(_job_id(job_id))

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll_s: float = 0.05) -> JobRecord:
        """Block until terminal; ``TimeoutError`` past *timeout*."""
        job_id = _job_id(job_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.queue.load(job_id)
            if record.state in TERMINAL_STATES:
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {record.state!r} after "
                    f"{timeout}s")
            time.sleep(poll_s)

    def jobs(self, state: Optional[str] = None) -> List[Tuple[str, str]]:
        return self.queue.list_jobs(state)

    def counts(self) -> Dict[str, int]:
        return self.queue.counts()

    # -- fetch --------------------------------------------------------------------
    def run_dir(self, job_id: str) -> str:
        return os.path.join(self.registry.root, _job_id(job_id))

    def result(self, job_id: str) -> dict:
        """The job's full ``result.json`` payload.

        ``FileNotFoundError`` while the job is still running;
        ``RuntimeError`` naming the recorded error if it failed.
        """
        job_id = _job_id(job_id)
        record = self.queue.load(job_id)
        if record.state == "failed":
            raise RuntimeError(
                f"job {job_id!r} failed: {record.error or 'unknown error'}")
        path = os.path.join(self.run_dir(job_id), RESULT_NAME)
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)


def _as_submitter(service):
    """Normalize a root path / client / service to something with submit."""
    if isinstance(service, (str, os.PathLike)):
        return ServiceClient(service)
    if hasattr(service, "submit"):
        return service
    raise TypeError(
        f"expected a service root path, ServiceClient, or JobService; "
        f"got {type(service).__name__}")


def submit_experiment(service, experiment: str,
                      experiment_kwargs: Optional[dict] = None,
                      name: Optional[str] = None,
                      deadline_s: Optional[float] = None,
                      max_retries: int = 1) -> JobRecord:
    """Package an experiment driver run as a supervised service job.

    The shared backend of the drivers' ``submit()`` entry points
    (:func:`repro.experiments.e5_optimizer_comparison.submit` etc.):
    *service* may be a service root path, a :class:`ServiceClient`, or
    a live :class:`~repro.service.supervisor.JobService`.  Experiment
    jobs are coarse-grained — a retry restarts the driver from scratch
    — so the default retry budget is smaller than for checkpointed
    optimize jobs.
    """
    spec = JobSpec(
        kind="experiment",
        experiment=str(experiment),
        experiment_kwargs=dict(experiment_kwargs or {}),
        deadline_s=deadline_s,
        max_retries=max_retries,
    )
    return _as_submitter(service).submit(spec, name=name or experiment)


# -- one-shot conveniences ---------------------------------------------------

def submit_job(root: str, spec: JobSpec,
               name: Optional[str] = None) -> JobRecord:
    return ServiceClient(root).submit(spec, name=name)


def job_status(root: str, job_id: str) -> JobRecord:
    return ServiceClient(root).status(job_id)


def job_result(root: str, job_id: str) -> dict:
    return ServiceClient(root).result(job_id)
