"""Guard-mode resolution: ``REPRO_GUARDS=strict|warn|off``.

The mode is read from the environment once at import and can be
changed at runtime with :func:`set_mode` or scoped with the
:func:`guard_mode` context manager (used heavily by the test suite to
exercise both strict and warn behaviour in one process).
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager

__all__ = [
    "MODE_STRICT",
    "MODE_WARN",
    "MODE_OFF",
    "get_mode",
    "set_mode",
    "guard_mode",
    "enabled",
]

MODE_STRICT = "strict"
MODE_WARN = "warn"
MODE_OFF = "off"
_VALID_MODES = (MODE_STRICT, MODE_WARN, MODE_OFF)

_ENV_VAR = "REPRO_GUARDS"


def _mode_from_env() -> str:
    raw = os.environ.get(_ENV_VAR, MODE_WARN).strip().lower()
    if raw in _VALID_MODES:
        return raw
    warnings.warn(
        f"{_ENV_VAR}={raw!r} is not one of {_VALID_MODES}; "
        f"falling back to {MODE_WARN!r}",
        stacklevel=2,
    )
    return MODE_WARN


_mode = _mode_from_env()


def get_mode() -> str:
    """The active guard mode (``strict``, ``warn``, or ``off``)."""
    return _mode


def set_mode(mode: str) -> None:
    """Set the guard mode for the whole process."""
    if mode not in _VALID_MODES:
        raise ValueError(
            f"guard mode must be one of {_VALID_MODES}, got {mode!r}"
        )
    global _mode
    _mode = mode


@contextmanager
def guard_mode(mode: str):
    """Temporarily run with *mode* (restores the previous mode on exit)."""
    previous = get_mode()
    set_mode(mode)
    try:
        yield
    finally:
        set_mode(previous)


def enabled() -> bool:
    """Whether any checking happens at all (mode is not ``off``)."""
    return _mode != MODE_OFF
