"""The invariant contracts enforced at the pipeline's trust boundaries.

Each ``check_*`` function tests one physical invariant and reports
violations through :func:`report_violation`, which implements the
strict/warn/off policy of :mod:`repro.guards.modes`:

* **passivity** — a passive N-port cannot create power:
  ``eigvals(I − SᴴS) ≥ −tol`` at every frequency;
* **reciprocity** — passive networks without gyrators or active
  devices satisfy ``S = Sᵀ``;
* **monotone frequency grids** — positive, finite, strictly
  increasing (``FrequencyGrid`` already enforces this at
  construction; the check exists for raw arrays crossing a boundary);
* **noise consistency** — ``rn ≥ 0``, ``Fmin ≥ 1`` (NFmin ≥ 0 dB),
  ``|Γ_opt| < 1``, and noise-correlation matrices Hermitian positive
  semidefinite;
* **Rollett-stability sanity** — the K/|Δ| and Edwards–Sinsky μ tests
  are equivalent characterizations of unconditional stability; a
  disagreement means the S-data (or the stability code) is broken.

All checks are read-only: enabling them can never change a numerical
result, only raise/warn/count — the bit-for-bit guarantee the batched
engine and benchmark suite rely on.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from repro.guards.modes import MODE_STRICT, enabled, get_mode
from repro.obs import journal as _obs_journal
from repro.obs import metrics as _obs_metrics
from repro.rf.stability import determinant, mu_source, rollett_k

__all__ = [
    "ContractViolation",
    "GuardWarning",
    "report_violation",
    "check_finite",
    "check_frequency_grid",
    "check_passivity",
    "check_reciprocity",
    "check_noise_correlation",
    "check_noise_parameters",
    "check_stability_sanity",
    "check_passive_network",
    "check_optimization_result",
    "check_pareto_front",
    "check_yield_fraction",
    "noise_figure_violation_mask",
]

#: Default slack for contracts evaluated on solver output: double
#: precision MNA solves of well-scaled networks keep passivity /
#: reciprocity residuals far below this.
DEFAULT_TOL = 1e-8


class ContractViolation(ValueError):
    """A physical-invariant contract failed in strict mode.

    Subclasses ``ValueError`` so the optimizer fault-absorption
    machinery (:data:`repro.optimize.faults.FAILURE_EXCEPTIONS`)
    classifies an escaped violation as a candidate failure rather than
    a programming error.
    """

    def __init__(self, contract: str, message: str):
        super().__init__(f"[{contract}] {message}")
        self.contract = contract


class GuardWarning(UserWarning):
    """Warn-mode report of a violated physical-invariant contract."""


def report_violation(contract: str, message: str) -> None:
    """Report one violated contract according to the active mode.

    ``strict`` raises :class:`ContractViolation`; ``warn`` emits a
    :class:`GuardWarning` and increments the ``guards.violations``
    metric (plus a per-contract counter); ``off`` is a no-op.
    """
    if not enabled():
        return
    _obs_metrics.inc("guards.violations")
    _obs_metrics.inc(f"guards.violations.{contract}")
    _obs_journal.emit("guard_violation", contract=contract,
                      message=str(message)[:200],
                      mode=get_mode())
    if get_mode() == MODE_STRICT:
        raise ContractViolation(contract, message)
    warnings.warn(f"[{contract}] {message}", GuardWarning, stacklevel=3)


# ----------------------------------------------------------------------
# elementary checks
# ----------------------------------------------------------------------

def check_finite(values, name: str, contract: str = "finite") -> None:
    """Every entry of *values* must be finite."""
    if not enabled():
        return
    arr = np.asarray(values)
    if not np.all(np.isfinite(arr)):
        n_bad = int(np.sum(~np.isfinite(arr)))
        report_violation(
            contract,
            f"{name}: {n_bad} of {arr.size} entries are non-finite",
        )


def check_frequency_grid(f_hz, name: str) -> None:
    """Frequencies must be finite, positive, and strictly increasing."""
    if not enabled():
        return
    f = np.asarray(f_hz, dtype=float).ravel()
    if not np.all(np.isfinite(f)):
        report_violation("frequency_grid", f"{name}: non-finite frequencies")
        return
    if f.size and np.min(f) <= 0:
        report_violation(
            "frequency_grid",
            f"{name}: frequencies must be positive, min is {np.min(f):g} Hz",
        )
        return
    if f.size > 1 and np.any(np.diff(f) <= 0):
        report_violation(
            "frequency_grid",
            f"{name}: frequencies must be strictly increasing",
        )


def check_passivity(s, name: str, tol: float = DEFAULT_TOL) -> float:
    """``eigvals(I − SᴴS) ≥ −tol``: a passive network cannot add power.

    Returns the worst (most negative) eigenvalue found, which is also
    handy for diagnostics; ``0.0`` when guards are off.
    """
    if not enabled():
        return 0.0
    s = np.asarray(s, dtype=complex)
    if not np.all(np.isfinite(s)):
        report_violation("passivity", f"{name}: non-finite S-parameters")
        return -np.inf
    s_h = np.conjugate(np.swapaxes(s, -1, -2))
    gram = np.eye(s.shape[-1]) - s_h @ s
    eigs = np.linalg.eigvalsh(gram)
    worst = float(np.min(eigs))
    if worst < -tol:
        report_violation(
            "passivity",
            f"{name}: min eig(I - S^H S) = {worst:.3e} < -{tol:g} "
            f"(the network creates power)",
        )
    return worst


def check_reciprocity(s, name: str, tol: float = DEFAULT_TOL) -> float:
    """``S = Sᵀ`` for passive networks without gyrators/active devices.

    Returns the worst asymmetry ``max|S - Sᵀ|`` (relative to the
    larger of 1 and ``max|S|``).
    """
    if not enabled():
        return 0.0
    s = np.asarray(s, dtype=complex)
    asym = np.abs(s - np.swapaxes(s, -1, -2))
    scale = max(1.0, float(np.max(np.abs(s))) if s.size else 1.0)
    worst = float(np.max(asym)) / scale if s.size else 0.0
    if not np.isfinite(worst) or worst > tol:
        report_violation(
            "reciprocity",
            f"{name}: max |S - S^T| = {worst:.3e} > {tol:g} "
            f"(passive network must be reciprocal)",
        )
    return worst


def check_noise_correlation(cy, name: str, tol: float = DEFAULT_TOL) -> None:
    """Noise-correlation matrices must be Hermitian positive semidefinite."""
    if not enabled():
        return
    cy = np.asarray(cy, dtype=complex)
    if not np.all(np.isfinite(cy)):
        report_violation(
            "noise_consistency", f"{name}: non-finite noise correlation"
        )
        return
    cy_h = np.conjugate(np.swapaxes(cy, -1, -2))
    scale = max(float(np.max(np.abs(cy))) if cy.size else 0.0, 1e-300)
    herm_err = float(np.max(np.abs(cy - cy_h))) / scale if cy.size else 0.0
    if herm_err > tol:
        report_violation(
            "noise_consistency",
            f"{name}: correlation matrix is not Hermitian "
            f"(relative asymmetry {herm_err:.3e})",
        )
        return
    eigs = np.linalg.eigvalsh(0.5 * (cy + cy_h))
    worst = float(np.min(eigs)) / scale
    if worst < -tol:
        report_violation(
            "noise_consistency",
            f"{name}: correlation matrix has negative eigenvalue "
            f"(relative {worst:.3e}) — negative noise power",
        )


def check_noise_parameters(fmin, rn, gamma_opt, name: str,
                           tol: float = DEFAULT_TOL) -> None:
    """Consistency of a noise-parameter set.

    ``rn ≥ 0``, ``Fmin ≥ 1`` (NFmin ≥ 0 dB), ``|Γ_opt| < 1`` (the
    optimum source must be realizable with a passive termination), and
    everything finite.
    """
    if not enabled():
        return
    fmin = np.asarray(fmin, dtype=float)
    rn = np.asarray(rn, dtype=float)
    gamma = np.asarray(gamma_opt, dtype=complex)
    if not (np.all(np.isfinite(fmin)) and np.all(np.isfinite(rn))
            and np.all(np.isfinite(gamma))):
        report_violation(
            "noise_consistency", f"{name}: non-finite noise parameters"
        )
        return
    if rn.size and np.min(rn) < -tol:
        report_violation(
            "noise_consistency",
            f"{name}: rn must be >= 0, min is {np.min(rn):.3e} ohm",
        )
    if fmin.size and np.min(fmin) < 1.0 - tol:
        report_violation(
            "noise_consistency",
            f"{name}: Fmin must be >= 1 (NFmin >= 0 dB), "
            f"min is {np.min(fmin):.6f}",
        )
    mag = np.abs(gamma)
    if mag.size and np.max(mag) >= 1.0:
        report_violation(
            "noise_consistency",
            f"{name}: |gamma_opt| must be < 1, max is {np.max(mag):.6f}",
        )


def check_stability_sanity(s, name: str, margin: float = 1e-6) -> None:
    """Cross-check the two unconditional-stability tests on 2-port data.

    Rollett's ``K > 1 and |Δ| < 1`` and Edwards–Sinsky's ``μ > 1`` are
    equivalent; where both sit clear of their thresholds (by *margin*)
    their verdicts must agree.  Non-finite stability figures are also
    flagged.
    """
    if not enabled():
        return
    s = np.asarray(s, dtype=complex)
    k = np.asarray(rollett_k(s), dtype=float)
    mu = np.asarray(mu_source(s), dtype=float)
    delta = np.abs(np.asarray(determinant(s), dtype=complex))
    if not (np.all(np.isfinite(k)) and np.all(np.isfinite(mu))
            and np.all(np.isfinite(delta))):
        report_violation(
            "stability_sanity", f"{name}: non-finite stability figures"
        )
        return
    decisive = (np.abs(mu - 1.0) > margin) & (np.abs(k - 1.0) > margin) \
        & (np.abs(delta - 1.0) > margin)
    k_stable = (k > 1.0) & (delta < 1.0)
    mu_stable = mu > 1.0
    disagree = decisive & (k_stable != mu_stable)
    if np.any(disagree):
        idx = int(np.flatnonzero(disagree.ravel())[0])
        report_violation(
            "stability_sanity",
            f"{name}: K/|Delta| and mu stability tests disagree "
            f"(first at flat index {idx}: K={k.ravel()[idx]:.4f}, "
            f"|Delta|={delta.ravel()[idx]:.4f}, mu={mu.ravel()[idx]:.4f})",
        )


# ----------------------------------------------------------------------
# composite checks (one call per trust boundary)
# ----------------------------------------------------------------------

def check_passive_network(s, name: str, cy: Optional[np.ndarray] = None,
                          reciprocal: bool = True,
                          tol: float = DEFAULT_TOL) -> None:
    """Full contract of a synthesized passive N-port.

    Finite S, passivity, (optionally) reciprocity, and — when *cy* is
    given — a Hermitian positive-semidefinite noise correlation.
    One call at each passive-synthesis boundary.
    """
    if not enabled():
        return
    check_passivity(s, name, tol=tol)
    if reciprocal:
        check_reciprocity(s, name, tol=max(tol, 1e-7))
    if cy is not None:
        check_noise_correlation(cy, name, tol=max(tol, 1e-7))


def check_optimization_result(x, fun, name: str) -> None:
    """Sanity of an optimizer-reported best design.

    The reported design vector must be finite and the objective value
    must not be NaN (``+inf`` is legitimate — it reports a run whose
    every candidate failed, visible in ``result.health``).
    """
    if not enabled():
        return
    x = np.asarray(x, dtype=float)
    if not np.all(np.isfinite(x)):
        report_violation(
            "optimizer_result", f"{name}: best design vector is non-finite"
        )
    if np.isnan(fun):
        report_violation(
            "optimizer_result", f"{name}: best objective value is NaN"
        )


def check_pareto_front(x, objectives, name: str) -> None:
    """Sanity of a reported Pareto front: finite designs, no NaN scores."""
    if not enabled():
        return
    x = np.asarray(x, dtype=float)
    objectives = np.asarray(objectives, dtype=float)
    if not np.all(np.isfinite(x)):
        report_violation(
            "optimizer_result", f"{name}: front contains non-finite designs"
        )
    if np.any(np.isnan(objectives)):
        report_violation(
            "optimizer_result", f"{name}: front contains NaN objectives"
        )


def check_yield_fraction(values, name: str) -> None:
    """Yield fractions must be finite and inside [0, 1].

    A yield outside the unit interval means the corner bookkeeping
    miscounted (e.g. a quarantined corner scored as both pass and
    fail) — a logic error, not a numerical one, so it is reported at
    every robust-evaluation trust boundary.
    """
    if not enabled():
        return
    arr = np.atleast_1d(np.asarray(values, dtype=float))
    bad = ~np.isfinite(arr) | (arr < 0.0) | (arr > 1.0)
    if np.any(bad):
        idx = int(np.flatnonzero(bad)[0])
        report_violation(
            "robust_yield",
            f"{name}: yield fraction outside [0, 1] "
            f"(first at index {idx}: {arr[idx]!r})",
        )


def noise_figure_violation_mask(nf_db: np.ndarray,
                                tol_db: float = 1e-6) -> np.ndarray:
    """(B,) mask of batch rows whose noise figure dips below 0 dB.

    A two-port driven from a room-temperature source cannot have a
    noise factor below 1 — NF < 0 dB means the noise model produced
    negative noise power.  Pure predicate (no reporting) so the batch
    engine can quarantine rows itself.
    """
    nf_db = np.atleast_2d(np.asarray(nf_db, dtype=float))
    low = np.where(np.isfinite(nf_db), nf_db, np.inf).min(axis=1)
    return low < -tol_db
