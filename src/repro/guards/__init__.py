"""Physical-invariant contracts and numerical-conditioning guards.

The optimization loop only produces a meaningful NF-vs-gain trade-off
if every intermediate artifact is physically sane: passive S-matrices
must be passive, noise parameters consistent, MNA solves
well-conditioned.  This package is the single place those invariants
are written down and enforced.

Three guard modes, selected by the ``REPRO_GUARDS`` environment
variable (or :func:`set_mode` / :func:`guard_mode` at runtime):

* ``strict`` — a violated contract raises :class:`ContractViolation`;
* ``warn`` (default) — a violation emits a :class:`GuardWarning`,
  increments the ``guards.violations`` metric, and — inside the
  fault-isolated evaluation paths — quarantines the offending
  candidate through the existing
  :class:`~repro.optimize.faults.EvaluationFailure` taxonomy;
* ``off`` — every check short-circuits to a no-op.

The checks are wired at the pipeline's trust boundaries: Touchstone
load, passive synthesis (:mod:`repro.passives`), the compiled batch
engine (:mod:`repro.core.engine`), and optimizer-reported results.
The numerical-conditioning half (condition estimates, equilibrated
re-solves) lives in :mod:`repro.analysis.conditioning`.
"""

from repro.guards.contracts import (
    ContractViolation,
    GuardWarning,
    check_finite,
    check_frequency_grid,
    check_noise_correlation,
    check_noise_parameters,
    check_optimization_result,
    check_pareto_front,
    check_passive_network,
    check_passivity,
    check_reciprocity,
    check_stability_sanity,
    noise_figure_violation_mask,
    report_violation,
)
from repro.guards.modes import (
    MODE_OFF,
    MODE_STRICT,
    MODE_WARN,
    enabled,
    get_mode,
    guard_mode,
    set_mode,
)

__all__ = [
    "ContractViolation",
    "GuardWarning",
    "MODE_OFF",
    "MODE_STRICT",
    "MODE_WARN",
    "check_finite",
    "check_frequency_grid",
    "check_noise_correlation",
    "check_noise_parameters",
    "check_optimization_result",
    "check_pareto_front",
    "check_passive_network",
    "check_passivity",
    "check_reciprocity",
    "check_stability_sanity",
    "enabled",
    "get_mode",
    "guard_mode",
    "noise_figure_violation_mask",
    "report_violation",
    "set_mode",
]
