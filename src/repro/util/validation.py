"""Small argument-validation helpers shared across the toolkit."""

from __future__ import annotations

import numpy as np

__all__ = [
    "ensure_positive",
    "ensure_nonnegative",
    "ensure_in_range",
    "ensure_matrix_shape",
    "ensure_1d",
]


def _reject_nan(arr, name):
    # NaN would fail any ordering comparison anyway, but the resulting
    # "must be positive" message sends people hunting for a sign bug
    # instead of the upstream NaN — name the real problem.
    if np.any(np.isnan(arr)):
        raise ValueError(f"{name} must not contain NaN")


def ensure_positive(value, name):
    """Raise ``ValueError`` unless every element of *value* is > 0.

    NaN is rejected explicitly (with a message naming NaN) rather than
    falling through the comparison.
    """
    arr = np.asarray(value, dtype=float)
    _reject_nan(arr, name)
    if not np.all(arr > 0):
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def ensure_nonnegative(value, name):
    """Raise ``ValueError`` unless every element of *value* is >= 0.

    NaN is rejected explicitly with a message naming NaN.
    """
    arr = np.asarray(value, dtype=float)
    _reject_nan(arr, name)
    if not np.all(arr >= 0):
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def ensure_in_range(value, low, high, name):
    """Raise ``ValueError`` unless low <= value <= high (elementwise).

    NaN is rejected explicitly with a message naming NaN.
    """
    arr = np.asarray(value, dtype=float)
    _reject_nan(arr, name)
    if not np.all((arr >= low) & (arr <= high)):
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value!r}")
    return value


def ensure_matrix_shape(array, shape_suffix, name):
    """Raise ``ValueError`` unless ``array.shape`` ends with *shape_suffix*."""
    arr = np.asarray(array)
    if arr.shape[-len(shape_suffix):] != tuple(shape_suffix):
        raise ValueError(
            f"{name} must have trailing shape {tuple(shape_suffix)}, "
            f"got {arr.shape}"
        )
    return arr


def ensure_1d(array, name):
    """Return *array* as a 1-D float ndarray or raise ``ValueError``."""
    arr = np.atleast_1d(np.asarray(array, dtype=float))
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr
