"""Unit conversions for RF quantities.

The toolkit stores every quantity internally in linear SI units (watts,
volts, hertz, ratios).  Decibel conversions live here so that the rest of
the code never open-codes ``10 * log10`` with the wrong factor.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "db10",
    "db20",
    "from_db10",
    "from_db20",
    "dbm_to_watt",
    "watt_to_dbm",
    "nf_db_to_factor",
    "nf_factor_to_db",
    "noise_temperature_to_nf_db",
    "nf_db_to_noise_temperature",
    "magphase_deg",
    "from_magphase_deg",
]

_MIN_LINEAR = 1e-300


def db10(x):
    """Convert a power ratio to decibels (``10 log10``)."""
    return 10.0 * np.log10(np.maximum(np.asarray(x, dtype=float), _MIN_LINEAR))


def db20(x):
    """Convert an amplitude (voltage/current/S-parameter magnitude) to decibels."""
    mag = np.abs(np.asarray(x))
    return 20.0 * np.log10(np.maximum(mag, _MIN_LINEAR))


def from_db10(x_db):
    """Convert decibels to a linear power ratio."""
    return 10.0 ** (np.asarray(x_db, dtype=float) / 10.0)


def from_db20(x_db):
    """Convert decibels to a linear amplitude ratio."""
    return 10.0 ** (np.asarray(x_db, dtype=float) / 20.0)


def dbm_to_watt(p_dbm):
    """Convert power in dBm to watts."""
    return 1e-3 * from_db10(p_dbm)


def watt_to_dbm(p_watt):
    """Convert power in watts to dBm."""
    return db10(np.asarray(p_watt, dtype=float) / 1e-3)


def nf_db_to_factor(nf_db):
    """Convert a noise figure in dB to a linear noise factor F >= 1."""
    return from_db10(nf_db)


def nf_factor_to_db(factor):
    """Convert a linear noise factor to a noise figure in dB."""
    return db10(factor)


def noise_temperature_to_nf_db(temperature_kelvin, t0=290.0):
    """Convert an equivalent noise temperature to a noise figure in dB."""
    return db10(1.0 + np.asarray(temperature_kelvin, dtype=float) / t0)


def nf_db_to_noise_temperature(nf_db, t0=290.0):
    """Convert a noise figure in dB to an equivalent noise temperature [K]."""
    return (from_db10(nf_db) - 1.0) * t0


def magphase_deg(z):
    """Split a complex array into (magnitude, phase-in-degrees)."""
    z = np.asarray(z)
    return np.abs(z), np.angle(z, deg=True)


def from_magphase_deg(mag, phase_deg):
    """Build a complex array from magnitude and phase in degrees."""
    mag = np.asarray(mag, dtype=float)
    phase = np.deg2rad(np.asarray(phase_deg, dtype=float))
    return mag * np.exp(1j * phase)
