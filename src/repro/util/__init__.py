"""Shared utilities: physical constants, unit conversions, validation."""

from repro.util import constants, units, validation

__all__ = ["constants", "units", "validation"]
