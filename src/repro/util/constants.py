"""Physical constants and conventional reference values used across the toolkit.

All values are in SI units.  The IEEE reference noise temperature ``T0``
(290 K) is used for noise-figure definitions, per IRE/IEEE convention.
"""

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299792458.0

#: Vacuum permittivity [F/m].
EPSILON_0 = 8.8541878128e-12

#: Vacuum permeability [H/m].
MU_0 = 1.25663706212e-6

#: IEEE standard reference noise temperature [K].
T0_KELVIN = 290.0

#: Standard laboratory ambient temperature [K].
T_AMBIENT = 296.15

#: Conventional RF system reference impedance [ohm].
Z0_REFERENCE = 50.0

#: Free-space impedance [ohm].
ETA_0 = 376.730313668
