"""Structure-exploiting sparse MNA: compile the pattern once, solve small.

The batched dense solver (:func:`repro.analysis.compiled.solve_tensor_batch`)
refactorizes a full ``(n, n)`` admittance matrix per candidate per
frequency even though only a handful of stamp entries differ between
candidates of one topology.  This module compiles that structure away:

* **Static condensation (Schur complement).**  Nodes are partitioned
  into an *external* set E — every node touched by a candidate-dependent
  stamp entry, plus the ports and probes — and the *internal* remainder
  I.  The I-block of the admittance matrix is candidate-independent, so
  it is factorized **once per topology per frequency** as a
  ``scipy.sparse`` LU with one shared CSC pattern (the symbolic
  factorization is computed from the union sparsity over the grid and
  reused for every frequency's numeric factorization).  What remains per
  candidate is the dense ``(m, m)`` reduced system
  ``M = D - C A^-1 B`` with ``m = |E| << n`` — its candidate-independent
  part and the condensed right-hand sides are precomputed.
* **Adjoint (transpose) solve.**  Downstream only ever consumes the
  port/probe *rows* of ``Y^-1 @ rhs``.  Solving ``M^T w = e_out`` for
  the few output columns and contracting ``w^T @ rhs_red`` replaces a
  K-column forward solve with an ``n_out``-column one (K ~ 28 noise +
  port columns vs. ``n_out = 2`` ports for the LNA).
* **Sherman-Morrison / Woodbury low-rank updates.**  When only a few
  stamp groups differ across the batch (bias corners, single-element
  sweeps), ``M_i^T = M_0^T + U diag(d_i) V^T`` with one rank-1 factor
  pair per active group; the batch then costs one reference
  factorization plus tiny ``(r, r)`` solves.  An exact a-posteriori
  residual — computable entirely in the low-rank factors — falls any
  ill-conditioned candidate back to full numeric refactorization.

The plan assembles the *transposed* reduced system directly (scatter at
swapped coordinates), so no ``(B, F, m, m)`` transpose copy is ever
made, and the final contraction is a plain broadcast ``matmul`` —
einsum-shaped, GPU-portable, no Python per-candidate loops.

Everything here is topology-level machinery; solver selection, noise
post-processing, and failure isolation live with the callers
(:mod:`repro.analysis.compiled`, :mod:`repro.core.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

try:  # scipy is a declared dependency; tolerate its absence anyway.
    from scipy.sparse import csc_matrix
    from scipy.sparse.linalg import splu
    _HAVE_SPLU = True
except ImportError:  # pragma: no cover - scipy ships with the package
    _HAVE_SPLU = False

from repro.analysis.conditioning import observe_residual
from repro.obs import metrics as _obs_metrics

__all__ = [
    "PatternError",
    "MutableGroup",
    "SparsePlan",
    "build_plan",
    "structural_costs",
    "WOODBURY_RESIDUAL_TOL",
]

#: Relative residual above which a Woodbury-updated candidate is
#: refactorized in full.  The residual check is exact (computed in the
#: low-rank factors, see :meth:`SparsePlan.solve_rows`), so this is a
#: pure accuracy/speed knob: candidates under the threshold agree with
#: full refactorization to well below the 1e-9 solver contract.
WOODBURY_RESIDUAL_TOL = 1e-10


class PatternError(RuntimeError):
    """The tensor's structure cannot support a sparse plan.

    Raised at plan-build time — e.g. the constant internal block is
    singular (its Schur complement does not exist even though the full
    matrix may be fine), or sparse LU support is unavailable.  Callers
    fall back to the dense path.
    """


@dataclass(frozen=True)
class MutableGroup:
    """One named set of stamp entries sharing a per-candidate coefficient.

    ``y[..., rows, cols] += signs * coefficient`` is the group's dense
    stamp; the (row, col) pairs within one group are unique.  This is
    the plan-level twin of :class:`repro.core.engine.StampSlot`.
    """

    name: str
    rows: np.ndarray   # (k,) int, global node indices
    cols: np.ndarray   # (k,) int
    signs: np.ndarray  # (k,) float


@dataclass
class _LocalGroup:
    """A mutable group lowered to reduced-system coordinates."""

    name: str
    lrows: np.ndarray   # (k,) int, indices into the external set
    lcols: np.ndarray
    signs: np.ndarray
    # Rank-1 factors of the *transposed* stamp, M^T += coeff * u @ v^T,
    # or None when the group's stamp matrix has rank > 1.
    u_t: Optional[np.ndarray]
    v_t: Optional[np.ndarray]


def structural_costs(n_nodes: int, n_reduced: int, n_rhs: int,
                     n_out: int) -> Dict[str, float]:
    """Deterministic per-(candidate x frequency) flop estimates.

    ``dense`` is an LU of the full ``(n, n)`` system plus its K-column
    back-substitution; ``sparse`` is the reduced assembly, the
    ``(m, m)`` LU with ``n_out`` adjoint columns, and the transfer
    contraction.  Plan compilation (the per-topology splu sweep) is
    excluded — it amortizes over the whole run.  The estimates are pure
    integer arithmetic on structure, so every process compiling the
    same topology makes the identical ``solver="auto"`` choice.
    """
    n, m = float(n_nodes), float(n_reduced)
    dense = (2.0 / 3.0) * n ** 3 + n ** 2 * n_rhs
    sparse = (
        (2.0 / 3.0) * m ** 3
        + m ** 2 * (n_out + 1)
        + m * n_out * n_rhs
    )
    return {"dense": dense, "sparse": sparse}


def _shared_pattern_lu(a_stack: np.ndarray):
    """Per-frequency sparse LU of a constant block with one CSC pattern.

    The structural pattern is the union of nonzeros over the grid, so
    the symbolic analysis (column order, fill) is shared: each
    frequency only swaps in its numeric values.  Falls back to a dense
    batched inverse when scipy's splu is unavailable.  Returns a
    callable ``solve(f_index, rhs)``.
    """
    n_freq, n_int, _ = a_stack.shape
    if not _HAVE_SPLU:  # pragma: no cover - scipy ships with the package
        try:
            a_inv = np.linalg.inv(a_stack)
        except np.linalg.LinAlgError as exc:
            raise PatternError(
                f"constant internal block is singular: {exc}"
            ) from None
        return lambda f, rhs: a_inv[f] @ rhs
    mask = np.any(a_stack != 0, axis=0)
    csc_cols, csc_rows = np.nonzero(mask.T)  # column-major order
    indices = csc_rows.astype(np.int32)
    indptr = np.searchsorted(csc_cols, np.arange(n_int + 1)).astype(np.int32)
    factors = []
    for f in range(n_freq):
        data = a_stack[f][csc_rows, csc_cols]
        matrix = csc_matrix((data, indices, indptr), shape=(n_int, n_int))
        try:
            factors.append(splu(matrix))
        except RuntimeError as exc:
            raise PatternError(
                f"constant internal block is singular at frequency "
                f"index {f}: {exc}"
            ) from None
    return lambda f, rhs: factors[f].solve(rhs)


def _rank1_factors(lrows, lcols, signs, m):
    """Rank-1 factors ``(u_t, v_t)`` of one group's transposed stamp.

    The group stamps ``P = sum signs e_r e_c^T`` into ``M``; when P has
    rank 1 it factors as ``a b^T``, so ``M^T`` gains
    ``coeff * b a^T`` — returned as ``(u_t, v_t) = (b, a)``.  Returns
    ``None`` for genuinely higher-rank groups (Woodbury then skips the
    plan's low-rank path).
    """
    pattern = np.zeros((m, m))
    np.add.at(pattern, (lrows, lcols), signs)
    left, singular, right_t = np.linalg.svd(pattern)
    if singular[0] == 0.0:
        zero = np.zeros(m)
        return zero, zero
    if singular.size > 1 and singular[1] > 1e-12 * singular[0]:
        return None
    scale = np.sqrt(singular[0])
    return right_t[0] * scale, left[:, 0] * scale


class SparsePlan:
    """A compiled reduced-system solve plan for one topology.

    Built by :func:`build_plan`; holds the per-frequency condensed
    system (transposed Schur base, condensed right-hand sides, adjoint
    output columns) plus the lowered mutable groups.  One plan is
    cached per topology and reused for every candidate batch.
    """

    def __init__(self, n_nodes, external, internal, groups, schur_t,
                 rhs_red, e_out, h_out=None,
                 residual_tol=WOODBURY_RESIDUAL_TOL):
        self.n_nodes = int(n_nodes)
        self.external = external            # (m,) global node indices
        self.internal = internal            # (n - m,) global node indices
        self._groups: List[_LocalGroup] = groups
        self._schur_t = schur_t             # (F, m, m), transposed
        self._rhs_red = rhs_red             # (F, m, K)
        self._e_out = e_out                 # (F, m, n_out) adjoint columns
        self._h_out = h_out                 # (F, n_out, K) offset, or None
        # Adjoint columns for condensed-out rows are rows of A^-1 B, not
        # unit vectors; the Woodbury residual normalizes by their size.
        self._res_scale = max(1.0, float(np.max(np.abs(e_out))))
        self.residual_tol = float(residual_tol)
        #: Which update strategy the last :meth:`solve_rows` used
        #: (``"full"`` or ``"woodbury"``); diagnostic only.
        self.last_update: Optional[str] = None
        # Assembly scratch, keyed by batch size: the (B, F, m, m)
        # buffer never escapes a solve, so reusing it saves the
        # dominant allocation of the per-batch hot path.
        self._scratch: Dict[int, np.ndarray] = {}
        self._rhs_tiled: Dict[int, np.ndarray] = {}

    @property
    def n_reduced(self) -> int:
        return self._schur_t.shape[-1]

    @property
    def n_freq(self) -> int:
        return self._schur_t.shape[0]

    @property
    def n_rhs(self) -> int:
        return self._rhs_red.shape[-1]

    @property
    def n_out(self) -> int:
        return self._e_out.shape[-1]

    # -- assembly ------------------------------------------------------------
    def _assemble_t(self, coeffs, n_batch: int) -> np.ndarray:
        """The (B, F, m, m) *transposed* reduced systems.

        Scattering at swapped local coordinates builds ``M^T`` directly
        — the adjoint solve never materializes ``M`` itself.
        """
        mt = self._scratch.get(n_batch)
        if mt is None or mt.shape[0] != n_batch:
            mt = np.empty((n_batch,) + self._schur_t.shape, dtype=complex)
            self._scratch = {n_batch: mt}
        np.copyto(mt, self._schur_t)
        for group in self._groups:
            c = np.asarray(coeffs[group.name], dtype=complex)
            if c.ndim == 1:
                c = c[None, :]
            mt[..., group.lcols, group.lrows] += group.signs * c[..., None]
        return mt

    def sample_matrix(self, coeffs, candidate: int = 0,
                      f_index: Optional[int] = None) -> np.ndarray:
        """One assembled reduced matrix ``M`` for conditioning guards.

        Default: the mid-grid matrix of *candidate* — the sparse twin
        of the dense path's mid-band ``condition_log10`` sample.
        """
        f = self.n_freq // 2 if f_index is None else int(f_index)
        mt = self._schur_t[f].copy()
        for group in self._groups:
            c = np.asarray(coeffs[group.name], dtype=complex)
            fi = f if c.shape[-1] != 1 else 0  # frequency-flat coeffs
            value = c[fi] if c.ndim == 1 else c[candidate, fi]
            np.add.at(mt, (group.lcols, group.lrows), group.signs * value)
        return mt.T.copy()

    # -- solving -------------------------------------------------------------
    def solve_rows(self, coeffs, n_batch: int,
                   update: str = "full") -> np.ndarray:
        """Port/probe rows of ``Y^-1 @ rhs`` for a candidate batch.

        *coeffs* maps group name -> ``(B, F)`` (or broadcast ``(F,)``)
        complex coefficients.  Returns ``(B, F, n_out, K)``.  *update*
        selects the numeric strategy:

        * ``"full"`` — refactorize every candidate's reduced system;
        * ``"woodbury"`` — low-rank update from candidate 0's
          factorization (requires rank-1 groups; ill-conditioned
          candidates are residual-checked and refactorized in full);
        * ``"auto"`` — Woodbury when few enough groups are *active*
          (differ across the batch) to win, full otherwise.  The choice
          depends only on the coefficient values, never on timing, so
          identical batches resolve identically in every process.

        Raises ``numpy.linalg.LinAlgError`` when a reduced system is
        singular, mirroring the dense kernel.
        """
        if update not in ("full", "woodbury", "auto"):
            raise ValueError(
                f"update must be 'full', 'woodbury', or 'auto', "
                f"got {update!r}"
            )
        if update in ("woodbury", "auto"):
            w = self._solve_woodbury(coeffs, n_batch,
                                     required=update == "woodbury")
            if w is None:
                w = self._solve_full(coeffs, n_batch)
        else:
            w = self._solve_full(coeffs, n_batch)
        out = np.swapaxes(w, -1, -2) @ self._rhs_red
        if self._h_out is not None:
            out = out + self._h_out
        return out

    def _solve_full(self, coeffs, n_batch: int) -> np.ndarray:
        mt = self._assemble_t(coeffs, n_batch)
        # LAPACK dispatch on tiny matrices is overhead-bound: a flat
        # 3-D batch with a contiguous right-hand side solves ~1.5x
        # faster than the 4-D broadcast form, so tile ``e_out`` once
        # per batch size and keep the copy around.
        m = self.n_reduced
        rhs = self._rhs_tiled.get(n_batch)
        if rhs is None:
            rhs = np.ascontiguousarray(np.broadcast_to(
                self._e_out, (n_batch,) + self._e_out.shape
            ).reshape(n_batch * self.n_freq, m, self.n_out))
            self._rhs_tiled = {n_batch: rhs}
        w = np.linalg.solve(
            mt.reshape(n_batch * self.n_freq, m, m), rhs
        ).reshape(n_batch, self.n_freq, m, self.n_out)
        self.last_update = "full"
        return w

    def _active_groups(self, coeffs, n_batch: int):
        """Groups whose coefficient differs from candidate 0's, plus
        the per-group ``(B, F)`` deltas."""
        active, deltas = [], []
        for group in self._groups:
            c = np.asarray(coeffs[group.name], dtype=complex)
            if c.ndim == 1 or c.shape[0] == 1:
                continue  # shared across the batch: never a delta
            delta = c - c[:1]
            if np.any(delta != 0):
                active.append(group)
                # Coefficients may be (B, 1) (frequency-flat values,
                # e.g. conductances) or (B, F); the update stacks them
                # on one frequency axis.
                deltas.append(np.broadcast_to(
                    delta, (delta.shape[0], self.n_freq)
                ))
        return active, deltas

    def _solve_woodbury(self, coeffs, n_batch: int,
                        required: bool) -> Optional[np.ndarray]:
        """The low-rank update path; ``None`` defers to the full solve.

        ``M_i^T = M_0^T + U diag(d_i) V^T`` with one rank-1 factor pair
        per active group.  The relative residual of every candidate is
        computed *exactly* in the low-rank factors —
        ``E - M_i^T W_i = U (t - D b + D G t)`` with ``t = D s`` — so an
        ill-conditioned small system cannot silently poison a row:
        offending candidates are refactorized in full and spliced back.
        """
        m = self.n_reduced
        active, deltas = self._active_groups(coeffs, n_batch)
        rank = len(active)
        if any(group.u_t is None for group in active):
            return None  # a higher-rank group: no low-rank structure
        if rank == 0:
            # Degenerate batch (all candidates identical): the full
            # assembly collapses to one system per frequency anyway.
            return None
        if not required and 2 * rank > m:
            return None  # too many active groups for the update to win

        # Reference factorization: candidate 0's reduced systems carry
        # both the adjoint columns and the update factors in one solve.
        ref = {name: np.asarray(c, dtype=complex)[:1]
               if np.asarray(c).ndim > 1 else np.asarray(c, dtype=complex)
               for name, c in coeffs.items()}
        m0t = self._assemble_t(ref, 1)[0]                   # (F, m, m)
        u_fac = np.stack([g.u_t for g in active], axis=1)   # (m, r)
        v_fac = np.stack([g.v_t for g in active], axis=1)   # (m, r)
        n_freq = self.n_freq
        u_cols = np.broadcast_to(
            u_fac, (n_freq,) + u_fac.shape
        )
        try:
            sol0 = np.linalg.solve(
                m0t, np.concatenate([self._e_out, u_cols], axis=-1)
            )
        except np.linalg.LinAlgError:
            if required:
                raise
            _obs_metrics.inc("mna.woodbury_fallbacks")
            return None
        n_out = self.n_out
        w0 = sol0[..., :n_out]                              # (F, m, n_out)
        zu = sol0[..., n_out:]                              # (F, m, r)
        v_t = v_fac.T
        g_small = v_t @ zu                                  # (F, r, r)
        b_small = v_t @ w0                                  # (F, r, n_out)
        d = np.stack(deltas, axis=-1)                       # (B, F, r)

        a_small = np.eye(rank) + g_small * d[..., None, :]
        try:
            s_small = np.linalg.solve(a_small, b_small)     # (B, F, r, n_out)
        except np.linalg.LinAlgError:
            # A singular capacitance system: the update is invalid for
            # at least one candidate; refactorize the batch in full.
            _obs_metrics.inc("mna.woodbury_fallbacks", n_batch)
            return self._solve_full(coeffs, n_batch)
        t = d[..., :, None] * s_small
        w = w0 - zu @ t                                     # (B, F, m, n_out)

        # Exact a-posteriori residual of M_i^T W_i = E, assembled from
        # the small factors only (zero in exact arithmetic).
        q = t - d[..., :, None] * b_small + d[..., :, None] * (g_small @ t)
        res = u_fac @ q                                     # (B, F, m, n_out)
        with np.errstate(invalid="ignore"):
            rel = np.max(
                np.abs(res).reshape(n_batch, -1), axis=1
            ) / self._res_scale  # scaled by the adjoint columns' size
        observe_residual(float(np.max(rel)), "mna.woodbury")
        bad = ~(rel <= self.residual_tol)  # catches NaN as bad
        if np.any(bad):
            _obs_metrics.inc("mna.woodbury_fallbacks", int(np.sum(bad)))
            idx = np.flatnonzero(bad)
            sub = {name: np.asarray(c, dtype=complex)[idx]
                   if np.asarray(c).ndim > 1 else c
                   for name, c in coeffs.items()}
            w[idx] = self._solve_full(sub, idx.size)
        _obs_metrics.inc("mna.woodbury_solves", int(n_batch - np.sum(bad)))
        self.last_update = "woodbury"
        return w


def build_plan(
    base: np.ndarray,
    groups: Sequence[MutableGroup],
    port_rows: np.ndarray,
    z0: float,
    rhs: np.ndarray,
    out_rows: Sequence[int],
    residual_tol: float = WOODBURY_RESIDUAL_TOL,
) -> SparsePlan:
    """Compile one topology's condensed solve plan.

    Parameters
    ----------
    base:
        ``(F, n, n)`` candidate-independent admittance tensor *without*
        port loads (they are folded into the reduced system here).
    groups:
        The candidate-dependent stamp groups; every node they touch
        becomes external.
    port_rows, z0:
        Port node rows and the shared reference impedance.
    rhs:
        ``(n, K)`` shared right-hand side (port injections plus noise
        columns) — condensed once per frequency.
    out_rows:
        Global rows of the solution to recover (ports first, then
        probes; ``-1`` marks a grounded probe and yields a zero row).

    The external set is the *stamp hull* only: nodes some group
    mutates.  Ports and probes the stamps never touch have constant
    rows **and** columns, so static condensation commutes with the
    candidate scatter and they are eliminated too — their solution
    rows are recovered as ``h_out + w^T rhs_red`` with the constant
    factors ``h_out = rows of A^-1 r_I`` and adjoint columns
    ``-(A^-1 B)^T`` precomputed per frequency.

    Raises :class:`PatternError` when the constant internal block is
    singular (no Schur complement exists).
    """
    base = np.asarray(base)
    if base.ndim != 3 or base.shape[-1] != base.shape[-2]:
        raise ValueError(
            f"expected a (F, n, n) base tensor, got {base.shape}"
        )
    n_freq, n_nodes, _ = base.shape
    port_rows = np.asarray(port_rows, dtype=int)

    needed = set(int(r) for r in port_rows)
    needed.update(int(r) for r in out_rows if int(r) >= 0)
    touched = set()
    for group in groups:
        touched.update(int(r) for r in np.asarray(group.rows))
        touched.update(int(c) for c in np.asarray(group.cols))
    if not touched:
        # Degenerate topology with no mutable stamps: keep the output
        # rows themselves external so a reduced system exists at all.
        touched = set(needed)
    if (max(touched | needed, default=-1) >= n_nodes
            or min(touched | needed, default=0) < 0):
        raise ValueError("group/port/probe indices exceed the node count")
    external = np.array(sorted(touched), dtype=int)
    internal = np.array(
        [k for k in range(n_nodes) if k not in touched], dtype=int
    )
    m = external.size
    local = np.full(n_nodes, -1, dtype=int)
    local[external] = np.arange(m)
    local_int = np.full(n_nodes, -1, dtype=int)
    local_int[internal] = np.arange(internal.size)

    # Port loads are constant stamps: external ones on the reduced
    # diagonal, condensed-out ones on the internal block's diagonal.
    load_global = np.zeros(n_nodes)
    np.add.at(load_global, port_rows, 1.0 / z0)

    d_block = base[:, external[:, None], external[None, :]].copy()
    d_block[:, np.arange(m), np.arange(m)] += load_global[external]

    n_out = len(out_rows)
    out_int = [(k, int(local_int[int(row)])) for k, row in enumerate(out_rows)
               if int(row) >= 0 and local[int(row)] < 0]

    if internal.size:
        a_block = base[:, internal[:, None], internal[None, :]]
        load_int = load_global[internal]
        if np.any(load_int):
            a_block = a_block.copy()
            idx = np.arange(internal.size)
            a_block[:, idx, idx] += load_int
        b_block = base[:, internal[:, None], external[None, :]]
        c_block = base[:, external[:, None], internal[None, :]]
        solve_a = _shared_pattern_lu(a_block)
        schur = np.empty_like(d_block)
        rhs_red = np.empty((n_freq, m, rhs.shape[1]), dtype=complex)
        rhs_int = np.ascontiguousarray(rhs[internal])
        rhs_ext = rhs[external]
        e_out = np.zeros((n_freq, m, n_out), dtype=complex)
        h_out = (np.zeros((n_freq, n_out, rhs.shape[1]), dtype=complex)
                 if out_int else None)
        for f in range(n_freq):
            a_inv_b = solve_a(f, b_block[f])
            a_inv_r = solve_a(f, rhs_int)
            schur[f] = d_block[f] - c_block[f] @ a_inv_b
            rhs_red[f] = rhs_ext - c_block[f] @ a_inv_r
            for k, li in out_int:
                e_out[f, :, k] = -a_inv_b[li, :]
                h_out[f, k, :] = a_inv_r[li, :]
    else:
        schur = d_block
        rhs_red = np.broadcast_to(
            rhs[external], (n_freq, m, rhs.shape[1])
        ).astype(complex)
        e_out = np.zeros((n_freq, m, n_out), dtype=complex)
        h_out = None

    for k, row in enumerate(out_rows):
        if int(row) >= 0 and local[int(row)] >= 0:
            e_out[:, local[int(row)], k] = 1.0

    lowered = []
    for group in groups:
        lrows = local[np.asarray(group.rows, dtype=int)]
        lcols = local[np.asarray(group.cols, dtype=int)]
        signs = np.asarray(group.signs, dtype=float)
        factors = _rank1_factors(lrows, lcols, signs, m)
        u_t, v_t = factors if factors is not None else (None, None)
        lowered.append(_LocalGroup(group.name, lrows, lcols, signs,
                                   u_t, v_t))

    return SparsePlan(
        n_nodes, external, internal, lowered,
        np.ascontiguousarray(np.swapaxes(schur, -1, -2)),
        rhs_red, e_out, h_out=h_out, residual_tol=residual_tol,
    )
