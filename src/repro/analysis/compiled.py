"""Batched AC analysis: population-level MNA solves.

Population-based optimizers (DE, PSO, NSGA-II, the goal-attainment
probe phase) evaluate many circuits that share one topology and differ
only in element values.  Solving them one at a time wastes most of the
wall clock on Python dispatch; this module stacks B candidates into a
``(B, F, n, n)`` admittance tensor and performs **one** batched
factorization for the signal *and* noise right-hand sides — the exact
computation of :func:`repro.analysis.acsolver.solve_ac`, candidate by
candidate, to floating-point roundoff (the equivalence is enforced by
``tests/test_random_circuits.py``).

Two entry points:

* :func:`solve_ac_batch` — takes a sequence of fully built
  :class:`~repro.analysis.netlist.Circuit` objects with identical
  topology and returns a :class:`BatchACResult`.  Generic, but still
  pays per-candidate assembly cost; it is the fallback for arbitrary
  same-topology batches.
* :func:`solve_tensor_batch` — the low-level core used by the compiled
  LNA engine (:mod:`repro.core.engine`), which assembles the batch
  tensor directly from a stamp plan and skips circuit construction
  entirely.

Both entry points accept ``solver="dense"|"sparse"|"auto"``.  The
sparse tier discovers the candidate-*in*dependent structure of the
batch (entries identical across all B tensors), condenses it through
:mod:`repro.analysis.sparsemna`'s Schur-complement plan, and solves
only the small mutable system per candidate — numerically equivalent
to the dense path to well under 1e-9 relative (enforced by
``tests/test_random_circuits.py``).  ``"auto"`` picks by a
deterministic structural cost model; the dense path remains the
default and the reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.acsolver import (
    ACResult,
    _assemble_tensor,
    _collect_noise_sources,
)
from repro.analysis.conditioning import equilibrated_solve, observe_condition
from repro.analysis.netlist import Circuit
from repro.analysis.sparsemna import (
    MutableGroup,
    PatternError,
    build_plan,
    structural_costs,
)
from repro.guards import modes as _guard_modes
from repro.obs import metrics as _obs_metrics
from repro.obs import tracer as _obs_tracer
from repro.rf import conversions as cv
from repro.rf.frequency import FrequencyGrid

__all__ = [
    "BatchNoiseSource",
    "BatchACResult",
    "solve_ac_batch",
    "solve_tensor_batch",
    "solve_tensor_batch_isolated",
]


@dataclass
class BatchNoiseSource:
    """One noise source shared across a batch of same-topology circuits.

    ``columns`` is the ``(n_nodes, w)`` stack of injection vectors —
    they depend only on the topology, so one copy serves the whole
    batch.  ``psd`` is the (possibly per-candidate) power spectral
    density: shape ``(F,)`` or broadcastable ``(B, F)`` for scalar
    sources, ``(F, w, w)`` or ``(B, F, w, w)`` for correlated blocks,
    in the 2kT-normalized convention of :mod:`repro.rf.noise`.
    """

    columns: np.ndarray
    psd: np.ndarray

    @property
    def width(self) -> int:
        return self.columns.shape[1]


@dataclass
class BatchACResult:
    """S-parameters and port noise correlation of a batch of circuits."""

    frequency: FrequencyGrid
    s: np.ndarray          # (B, F, n_ports, n_ports)
    cy: np.ndarray         # (B, F, n_ports, n_ports)
    z0: float
    port_names: List[str]
    node_transfers: Optional[np.ndarray] = None  # (B, F, n_probes, n_ports)
    probe_nodes: tuple = ()

    def __len__(self) -> int:
        return self.s.shape[0]

    def candidate(self, index: int) -> ACResult:
        """A detached :class:`ACResult` copy of one batch member.

        The arrays are **copies**, not views into the batch tensors:
        callers routinely post-process a single candidate's ``s``/``cy``
        in place, and a view would silently corrupt its batch siblings.
        """
        transfers = None
        if self.node_transfers is not None:
            transfers = self.node_transfers[index].copy()
        return ACResult(
            frequency=self.frequency,
            s=self.s[index].copy(),
            cy=self.cy[index].copy(),
            z0=self.z0,
            port_names=list(self.port_names),
            node_transfers=transfers,
            probe_nodes=self.probe_nodes,
        )


def _port_results(
    v_ports: np.ndarray,
    n_ports: int,
    z0: float,
    noise_sources: Sequence[BatchNoiseSource],
) -> Tuple[np.ndarray, np.ndarray]:
    """S-parameters and port noise correlation from the port rows of
    the MNA solution (shared by the dense and sparse solver tiers)."""
    z_loaded = v_ports[..., :n_ports]
    z_loaded_inv = np.linalg.inv(z_loaded)
    g0 = np.eye(n_ports) / z0
    y_net = z_loaded_inv - g0
    s_out = cv.y_to_s(y_net, z0)

    cy_out = np.zeros(v_ports.shape[:-1] + (n_ports,), dtype=complex)
    col = n_ports
    for src in noise_sources:
        width = src.width
        transfer = v_ports[..., col:col + width]
        col += width
        # Port-referred noise currents: i_n = -(Y_net + G0) v_loaded.
        i_n = -z_loaded_inv @ transfer
        i_n_h = np.conjugate(np.swapaxes(i_n, -1, -2))
        psd = np.asarray(src.psd)
        if psd.ndim <= 2:          # (F,) or (B, F) scalar densities
            cy_out += psd[..., None, None] * (i_n @ i_n_h)
        else:                      # (F, w, w) or (B, F, w, w) matrices
            cy_out += i_n @ psd @ i_n_h
    return s_out, cy_out


def _solve_tensor_sparse(
    y_batch: np.ndarray,
    port_rows: np.ndarray,
    z0: float,
    rhs: np.ndarray,
    noise_sources: Sequence[BatchNoiseSource],
    probe_rows: Sequence[int],
    require: bool,
):
    """The generic sparse/Schur branch of :func:`solve_tensor_batch`.

    The mutable structure is discovered from the batch itself: entries
    that differ from candidate 0 anywhere become single-entry update
    groups, everything else is the constant base that the plan
    condenses.  Returns ``None`` to defer to the dense path — either
    because ``solver="auto"``'s structural cost model prefers dense
    (*require* false) or because the pattern cannot support a plan
    (counted in ``mna.sparse_pattern_fallbacks``).
    """
    n_batch, n_freq, n_nodes, _ = y_batch.shape
    n_ports = port_rows.size
    base = y_batch[0]
    mutable = np.any(y_batch != y_batch[:1], axis=(0, 1))
    rows, cols = np.nonzero(mutable)
    out_rows = [int(r) for r in port_rows] + [int(r) for r in probe_rows]
    # The reduced system spans the stamp hull only; untouched
    # port/probe rows are condensed out by the plan (see build_plan).
    touched = set(rows.tolist())
    touched.update(cols.tolist())
    if not touched:
        touched = set(out_rows) - {-1}
    if not require:
        costs = structural_costs(n_nodes, len(touched), rhs.shape[1],
                                 len(out_rows))
        if costs["sparse"] >= costs["dense"]:
            return None
    groups, coeffs = [], {}
    for r, c in zip(rows.tolist(), cols.tolist()):
        name = f"e{r}.{c}"
        groups.append(MutableGroup(
            name, np.array([r]), np.array([c]), np.array([1.0])
        ))
        coeffs[name] = y_batch[:, :, r, c] - base[:, r, c]
    try:
        plan = build_plan(base, groups, port_rows, z0, rhs, out_rows)
    except PatternError:
        _obs_metrics.inc("mna.sparse_pattern_fallbacks")
        return None
    try:
        sol_rows = plan.solve_rows(coeffs, n_batch, update="full")
    except np.linalg.LinAlgError as exc:
        raise ValueError(
            "singular circuit (floating node or degenerate element): "
            f"{exc}"
        ) from None
    s_out, cy_out = _port_results(sol_rows[..., :n_ports, :], n_ports,
                                  z0, noise_sources)
    transfers = None
    if len(probe_rows):
        transfers = np.ascontiguousarray(
            sol_rows[..., n_ports:, :n_ports]
        )
    return s_out, cy_out, transfers


def solve_tensor_batch(
    y_batch: np.ndarray,
    port_rows: np.ndarray,
    z0: float,
    noise_sources: Sequence[BatchNoiseSource] = (),
    probe_rows: Sequence[int] = (),
    _solve=np.linalg.solve,
    solver: str = "dense",
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """One batched MNA solve of ``(B, F, n, n)`` admittance tensors.

    *y_batch* must NOT yet include the port reference loads; they are
    added to an internal copy — **the caller's tensor is never
    mutated**.  Returns ``(s, cy, node_transfers)`` with shapes
    ``(B, F, p, p)``, ``(B, F, p, p)`` and ``(B, F, n_probes, p)``
    (transfers are ``None`` when no probe rows are requested).  Raises
    ``ValueError`` on singular topology, like the scalar solver.

    ``solver`` selects the factorization tier: ``"dense"`` (the
    reference), ``"sparse"`` (Schur-condense the candidate-independent
    structure, see :mod:`repro.analysis.sparsemna`), or ``"auto"``
    (deterministic structural cost model).  The sparse tier agrees
    with dense to well under 1e-9 relative and falls back to dense
    when the batch has no exploitable structure.  ``_solve`` is the
    linear-solver hook the conditioning escalation swaps for
    :func:`repro.analysis.conditioning.equilibrated_solve`; a
    non-default hook forces the dense tier (escalation is a dense-path
    contract).
    """
    if y_batch.ndim != 4 or y_batch.shape[-1] != y_batch.shape[-2]:
        raise ValueError(
            f"expected (B, F, n, n) admittance tensor, got {y_batch.shape}"
        )
    if solver not in ("dense", "sparse", "auto"):
        raise ValueError(
            f"solver must be 'dense', 'sparse', or 'auto', got {solver!r}"
        )
    n_batch, n_freq, n_nodes, _ = y_batch.shape
    port_rows = np.asarray(port_rows, dtype=int)
    n_ports = port_rows.size

    n_noise_cols = sum(src.width for src in noise_sources)
    rhs = np.zeros((n_nodes, n_ports + n_noise_cols), dtype=complex)
    for col, row in enumerate(port_rows):
        rhs[row, col] = 1.0
    col = n_ports
    for src in noise_sources:
        rhs[:, col:col + src.width] = src.columns
        col += src.width

    if solver != "dense" and _solve is np.linalg.solve:
        result = _solve_tensor_sparse(
            y_batch, port_rows, z0, rhs, noise_sources, probe_rows,
            require=solver == "sparse",
        )
        if result is not None:
            return result

    # Reference loads go onto a copy: the caller's tensor stays
    # bit-identical (callers used to scatter defensive .copy() calls
    # to survive the old in-place behaviour).
    y_loaded = y_batch.copy()
    for row in port_rows:
        y_loaded[..., row, row] += 1.0 / z0  # noiseless reference loads

    try:
        solution = _solve(
            y_loaded,
            np.broadcast_to(rhs, (n_batch, n_freq) + rhs.shape),
        )
    except np.linalg.LinAlgError as exc:
        raise ValueError(
            "singular circuit (floating node or degenerate element): "
            f"{exc}"
        ) from None

    v_ports = solution[..., port_rows, :]
    s_out, cy_out = _port_results(v_ports, n_ports, z0, noise_sources)

    transfers = None
    if len(probe_rows):
        transfers = np.zeros((n_batch, n_freq, len(probe_rows), n_ports),
                             dtype=complex)
        for k, row in enumerate(probe_rows):
            if row >= 0:
                transfers[..., k, :] = solution[..., row, :n_ports]
    return s_out, cy_out, transfers


def _noise_source_row(source: BatchNoiseSource, index: int,
                      n_batch: int) -> BatchNoiseSource:
    """The single-candidate view of one (possibly batched) noise source.

    Per-candidate densities are ``(B, F)`` scalars or ``(B, F, w, w)``
    blocks; shared densities (``(F,)`` / ``(F, w, w)``) pass through
    unchanged — mirroring the broadcasting rules of
    :func:`solve_tensor_batch`.
    """
    psd = np.asarray(source.psd)
    if psd.ndim in (2, 4) and psd.shape[0] == n_batch:
        return BatchNoiseSource(source.columns, psd[index:index + 1])
    return BatchNoiseSource(source.columns, psd)


def _finite_rows(*arrays: Optional[np.ndarray]) -> np.ndarray:
    """Boolean (B,) mask of batch rows whose entries are all finite."""
    mask = None
    for array in arrays:
        if array is None:
            continue
        flat = np.isfinite(array).reshape(array.shape[0], -1).all(axis=1)
        mask = flat if mask is None else mask & flat
    return mask


def _solve_row_equilibrated(
    y_row: np.ndarray,
    port_rows: np.ndarray,
    z0: float,
    row_sources: Sequence[BatchNoiseSource],
    probe_rows: Sequence[int],
):
    """Conditioning escalation for one failed batch row.

    Re-solves a single ``(1, F, n, n)`` slice through the
    equilibrated-and-refined solver.  Returns ``(s, cy, transfers)``
    on success, ``None`` when the row is beyond rescue.  Only called
    on rows the plain factorization already failed, so healthy rows
    keep their bit-for-bit results.
    """
    if not _guard_modes.enabled():
        return None
    try:
        s_i, cy_i, tr_i = solve_tensor_batch(
            y_row, port_rows, z0, row_sources, probe_rows,
            _solve=equilibrated_solve,
        )
    except (ValueError, np.linalg.LinAlgError):
        return None
    if not _finite_rows(s_i, cy_i, tr_i)[0]:
        return None
    _obs_metrics.inc("mna.equilibrated_rescues")
    return s_i, cy_i, tr_i


def solve_tensor_batch_isolated(
    y_batch: np.ndarray,
    port_rows: np.ndarray,
    z0: float,
    noise_sources: Sequence[BatchNoiseSource] = (),
    probe_rows: Sequence[int] = (),
    solver: str = "dense",
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], np.ndarray]:
    """:func:`solve_tensor_batch` with per-candidate failure isolation.

    The fast path is the ordinary full-batch factorization through the
    selected *solver* tier.  When it raises on a singular candidate,
    each row is re-solved on its own (always through the dense tier —
    single-row rescue has no structure to exploit), so one degenerate
    design can no longer fail the whole population; rows that are
    singular (or produce non-finite results) come back zero-filled
    with their ``failed`` flag set.  *y_batch* is never mutated — the
    kernel adds reference loads to internal copies.

    Returns ``(s, cy, node_transfers, failed)`` where ``failed`` is a
    boolean ``(B,)`` mask; healthy rows carry exactly the values the
    raising-variant would have produced for them.
    """
    if y_batch.ndim != 4 or y_batch.shape[-1] != y_batch.shape[-2]:
        raise ValueError(
            f"expected (B, F, n, n) admittance tensor, got {y_batch.shape}"
        )
    n_batch, n_freq = y_batch.shape[:2]
    n_ports = np.asarray(port_rows, dtype=int).size
    with _obs_tracer.span("mna.solve_tensor_batch_isolated",
                          batch=n_batch, n_freq=n_freq):
        if _guard_modes.enabled():
            # One sampled conditioning estimate per batch call: the
            # mid-band matrix of the first candidate (with its port
            # loads) stands in for the batch in the per-run histogram.
            sample = y_batch[0, n_freq // 2].copy()
            for row in np.asarray(port_rows, dtype=int):
                sample[row, row] += 1.0 / z0
            observe_condition(sample, "mna")
        try:
            s, cy, transfers = solve_tensor_batch(
                y_batch, port_rows, z0, noise_sources, probe_rows,
                solver=solver,
            )
        except (ValueError, np.linalg.LinAlgError):
            pass  # fall through to the per-row path below
        else:
            failed = ~_finite_rows(s, cy, transfers)
            for i in np.flatnonzero(failed):
                # Escalation: equilibrated re-solve of the failing row
                # before it is written off (healthy rows untouched).
                row_sources = [_noise_source_row(src, i, n_batch)
                               for src in noise_sources]
                rescued = _solve_row_equilibrated(
                    y_batch[i:i + 1], port_rows, z0, row_sources,
                    probe_rows,
                )
                if rescued is None:
                    continue
                s[i], cy[i] = rescued[0][0], rescued[1][0]
                if transfers is not None and rescued[2] is not None:
                    transfers[i] = rescued[2][0]
                failed[i] = False
            if np.any(failed):
                _obs_metrics.inc("mna.failed_rows", int(np.sum(failed)))
                s[failed] = 0.0
                cy[failed] = 0.0
                if transfers is not None:
                    transfers[failed] = 0.0
            return s, cy, transfers, failed

        # Full-batch factorization failed outright: re-solve each row on
        # its own so one degenerate candidate cannot sink the rest.
        _obs_metrics.inc("mna.batch_refactorizations")
        s = np.zeros((n_batch, n_freq, n_ports, n_ports), dtype=complex)
        cy = np.zeros_like(s)
        transfers = None
        if len(probe_rows):
            transfers = np.zeros(
                (n_batch, n_freq, len(probe_rows), n_ports), dtype=complex
            )
        failed = np.zeros(n_batch, dtype=bool)
        for i in range(n_batch):
            row_sources = [_noise_source_row(src, i, n_batch)
                           for src in noise_sources]
            try:
                s_i, cy_i, tr_i = solve_tensor_batch(
                    y_batch[i:i + 1], port_rows, z0, row_sources,
                    probe_rows,
                )
            except (ValueError, np.linalg.LinAlgError):
                rescued = _solve_row_equilibrated(
                    y_batch[i:i + 1], port_rows, z0, row_sources,
                    probe_rows,
                )
                if rescued is None:
                    failed[i] = True
                    continue
                s_i, cy_i, tr_i = rescued
            if not _finite_rows(s_i, cy_i, tr_i)[0]:
                rescued = _solve_row_equilibrated(
                    y_batch[i:i + 1], port_rows, z0, row_sources,
                    probe_rows,
                )
                if rescued is None:
                    failed[i] = True
                    continue
                s_i, cy_i, tr_i = rescued
            s[i] = s_i[0]
            cy[i] = cy_i[0]
            if transfers is not None and tr_i is not None:
                transfers[i] = tr_i[0]
        if np.any(failed):
            _obs_metrics.inc("mna.failed_rows", int(np.sum(failed)))
        return s, cy, transfers, failed


def solve_ac_batch(circuits: Sequence[Circuit], frequency: FrequencyGrid,
                   compute_noise: bool = True,
                   probe_nodes: tuple = (),
                   solver: str = "dense") -> BatchACResult:
    """Run AC + noise analysis of a batch of same-topology circuits.

    Every circuit must share node names, element structure, and port
    declarations with the first one — only element *values* may differ.
    The result matches ``[solve_ac(c, frequency) for c in circuits]``
    to floating-point roundoff at a fraction of the Python overhead.
    ``solver`` selects the factorization tier of
    :func:`solve_tensor_batch`.
    """
    if not len(circuits):
        raise ValueError("need at least one circuit to solve")
    reference = circuits[0]
    if not reference.ports:
        raise ValueError("circuit has no ports; declare at least one")
    z0_values = {p.z0 for p in reference.ports}
    if len(z0_values) != 1:
        raise ValueError(
            f"ports must share one reference impedance, got {sorted(z0_values)}"
        )
    z0 = reference.ports[0].z0
    node_names = reference.node_names
    port_spec = [(p.name, p.node, p.z0) for p in reference.ports]
    for circuit in circuits[1:]:
        if circuit.node_names != node_names:
            raise ValueError(
                f"circuit {circuit.name!r} has different node topology "
                f"than {reference.name!r}"
            )
        if [(p.name, p.node, p.z0) for p in circuit.ports] != port_spec:
            raise ValueError(
                f"circuit {circuit.name!r} has different ports "
                f"than {reference.name!r}"
            )

    n_nodes = len(node_names)
    f_hz = frequency.f_hz
    port_rows = np.array(
        [reference.node_index(p.node) for p in reference.ports], dtype=int
    )
    if np.any(port_rows < 0):
        raise ValueError("a port cannot be attached to ground")
    probe_rows = [reference.node_index(node) for node in probe_nodes]

    y_batch = np.stack([
        _assemble_tensor(circuit, f_hz, n_nodes) for circuit in circuits
    ])

    noise_sources: List[BatchNoiseSource] = []
    if compute_noise:
        per_circuit = [_collect_noise_sources(c, f_hz) for c in circuits]
        n_sources = len(per_circuit[0])
        if any(len(sources) != n_sources for sources in per_circuit):
            raise ValueError(
                "circuits declare different numbers of noise sources"
            )
        for idx in range(n_sources):
            columns = np.stack(per_circuit[0][idx].columns, axis=1)
            for sources in per_circuit[1:]:
                other = np.stack(sources[idx].columns, axis=1)
                if other.shape != columns.shape or not np.array_equal(
                    other, columns
                ):
                    raise ValueError(
                        "noise-source injection topology differs across "
                        "the batch"
                    )
            psd = np.stack([sources[idx].psd_array
                            for sources in per_circuit])
            noise_sources.append(BatchNoiseSource(columns, psd))

    s_out, cy_out, transfers = solve_tensor_batch(
        y_batch, port_rows, z0, noise_sources, probe_rows, solver=solver
    )
    return BatchACResult(
        frequency=frequency, s=s_out, cy=cy_out, z0=z0,
        port_names=[p.name for p in reference.ports],
        node_transfers=transfers, probe_nodes=tuple(probe_nodes),
    )
