"""Netlist data model for the in-house circuit simulator.

A :class:`Circuit` is a flat collection of elements connected between
named nodes; the node ``"0"`` (alias ``"gnd"``) is ground.  Ports are
declared explicitly and define both the S-parameter reference planes
and the terminals at which noise is characterised.

Element set (sufficient for a complete LNA with bias network):

* ``resistor`` — thermal noise at an element-specific temperature;
* ``capacitor`` / ``inductor`` — ideal reactances (lossy real parts are
  modelled by explicit resistors, which keeps the noise bookkeeping
  honest);
* ``vccs`` — voltage-controlled current source with optional delay,
  the small-signal transconductance of the FET;
* ``transmission_line`` — ideal or lossy line via its 2x2 Y-matrix;
* ``y_block`` — an arbitrary frequency-dependent N-terminal admittance
  block (used to drop full device models into a circuit);
* ``noise_current`` — an explicit noise current source with a
  user-supplied one-sided PSD [A^2/Hz] (used for drain noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.constants import T_AMBIENT

__all__ = [
    "Circuit",
    "Port",
    "Resistor",
    "Capacitor",
    "Inductor",
    "Vccs",
    "TransmissionLineElement",
    "YBlock",
    "NoiseCurrent",
]

GROUND_ALIASES = ("0", "gnd", "GND")


@dataclass(frozen=True)
class Resistor:
    name: str
    node_a: str
    node_b: str
    resistance: float
    temperature: float = T_AMBIENT

    def __post_init__(self):
        if self.resistance <= 0:
            raise ValueError(
                f"resistor {self.name!r}: resistance must be positive, "
                f"got {self.resistance}"
            )
        if self.temperature < 0:
            raise ValueError(
                f"resistor {self.name!r}: temperature must be >= 0 K"
            )


@dataclass(frozen=True)
class Capacitor:
    name: str
    node_a: str
    node_b: str
    capacitance: float

    def __post_init__(self):
        if self.capacitance <= 0:
            raise ValueError(
                f"capacitor {self.name!r}: capacitance must be positive"
            )


@dataclass(frozen=True)
class Inductor:
    name: str
    node_a: str
    node_b: str
    inductance: float

    def __post_init__(self):
        if self.inductance <= 0:
            raise ValueError(
                f"inductor {self.name!r}: inductance must be positive"
            )


@dataclass(frozen=True)
class Vccs:
    """Current ``gm * exp(-j w tau) * (V(ctrl_p) - V(ctrl_n))`` flows
    from ``out_p`` to ``out_n`` through the source (into out_n node)."""

    name: str
    out_p: str
    out_n: str
    ctrl_p: str
    ctrl_n: str
    gm: float
    tau: float = 0.0


@dataclass(frozen=True)
class TransmissionLineElement:
    """A two-conductor line between (node_a, gnd) and (node_b, gnd)."""

    name: str
    node_a: str
    node_b: str
    z_characteristic: complex
    gamma_length: complex  # may be callable(f_hz) -> complex

    def y_matrix(self, f_hz: float) -> np.ndarray:
        gl = self.gamma_length(f_hz) if callable(self.gamma_length) else self.gamma_length
        zc = (
            self.z_characteristic(f_hz)
            if callable(self.z_characteristic)
            else self.z_characteristic
        )
        sinh_gl = np.sinh(gl)
        cosh_gl = np.cosh(gl)
        if abs(sinh_gl) < 1e-30:
            raise ValueError(
                f"line {self.name!r}: zero electrical length is singular; "
                "omit the element instead"
            )
        y0 = 1.0 / (zc * sinh_gl)
        return np.array(
            [[cosh_gl * y0, -y0], [-y0, cosh_gl * y0]], dtype=complex
        )


@dataclass(frozen=True)
class YBlock:
    """An N-terminal admittance block, e.g. a full transistor model.

    ``y_function(f_hz)`` must return an ``(n, n)`` complex admittance
    matrix referenced to the block's own terminal list (voltages are
    node-to-ground).  An optional ``cy_function(f_hz)`` returns the
    block's noise-current correlation matrix at the same terminals, in
    the 2kT-normalized convention of :mod:`repro.rf.noise`.
    """

    name: str
    nodes: Tuple[str, ...]
    y_function: Callable[[float], np.ndarray]
    cy_function: Optional[Callable[[float], np.ndarray]] = None


@dataclass(frozen=True)
class NoiseCurrent:
    """Noise current source between two nodes.

    ``psd(f_hz)`` must return the **2kT-normalized** current-noise
    density [A^2/Hz] used throughout :mod:`repro.rf.noise` — i.e. half
    the physical one-sided density.  A conductance ``g`` at temperature
    ``T`` corresponds to ``2 k T g``.
    """

    name: str
    node_a: str
    node_b: str
    psd: Callable[[float], float]


@dataclass(frozen=True)
class Port:
    name: str
    node: str
    z0: float = 50.0

    def __post_init__(self):
        if self.z0 <= 0:
            raise ValueError(f"port {self.name!r}: z0 must be positive")


class Circuit:
    """A mutable netlist builder.

    Nodes are created implicitly on first use.  All element names must
    be unique — a duplicate is almost always a construction bug in a
    generated circuit, so it raises immediately.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.elements: List[object] = []
        self.ports: List[Port] = []
        self._names: set = set()
        self._nodes: Dict[str, int] = {}

    # -- construction API -------------------------------------------------
    def resistor(self, name, node_a, node_b, resistance,
                 temperature=T_AMBIENT) -> "Circuit":
        self._add(Resistor(name, node_a, node_b, float(resistance),
                           float(temperature)))
        return self

    def capacitor(self, name, node_a, node_b, capacitance) -> "Circuit":
        self._add(Capacitor(name, node_a, node_b, float(capacitance)))
        return self

    def inductor(self, name, node_a, node_b, inductance) -> "Circuit":
        self._add(Inductor(name, node_a, node_b, float(inductance)))
        return self

    def vccs(self, name, out_p, out_n, ctrl_p, ctrl_n, gm,
             tau=0.0) -> "Circuit":
        self._add(Vccs(name, out_p, out_n, ctrl_p, ctrl_n, float(gm),
                       float(tau)))
        return self

    def transmission_line(self, name, node_a, node_b, z_characteristic,
                          gamma_length) -> "Circuit":
        self._add(TransmissionLineElement(name, node_a, node_b,
                                          z_characteristic, gamma_length))
        return self

    def y_block(self, name, nodes: Sequence[str], y_function,
                cy_function=None) -> "Circuit":
        self._add(YBlock(name, tuple(nodes), y_function, cy_function))
        return self

    def noise_current(self, name, node_a, node_b, psd) -> "Circuit":
        self._add(NoiseCurrent(name, node_a, node_b, psd))
        return self

    def port(self, name, node, z0=50.0) -> "Circuit":
        if any(p.name == name for p in self.ports):
            raise ValueError(f"duplicate port name {name!r}")
        self._register_node(node)
        self.ports.append(Port(name, node, float(z0)))
        return self

    # -- node bookkeeping ---------------------------------------------------
    @staticmethod
    def is_ground(node: str) -> bool:
        return node in GROUND_ALIASES

    @property
    def node_names(self) -> List[str]:
        """Non-ground node names in registration order."""
        return list(self._nodes)

    def node_index(self, node: str) -> int:
        """Index of a non-ground node, or -1 for ground."""
        if self.is_ground(node):
            return -1
        return self._nodes[node]

    def _register_node(self, node: str):
        if not self.is_ground(node) and node not in self._nodes:
            self._nodes[node] = len(self._nodes)

    def _add(self, element):
        if element.name in self._names:
            raise ValueError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        if isinstance(element, Vccs):
            nodes = [element.out_p, element.out_n,
                     element.ctrl_p, element.ctrl_n]
        else:
            nodes = getattr(element, "nodes", None)
            if nodes is None:
                nodes = [element.node_a, element.node_b]
        for node in nodes:
            self._register_node(node)
        self.elements.append(element)

    def __repr__(self):
        return (
            f"<Circuit {self.name!r}: {len(self.elements)} elements, "
            f"{len(self._nodes)} nodes, {len(self.ports)} ports>"
        )
