"""Small-signal AC analysis: N-port S-parameters and noise correlation.

The solver assembles the complex node-admittance tensor of a
:class:`~repro.analysis.netlist.Circuit` for the whole frequency grid
at once (elements stamp vectorized values), attaches the (noiseless)
port reference loads, and performs one batched factorization for all
right-hand sides:

* unit current injections at each port give the loaded impedance
  matrix, from which the network's own Y- and S-parameters follow;
* unit injections at every internal noise-source location give the
  transfer vectors that map source PSDs to the port noise-current
  correlation matrix ``CY`` (Hillbrand-Russer 2kT normalization, as
  everywhere in :mod:`repro.rf.noise`).

Frequency-dependent blocks (``YBlock.y_function``, ``cy_function``,
``NoiseCurrent.psd``) may accept the full frequency array and return a
stacked result; scalar-only callables are looped transparently.

For a two-port circuit the result converts directly into a
:class:`repro.rf.noise.NoisyTwoPort`, which is how the LNA design flow
consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.conditioning import equilibrated_solve, observe_condition
from repro.analysis.netlist import (
    Capacitor,
    Circuit,
    Inductor,
    NoiseCurrent,
    Resistor,
    TransmissionLineElement,
    Vccs,
    YBlock,
)
from repro.guards import modes as _guard_modes
from repro.obs import metrics as _obs_metrics
from repro.rf import conversions as cv
from repro.rf.frequency import FrequencyGrid
from repro.rf.noise import NoisyTwoPort, ca_from_cy
from repro.rf.twoport import TwoPort
from repro.util.constants import BOLTZMANN

__all__ = ["ACResult", "assemble_tensor", "solve_ac"]


@dataclass
class ACResult:
    """S-parameters and port noise correlation of a circuit."""

    frequency: FrequencyGrid
    s: np.ndarray          # (F, n_ports, n_ports)
    cy: np.ndarray         # (F, n_ports, n_ports), one-sided 2kT-normalized
    z0: float
    port_names: List[str]
    #: voltage transfer of probed nodes per unit current injected at each
    #: port (into the loaded network): shape (F, n_probes, n_ports).
    node_transfers: Optional[np.ndarray] = None
    probe_nodes: tuple = ()

    @property
    def y(self) -> np.ndarray:
        """Network Y-parameters (F, n, n)."""
        return cv.s_to_y(self.s, self.z0)

    def transfer_to(self, node: str) -> np.ndarray:
        """Voltage transfer of one probed node, shape (F, n_ports)."""
        if self.node_transfers is None:
            raise ValueError("solve_ac was called without probe_nodes")
        try:
            idx = self.probe_nodes.index(node)
        except ValueError:
            raise KeyError(
                f"node {node!r} was not probed (probed: {self.probe_nodes})"
            ) from None
        return self.node_transfers[:, idx, :]

    def as_twoport(self, name: str = "") -> TwoPort:
        """The signal-only two-port (requires exactly two ports)."""
        self._require_two_ports()
        return TwoPort(self.frequency, self.s, z0=self.z0, name=name)

    def as_noisy_twoport(self, name: str = "") -> NoisyTwoPort:
        """Signal + noise as a :class:`NoisyTwoPort` (two ports only)."""
        network = self.as_twoport(name)
        ca = ca_from_cy(self.cy, network.abcd)
        return NoisyTwoPort(network, ca)

    def _require_two_ports(self):
        if self.s.shape[-1] != 2:
            raise ValueError(
                f"circuit has {self.s.shape[-1]} ports, expected 2"
            )


def solve_ac(circuit: Circuit, frequency: FrequencyGrid,
             compute_noise: bool = True,
             probe_nodes: tuple = ()) -> ACResult:
    """Run AC + noise analysis of *circuit* over *frequency*.

    Raises ``ValueError`` for circuits without ports, with mixed port
    impedances, or with singular topology (floating sub-networks).
    """
    if not circuit.ports:
        raise ValueError("circuit has no ports; declare at least one")
    z0_values = {p.z0 for p in circuit.ports}
    if len(z0_values) != 1:
        raise ValueError(
            f"ports must share one reference impedance, got {sorted(z0_values)}"
        )
    z0 = circuit.ports[0].z0

    n_nodes = len(circuit.node_names)
    n_ports = len(circuit.ports)
    f_hz = frequency.f_hz
    n_freq = f_hz.size
    port_rows = np.array(
        [circuit.node_index(p.node) for p in circuit.ports], dtype=int
    )
    if np.any(port_rows < 0):
        raise ValueError("a port cannot be attached to ground")

    probe_rows = None
    if probe_nodes:
        # node_index raises KeyError for unknown nodes; ground probes are
        # index -1 and report zero voltage.
        probe_rows = [circuit.node_index(node) for node in probe_nodes]

    sources = _collect_noise_sources(circuit, f_hz) if compute_noise else []
    n_noise_cols = sum(len(s.columns) for s in sources)

    # ---- batched assembly -------------------------------------------------
    y_full = _assemble_tensor(circuit, f_hz, n_nodes)
    for row in port_rows:
        y_full[:, row, row] += 1.0 / z0  # noiseless reference loads

    rhs = np.zeros((n_nodes, n_ports + n_noise_cols), dtype=complex)
    for col, row in enumerate(port_rows):
        rhs[row, col] = 1.0
    col = n_ports
    for src in sources:
        for vec in src.columns:
            rhs[:, col] = vec
            col += 1

    if _guard_modes.enabled():
        # One sampled conditioning estimate per solve (mid-band matrix)
        # feeds the per-run histogram at negligible cost.
        observe_condition(y_full[n_freq // 2], "mna")
    rhs_full = np.broadcast_to(rhs, (n_freq,) + rhs.shape)
    try:
        solution = np.linalg.solve(y_full, rhs_full)
    except np.linalg.LinAlgError as exc:
        # Conditioning escalation: equilibrate + refine before giving
        # up.  Only reached when the plain factorization already
        # failed, so healthy solves stay bit-for-bit unchanged.
        solution = None
        if _guard_modes.enabled():
            try:
                candidate = equilibrated_solve(y_full, rhs_full)
            except np.linalg.LinAlgError:
                candidate = None
            if candidate is not None and np.all(np.isfinite(candidate)):
                solution = candidate
                _obs_metrics.inc("mna.equilibrated_rescues")
        if solution is None:
            raise ValueError(
                "singular circuit (floating node or degenerate element): "
                f"{exc}"
            ) from None

    v_ports = solution[:, port_rows, :]
    z_loaded = v_ports[:, :, :n_ports]
    z_loaded_inv = np.linalg.inv(z_loaded)
    g0 = np.eye(n_ports) / z0
    y_net = z_loaded_inv - g0
    s_out = cv.y_to_s(y_net, z0)

    transfers = None
    if probe_rows is not None:
        transfers = np.zeros((n_freq, len(probe_nodes), n_ports),
                             dtype=complex)
        for k, row in enumerate(probe_rows):
            if row >= 0:
                transfers[:, k, :] = solution[:, row, :n_ports]

    cy_out = np.zeros((n_freq, n_ports, n_ports), dtype=complex)
    if compute_noise and sources:
        col = n_ports
        for src in sources:
            width = len(src.columns)
            transfer = v_ports[:, :, col:col + width]
            col += width
            # Port-referred noise currents: i_n = -(Y_net + G0) v_loaded.
            i_n = -z_loaded_inv @ transfer
            i_n_h = np.conjugate(np.swapaxes(i_n, -1, -2))
            psd = src.psd_array  # (F,) scalars or (F, w, w) matrices
            if psd.ndim == 1:
                cy_out += psd[:, None, None] * (i_n @ i_n_h)
            else:
                cy_out += i_n @ psd @ i_n_h

    return ACResult(frequency=frequency, s=s_out, cy=cy_out, z0=z0,
                    port_names=[p.name for p in circuit.ports],
                    node_transfers=transfers,
                    probe_nodes=tuple(probe_nodes))


# ----------------------------------------------------------------------
# assembly helpers
# ----------------------------------------------------------------------

def _assemble_tensor(circuit: Circuit, f_hz: np.ndarray,
                     n_nodes: int, elements=None) -> np.ndarray:
    """The (F, n, n) node-admittance tensor of the circuit.

    *elements* restricts assembly to a subset of ``circuit.elements``
    (used by the compiled batch engine to stamp only the
    design-invariant part once); the default stamps everything.
    """
    omega = 2.0 * np.pi * f_hz
    n_freq = f_hz.size
    y = np.zeros((n_freq, n_nodes, n_nodes), dtype=complex)
    for element in (circuit.elements if elements is None else elements):
        if isinstance(element, Resistor):
            _stamp_admittance(y, circuit, element.node_a, element.node_b,
                              1.0 / element.resistance)
        elif isinstance(element, Capacitor):
            _stamp_admittance(y, circuit, element.node_a, element.node_b,
                              1j * omega * element.capacitance)
        elif isinstance(element, Inductor):
            _stamp_admittance(y, circuit, element.node_a, element.node_b,
                              1.0 / (1j * omega * element.inductance))
        elif isinstance(element, Vccs):
            gm = element.gm * np.exp(-1j * omega * element.tau)
            _stamp_vccs(y, circuit, element, gm)
        elif isinstance(element, TransmissionLineElement):
            block = _eval_block(element.y_matrix, f_hz, 2)
            _stamp_block(y, circuit, (element.node_a, element.node_b), block)
        elif isinstance(element, YBlock):
            block = _eval_block(element.y_function, f_hz, len(element.nodes))
            _stamp_block(y, circuit, element.nodes, block)
        elif isinstance(element, NoiseCurrent):
            pass  # no signal contribution
        else:
            raise TypeError(f"unknown element type {type(element).__name__}")
    return y


#: Public name of the tensor assembler.  The batched solver tiers
#: (:mod:`repro.analysis.compiled` dense, :mod:`repro.analysis.sparsemna`
#: condensed) both consume its output, so external callers building
#: custom batches should use this instead of the private underscore
#: name.
assemble_tensor = _assemble_tensor


def _eval_block(function, f_hz: np.ndarray, n_terminals: int) -> np.ndarray:
    """Evaluate a block callable over the grid, vectorized when possible."""
    n_freq = f_hz.size
    expected = (n_freq, n_terminals, n_terminals)
    try:
        result = np.asarray(function(f_hz), dtype=complex)
        if result.shape == expected:
            return result
        if result.shape == (n_terminals, n_terminals) and n_freq == 1:
            return result[None, :, :]
    except (TypeError, ValueError):
        pass  # scalar-only callable: fall through to the loop
    stacked = np.empty(expected, dtype=complex)
    for idx, f in enumerate(f_hz):
        stacked[idx] = np.asarray(function(float(f)), dtype=complex)
    return stacked


def _eval_psd(function, f_hz: np.ndarray) -> np.ndarray:
    """Evaluate a scalar PSD callable over the grid, shape (F,)."""
    try:
        result = np.asarray(function(f_hz), dtype=float)
        if result.shape == f_hz.shape:
            return result
        if result.ndim == 0:
            return np.full(f_hz.shape, float(result))
    except (TypeError, ValueError):
        pass
    return np.array([float(function(float(f))) for f in f_hz])


def _stamp_admittance(y, circuit, node_a, node_b, value):
    a = circuit.node_index(node_a)
    b = circuit.node_index(node_b)
    if a >= 0:
        y[:, a, a] += value
    if b >= 0:
        y[:, b, b] += value
    if a >= 0 and b >= 0:
        y[:, a, b] -= value
        y[:, b, a] -= value


def _stamp_vccs(y, circuit, element: Vccs, gm):
    op = circuit.node_index(element.out_p)
    on = circuit.node_index(element.out_n)
    cp = circuit.node_index(element.ctrl_p)
    cn = circuit.node_index(element.ctrl_n)
    # Current gm * (Vcp - Vcn) flows out of node out_p, into node out_n.
    for out_idx, sign in ((op, +1.0), (on, -1.0)):
        if out_idx < 0:
            continue
        if cp >= 0:
            y[:, out_idx, cp] += sign * gm
        if cn >= 0:
            y[:, out_idx, cn] -= sign * gm


def _stamp_block(y, circuit, nodes, block):
    indices = [circuit.node_index(node) for node in nodes]
    for i, gi in enumerate(indices):
        if gi < 0:
            continue
        for j, gj in enumerate(indices):
            if gj < 0:
                continue
            y[:, gi, gj] += block[:, i, j]


# ----------------------------------------------------------------------
# noise-source bookkeeping
# ----------------------------------------------------------------------

class _NoiseSource:
    """Internal record: injection columns + pre-evaluated PSD array."""

    def __init__(self, columns, psd_array):
        self.columns = columns        # list of node-space injection vectors
        self.psd_array = psd_array    # (F,) or (F, w, w)


def _collect_noise_sources(circuit: Circuit, f_hz: np.ndarray,
                           elements=None) -> List["_NoiseSource"]:
    n_nodes = len(circuit.node_names)
    sources: List[_NoiseSource] = []
    for element in (circuit.elements if elements is None else elements):
        if isinstance(element, Resistor):
            if element.temperature <= 0:
                continue
            vec = _injection(circuit, element.node_a, element.node_b, n_nodes)
            # 2kT/R: the Hillbrand-Russer normalization used throughout
            # repro.rf.noise (half the physical one-sided 4kT/R density;
            # the factor cancels in every noise-figure ratio).
            psd_value = (
                2.0 * BOLTZMANN * element.temperature / element.resistance
            )
            sources.append(_NoiseSource(
                [vec], np.full(f_hz.shape, psd_value)
            ))
        elif isinstance(element, NoiseCurrent):
            vec = _injection(circuit, element.node_a, element.node_b, n_nodes)
            sources.append(_NoiseSource([vec], _eval_psd(element.psd, f_hz)))
        elif isinstance(element, YBlock) and element.cy_function is not None:
            columns = []
            for node in element.nodes:
                vec = np.zeros(n_nodes, dtype=complex)
                idx = circuit.node_index(node)
                if idx >= 0:
                    vec[idx] = 1.0
                columns.append(vec)
            cy = _eval_block(element.cy_function, f_hz, len(element.nodes))
            sources.append(_NoiseSource(columns, cy))
    return sources


def _injection(circuit, node_a, node_b, n_nodes) -> np.ndarray:
    vec = np.zeros(n_nodes, dtype=complex)
    a = circuit.node_index(node_a)
    b = circuit.node_index(node_b)
    if a >= 0:
        vec[a] = 1.0
    if b >= 0:
        vec[b] = -1.0
    return vec
