"""DC operating-point solver (damped Newton on nodal equations).

Used by the amplifier design flow to find the bias point a concrete
bias network establishes (supply + resistors + the nonlinear FET), and
by the extraction pipeline to evaluate candidate model I-V surfaces
inside realistic fixtures.

Supported elements: resistor, independent voltage source, independent
current source, and a three-terminal FET whose model exposes
``ids(vgs, vds)`` plus the partial derivatives ``gm(vgs, vds)`` and
``gds(vgs, vds)`` (every model in :mod:`repro.devices.dcmodels` does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.conditioning import equilibrated_solve, observe_condition
from repro.guards import modes as _guard_modes
from repro.obs import metrics as _obs_metrics
from repro.obs import tracer as _obs_tracer

__all__ = ["DcCircuit", "DcSolution", "DcConvergenceError"]

_GROUND = ("0", "gnd", "GND")
_GMIN = 1e-12  # tiny conductance from every node to ground, aids convergence
_MAX_STEP_V = 0.5


class DcConvergenceError(RuntimeError):
    """Raised when the Newton iteration fails to converge."""


@dataclass
class DcSolution:
    """Converged node voltages and per-FET operating points."""

    voltages: Dict[str, float]
    fet_bias: Dict[str, Dict[str, float]]
    iterations: int

    def v(self, node: str) -> float:
        """Voltage of *node* (ground returns 0)."""
        if node in _GROUND:
            return 0.0
        return self.voltages[node]


class _Resistor:
    def __init__(self, name, a, b, r):
        if r <= 0:
            raise ValueError(f"resistor {name!r}: resistance must be positive")
        self.name, self.a, self.b, self.g = name, a, b, 1.0 / float(r)


class _VSource:
    def __init__(self, name, pos, neg, v):
        self.name, self.pos, self.neg, self.v = name, pos, neg, float(v)


class _ISource:
    def __init__(self, name, into, out_of, i):
        self.name, self.into, self.out_of, self.i = name, into, out_of, float(i)


class _Fet:
    def __init__(self, name, drain, gate, source, model):
        for attr in ("ids", "gm", "gds"):
            if not hasattr(model, attr):
                raise TypeError(
                    f"FET model for {name!r} must provide .{attr}(vgs, vds)"
                )
        self.name = name
        self.drain, self.gate, self.source = drain, gate, source
        self.model = model


class DcCircuit:
    """A nonlinear DC netlist with a damped-Newton solver."""

    def __init__(self, name: str = ""):
        self.name = name
        self._resistors: List[_Resistor] = []
        self._vsources: List[_VSource] = []
        self._isources: List[_ISource] = []
        self._fets: List[_Fet] = []
        self._nodes: Dict[str, int] = {}

    # -- construction -----------------------------------------------------
    def resistor(self, name, node_a, node_b, resistance) -> "DcCircuit":
        self._resistors.append(_Resistor(name, node_a, node_b, resistance))
        self._touch(node_a, node_b)
        return self

    def vsource(self, name, node_pos, node_neg, volts) -> "DcCircuit":
        self._vsources.append(_VSource(name, node_pos, node_neg, volts))
        self._touch(node_pos, node_neg)
        return self

    def isource(self, name, node_into, node_out_of, amps) -> "DcCircuit":
        self._isources.append(_ISource(name, node_into, node_out_of, amps))
        self._touch(node_into, node_out_of)
        return self

    def fet(self, name, drain, gate, source, model) -> "DcCircuit":
        self._fets.append(_Fet(name, drain, gate, source, model))
        self._touch(drain, gate, source)
        return self

    def _touch(self, *nodes):
        for node in nodes:
            if node not in _GROUND and node not in self._nodes:
                self._nodes[node] = len(self._nodes)

    def _index(self, node: str) -> int:
        return -1 if node in _GROUND else self._nodes[node]

    # -- solver ------------------------------------------------------------
    def solve(self, max_iterations: int = 200,
              tolerance: float = 1e-10) -> DcSolution:
        """Find the DC operating point; raises on non-convergence."""
        with _obs_tracer.span("dc.solve", circuit=self.name):
            solution = self._solve(max_iterations, tolerance)
        _obs_metrics.inc("dc.solves")
        _obs_metrics.observe("dc.newton_iterations", solution.iterations)
        return solution

    def _solve(self, max_iterations: int, tolerance: float) -> DcSolution:
        n = len(self._nodes)
        m = len(self._vsources)
        x = np.zeros(n + m)
        # Seed node voltages from the sources to shorten the Newton path.
        for k, src in enumerate(self._vsources):
            pos = self._index(src.pos)
            if pos >= 0:
                x[pos] = src.v

        for iteration in range(1, max_iterations + 1):
            jacobian, residual = self._linearize(x, n, m)
            if iteration == 1 and _guard_modes.enabled():
                # One conditioning sample per solve feeds the per-run
                # histogram of Newton-Jacobian conditioning.
                observe_condition(jacobian, "dc.jacobian")
            try:
                delta = np.linalg.solve(jacobian, -residual)
            except np.linalg.LinAlgError as exc:
                _obs_metrics.inc("dc.singular_jacobians")
                # Conditioning escalation: equilibrate + refine before
                # declaring the Newton step unsolvable.
                delta = None
                if _guard_modes.enabled():
                    try:
                        candidate = equilibrated_solve(jacobian, -residual)
                    except np.linalg.LinAlgError:
                        candidate = None
                    if candidate is not None and np.all(
                        np.isfinite(candidate)
                    ):
                        delta = candidate
                        _obs_metrics.inc("dc.equilibrated_rescues")
                if delta is None:
                    raise DcConvergenceError(
                        f"singular DC Jacobian in {self.name!r}: {exc}"
                    ) from None
            step = np.max(np.abs(delta[:n])) if n else 0.0
            if step > _MAX_STEP_V:
                delta = delta * (_MAX_STEP_V / step)
            x = x + delta
            if np.max(np.abs(delta)) < tolerance:
                return self._package(x, iteration)
        _obs_metrics.inc("dc.non_convergent")
        raise DcConvergenceError(
            f"DC analysis of {self.name!r} did not converge in "
            f"{max_iterations} iterations"
        )

    def _linearize(self, x, n, m):
        jac = np.zeros((n + m, n + m))
        res = np.zeros(n + m)
        volts = x[:n]

        def v_of(idx):
            return 0.0 if idx < 0 else volts[idx]

        for i in range(n):
            jac[i, i] += _GMIN
            res[i] += _GMIN * volts[i]

        for r in self._resistors:
            a, b = self._index(r.a), self._index(r.b)
            current = r.g * (v_of(a) - v_of(b))
            if a >= 0:
                res[a] += current
                jac[a, a] += r.g
                if b >= 0:
                    jac[a, b] -= r.g
            if b >= 0:
                res[b] -= current
                jac[b, b] += r.g
                if a >= 0:
                    jac[b, a] -= r.g

        for src in self._isources:
            into, out = self._index(src.into), self._index(src.out_of)
            if into >= 0:
                res[into] -= src.i
            if out >= 0:
                res[out] += src.i

        for fet in self._fets:
            d = self._index(fet.drain)
            g = self._index(fet.gate)
            s = self._index(fet.source)
            vgs = v_of(g) - v_of(s)
            vds = v_of(d) - v_of(s)
            ids = float(fet.model.ids(vgs, vds))
            gm = float(fet.model.gm(vgs, vds))
            gds = float(fet.model.gds(vgs, vds))
            # KCL: ids leaves the drain node and enters the source node.
            stamps = ((d, +1.0), (s, -1.0))
            for node, sign in stamps:
                if node < 0:
                    continue
                res[node] += sign * ids
                if g >= 0:
                    jac[node, g] += sign * gm
                if d >= 0:
                    jac[node, d] += sign * gds
                if s >= 0:
                    jac[node, s] -= sign * (gm + gds)

        for k, src in enumerate(self._vsources):
            row = n + k
            pos, neg = self._index(src.pos), self._index(src.neg)
            res[row] = v_of(pos) - v_of(neg) - src.v
            if pos >= 0:
                jac[row, pos] += 1.0
                jac[pos, row] += 1.0
                res[pos] += x[row]
            if neg >= 0:
                jac[row, neg] -= 1.0
                jac[neg, row] -= 1.0
                res[neg] -= x[row]
        return jac, res

    def _package(self, x, iterations) -> DcSolution:
        n = len(self._nodes)
        voltages = {
            node: float(x[idx]) for node, idx in self._nodes.items()
        }

        def v_of(node):
            return 0.0 if node in _GROUND else voltages[node]

        fet_bias = {}
        for fet in self._fets:
            vgs = v_of(fet.gate) - v_of(fet.source)
            vds = v_of(fet.drain) - v_of(fet.source)
            fet_bias[fet.name] = {
                "vgs": vgs,
                "vds": vds,
                "ids": float(fet.model.ids(vgs, vds)),
                "gm": float(fet.model.gm(vgs, vds)),
                "gds": float(fet.model.gds(vgs, vds)),
            }
        return DcSolution(voltages=voltages, fet_bias=fet_bias,
                          iterations=iterations)
