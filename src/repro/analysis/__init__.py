"""From-scratch circuit simulation substrate.

* :mod:`repro.analysis.netlist` — the element/circuit data model.
* :mod:`repro.analysis.acsolver` — MNA small-signal S-parameter and
  noise-correlation analysis.
* :mod:`repro.analysis.dc` — nonlinear DC operating-point solver.
"""

from repro.analysis.netlist import Circuit
from repro.analysis.acsolver import ACResult, solve_ac
from repro.analysis.compiled import (
    BatchACResult,
    BatchNoiseSource,
    solve_ac_batch,
    solve_tensor_batch,
)
from repro.analysis.dc import DcCircuit, DcConvergenceError, DcSolution

__all__ = [
    "Circuit",
    "ACResult",
    "solve_ac",
    "BatchACResult",
    "BatchNoiseSource",
    "solve_ac_batch",
    "solve_tensor_batch",
    "DcCircuit",
    "DcConvergenceError",
    "DcSolution",
]
