"""Numerical-conditioning guards for the MNA and DC solvers.

The admittance matrices this toolkit factorizes span element values
over fourteen orders of magnitude, so an optimizer probing the corner
of the design box can hand the solver a matrix that is *numerically*
singular while the circuit is physically fine.  Two tools defuse that:

* :func:`condition_log10` — a cheap ``log10`` 1-norm condition
  estimate (the matrices are tiny, so the explicit inverse is cheaper
  than an iterative estimator), sampled into per-run ``Metrics``
  histograms by :func:`observe_condition`;
* :func:`equilibrated_solve` — row/column equilibration followed by
  one step of iterative refinement, the escalation the solvers try on
  a factorization that failed or went non-finite *before* giving up on
  the row.  It is only ever invoked on already-failing solves, so
  healthy results remain bit-for-bit identical to the plain
  ``np.linalg.solve`` path.
"""

from __future__ import annotations

import numpy as np

from repro.guards import modes as _guard_modes
from repro.obs import metrics as _obs_metrics

__all__ = [
    "condition_log10",
    "observe_condition",
    "observe_residual",
    "equilibrated_solve",
]


def condition_log10(matrix: np.ndarray) -> float:
    """``log10`` of the 1-norm condition number of one (n, n) matrix.

    Returns ``inf`` for exactly singular matrices.  Intended for the
    small (tens-of-nodes) MNA matrices where the explicit inverse
    costs microseconds.
    """
    a = np.asarray(matrix)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {a.shape}")
    if not np.all(np.isfinite(a)):
        return float("inf")
    try:
        inv = np.linalg.inv(a)
    except np.linalg.LinAlgError:
        return float("inf")
    norm_a = float(np.max(np.sum(np.abs(a), axis=0)))
    norm_inv = float(np.max(np.sum(np.abs(inv), axis=0)))
    cond = norm_a * norm_inv
    if not np.isfinite(cond) or cond < 1.0:
        return 0.0 if cond < 1.0 else float("inf")
    return float(np.log10(cond))


def observe_condition(matrix: np.ndarray, where: str) -> float:
    """Sample one matrix's condition into the ``<where>.condition_log10``
    histogram (no-op with guards off).  Returns the estimate."""
    if not _guard_modes.enabled():
        return 0.0
    value = condition_log10(matrix)
    _obs_metrics.observe(
        f"{where}.condition_log10", value if np.isfinite(value) else 320.0
    )
    return value


def observe_residual(value: float, where: str) -> None:
    """Sample one relative residual into the ``<where>.residual_log10``
    histogram (no-op with guards off).

    Used by the sparse solver's low-rank update path: the distribution
    of a-posteriori residuals tells a run how close its Woodbury
    updates sail to the refactorization threshold.  Zero (an exactly
    satisfied system) clamps to the histogram floor instead of
    ``-inf``; non-finite residuals clamp to the ceiling.
    """
    if not _guard_modes.enabled():
        return
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        log = 320.0
    else:
        log = float(np.log10(max(value, 1e-320)))
    _obs_metrics.observe(f"{where}.residual_log10", log)


def _scale_vector(magnitudes: np.ndarray) -> np.ndarray:
    """Safe equilibration scales: zero/non-finite rows scale by 1."""
    return np.where(
        (magnitudes > 0.0) & np.isfinite(magnitudes), magnitudes, 1.0
    )


def equilibrated_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a x = b`` with equilibration + one refinement step.

    Row scaling ``R`` (infinity-norm) then column scaling ``C`` turn
    ``a`` into ``R a C`` with entries of order one; the solution of the
    scaled system is mapped back and polished with a single iterative
    refinement step against the *original* matrix.  Supports the same
    broadcasting as ``np.linalg.solve``: ``a`` is ``(..., n, n)``,
    ``b`` is ``(..., n)`` or ``(..., n, k)``.  Raises
    ``numpy.linalg.LinAlgError`` when the equilibrated matrix is still
    singular.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    vector_rhs = b.ndim == a.ndim - 1
    if vector_rhs:
        b = b[..., None]

    row = _scale_vector(np.max(np.abs(a), axis=-1))        # (..., n)
    a_rows = a / row[..., :, None]
    col = _scale_vector(np.max(np.abs(a_rows), axis=-2))   # (..., n)
    a_scaled = a_rows / col[..., None, :]

    y = np.linalg.solve(a_scaled, b / row[..., :, None])
    x = y / col[..., :, None]

    # One refinement step against the unscaled system knocks the
    # equilibration round-off back down toward machine precision.
    residual = b - a @ x
    dy = np.linalg.solve(a_scaled, residual / row[..., :, None])
    x = x + dy / col[..., :, None]
    return x[..., 0] if vector_rhs else x
