"""Bias-dependent small-signal pHEMT model with parasitic shell.

The standard 15-element equivalent circuit::

            Lg   Rg        Cgd          Rd   Ld
    G o----UUU--www---+----||----+----www--UUU----o D
                      |          |
                      Ri        +-+  +---+
                      |     gm* | | gds,Cds
                      Cgs       +-+  +---+
                      |          |
                      +----+-----+
                           |
                           Rs
                           Ls
                           |
                           o S
    (pad capacitances Cpg / Cpd from the outer terminals to ground)

``gm* = gm exp(-j w tau) * Vcgs`` is controlled by the voltage across
Cgs.  The intrinsic elements derive from a DC model (gm, gds at bias)
plus bias-dependent capacitance laws; the result can be evaluated
analytically (fast path, used inside optimization loops) or emitted as
an MNA sub-circuit with Pospieszalski noise sources (gate resistance
``Ri`` at ``Tg``, drain conductance at ``Td``), which is the reference
noise path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.netlist import Circuit
from repro.devices.dcmodels import FetDcModel
from repro.rf.frequency import FrequencyGrid
from repro.rf.twoport import TwoPort
from repro.util.constants import BOLTZMANN, T_AMBIENT

__all__ = [
    "IntrinsicParams",
    "ExtrinsicParams",
    "CapacitanceModel",
    "PHEMTSmallSignal",
    "embed_intrinsic",
]


def embed_intrinsic(intrinsic: "IntrinsicParams",
                    extrinsics: "ExtrinsicParams",
                    frequency: FrequencyGrid, z0: float = 50.0,
                    name: str = "phemt") -> TwoPort:
    """Embed an intrinsic device in its parasitic shell -> common-source S.

    The embedding follows the classic three-stage sequence (series
    source impedance on all Z entries, series gate/drain impedances on
    the diagonal, pad capacitances on the final Y diagonal); the test
    suite asserts it matches the MNA solution to machine precision.
    """
    omega = frequency.omega
    y_int = intrinsic.y_matrix(omega)
    z = np.linalg.inv(y_int)
    z_source = extrinsics.rs + 1j * omega * extrinsics.ls
    z = z + z_source[:, None, None]
    z[:, 0, 0] += extrinsics.rg + 1j * omega * extrinsics.lg
    z[:, 1, 1] += extrinsics.rd + 1j * omega * extrinsics.ld
    y = np.linalg.inv(z)
    y[:, 0, 0] += 1j * omega * extrinsics.cpg
    y[:, 1, 1] += 1j * omega * extrinsics.cpd
    return TwoPort.from_y(frequency, y, z0=z0, name=name)


@dataclass(frozen=True)
class IntrinsicParams:
    """Intrinsic equivalent-circuit values at one bias point."""

    gm: float        # [S]
    gds: float       # [S]
    cgs: float       # [F]
    cgd: float       # [F]
    cds: float       # [F]
    ri: float        # [ohm] gate charging resistance
    tau: float       # [s] transconductance delay

    @property
    def ft_hz(self) -> float:
        """Unity-current-gain frequency estimate gm / 2π(Cgs+Cgd)."""
        return self.gm / (2.0 * np.pi * (self.cgs + self.cgd))

    def y_matrix(self, omega) -> np.ndarray:
        """Intrinsic common-source Y-parameters, shape (F, 2, 2)."""
        omega = np.atleast_1d(np.asarray(omega, dtype=float))
        jw = 1j * omega
        gate_branch = jw * self.cgs / (1.0 + jw * self.ri * self.cgs)
        y = np.empty((omega.size, 2, 2), dtype=complex)
        y[:, 0, 0] = gate_branch + jw * self.cgd
        y[:, 0, 1] = -jw * self.cgd
        y[:, 1, 0] = (
            self.gm
            * np.exp(-jw * self.tau)
            / (1.0 + jw * self.ri * self.cgs)
            - jw * self.cgd
        )
        y[:, 1, 1] = self.gds + jw * (self.cds + self.cgd)
        return y


@dataclass(frozen=True)
class ExtrinsicParams:
    """Package/access parasitics (bias independent)."""

    rg: float = 1.0       # [ohm]
    rd: float = 2.0
    rs: float = 0.5
    lg: float = 0.45e-9   # [H]
    ld: float = 0.55e-9
    ls: float = 0.20e-9
    cpg: float = 0.25e-12  # [F] pad capacitances to ground
    cpd: float = 0.25e-12


@dataclass(frozen=True)
class CapacitanceModel:
    """Bias laws for the intrinsic capacitances (Angelov-style).

    ``Cgs`` follows the gate charge build-up with a tanh transition
    around ``vpk``; ``Cgd`` collapses with drain voltage as the
    depletion region widens.
    """

    cgs0: float = 0.35e-12   # floor [F]
    cgs1: float = 0.55e-12   # tanh swing [F]
    pg: float = 3.0          # [1/V] transition steepness
    vm: float = 0.35         # [V] transition centre
    cgd0: float = 0.08e-12   # floor [F]
    cgd1: float = 0.18e-12   # vds-collapsing part [F]
    vcd: float = 1.0         # [V] collapse scale
    cds: float = 0.28e-12
    ri: float = 1.4          # [ohm]
    tau: float = 2.0e-12     # [s]

    def cgs(self, vgs) -> np.ndarray:
        vgs = np.asarray(vgs, dtype=float)
        return self.cgs0 + self.cgs1 * 0.5 * (
            1.0 + np.tanh(self.pg * (vgs - self.vm))
        )

    def cgd(self, vds) -> np.ndarray:
        vds = np.asarray(vds, dtype=float)
        return self.cgd0 + self.cgd1 / (1.0 + np.maximum(vds, 0.0) / self.vcd)


class PHEMTSmallSignal:
    """A complete bias-dependent small-signal + noise pHEMT model.

    Parameters
    ----------
    dc_model:
        Any :class:`~repro.devices.dcmodels.FetDcModel`; supplies
        gm(Vgs, Vds) and gds(Vgs, Vds).
    capacitances:
        Bias laws for the intrinsic reactive elements.
    extrinsics:
        The parasitic shell.
    tg, td0, td_slope:
        Pospieszalski noise temperatures: the gate resistance ``Ri``
        sits at ``Tg``; the drain conductance at
        ``Td = td0 + td_slope * Ids`` (drain noise grows with current,
        the empirically observed behaviour).
    """

    def __init__(self, dc_model: FetDcModel,
                 capacitances: Optional[CapacitanceModel] = None,
                 extrinsics: Optional[ExtrinsicParams] = None,
                 tg: float = 300.0, td0: float = 700.0,
                 td_slope: float = 12000.0):
        self.dc_model = dc_model
        self.capacitances = capacitances or CapacitanceModel()
        self.extrinsics = extrinsics or ExtrinsicParams()
        self.tg = float(tg)
        self.td0 = float(td0)
        self.td_slope = float(td_slope)

    # -- bias mapping -------------------------------------------------------
    def intrinsic_at(self, vgs: float, vds: float) -> IntrinsicParams:
        """Evaluate the intrinsic elements at a bias point."""
        caps = self.capacitances
        return IntrinsicParams(
            gm=float(self.dc_model.gm(vgs, vds)),
            gds=float(self.dc_model.gds(vgs, vds)),
            cgs=float(caps.cgs(vgs)),
            cgd=float(caps.cgd(vds)),
            cds=caps.cds,
            ri=caps.ri,
            tau=caps.tau,
        )

    def drain_temperature(self, vgs: float, vds: float) -> float:
        """Pospieszalski drain temperature Td at a bias point [K]."""
        ids = float(self.dc_model.ids(vgs, vds))
        return self.td0 + self.td_slope * ids

    # -- analytic two-port ----------------------------------------------------
    def twoport(self, frequency: FrequencyGrid, vgs: float, vds: float,
                z0: float = 50.0, name: str = "phemt") -> TwoPort:
        """Common-source S-parameters at a bias (analytic embedding)."""
        intrinsic = self.intrinsic_at(vgs, vds)
        return embed_intrinsic(intrinsic, self.extrinsics, frequency,
                               z0=z0, name=name)

    # -- MNA emission -----------------------------------------------------------
    def add_to(self, circuit: Circuit, gate: str, drain: str, source: str,
               vgs: float, vds: float, prefix: str = "Q",
               temperature: float = T_AMBIENT) -> Circuit:
        """Insert the biased device into a netlist with noise sources.

        Internal nodes are prefixed with *prefix*; ``source`` may be any
        node (ground or a degeneration network).
        """
        intrinsic = self.intrinsic_at(vgs, vds)
        ext = self.extrinsics
        n = lambda suffix: f"{prefix}_{suffix}"  # noqa: E731 - local shorthand

        circuit.inductor(n("Lg"), gate, n("g1"), ext.lg)
        circuit.resistor(n("Rg"), n("g1"), n("gi"), ext.rg,
                         temperature=temperature)
        circuit.inductor(n("Ld"), drain, n("d1"), ext.ld)
        circuit.resistor(n("Rd"), n("d1"), n("di"), ext.rd,
                         temperature=temperature)
        circuit.inductor(n("Ls"), source, n("s1"), ext.ls)
        circuit.resistor(n("Rs"), n("s1"), n("si"), ext.rs,
                         temperature=temperature)

        # Intrinsic network; Ri carries the Pospieszalski gate temperature.
        circuit.resistor(n("Ri"), n("gi"), n("x"), intrinsic.ri,
                         temperature=self.tg)
        circuit.capacitor(n("Cgs"), n("x"), n("si"), intrinsic.cgs)
        circuit.capacitor(n("Cgd"), n("gi"), n("di"), intrinsic.cgd)
        circuit.capacitor(n("Cds"), n("di"), n("si"), intrinsic.cds)
        circuit.vccs(n("gm"), n("di"), n("si"), n("x"), n("si"),
                     intrinsic.gm, tau=intrinsic.tau)
        if intrinsic.gds <= 0:
            raise ValueError(
                f"device bias Vgs={vgs:.3f} V, Vds={vds:.2f} V yields "
                f"non-positive gds = {intrinsic.gds:.3e} S; the small-signal "
                "model is only valid in the saturated forward region"
            )
        # The channel conductance is stamped noiseless; its noise is the
        # dedicated drain-temperature source below (Pospieszalski).
        circuit.resistor(n("Gds"), n("di"), n("si"),
                         1.0 / intrinsic.gds, temperature=0.0)
        td = self.drain_temperature(vgs, vds)
        psd = 2.0 * BOLTZMANN * td * intrinsic.gds
        circuit.noise_current(n("ind"), n("di"), n("si"),
                              lambda f_hz, _psd=psd: _psd)

        # Pad capacitances go to board ground.
        circuit.capacitor(n("Cpg"), gate, "gnd", ext.cpg)
        circuit.capacitor(n("Cpd"), drain, "gnd", ext.cpd)
        return circuit

    def as_noisy_twoport(self, frequency: FrequencyGrid, vgs: float,
                         vds: float, z0: float = 50.0, name: str = "phemt"):
        """Reference path: solve the device MNA for signal + noise."""
        from repro.analysis.acsolver import solve_ac
        from repro.rf.noise import NoisyTwoPort  # noqa: F401 - return type

        circuit = Circuit(name)
        circuit.port("p1", "gate_t", z0=z0)
        circuit.port("p2", "drain_t", z0=z0)
        self.add_to(circuit, "gate_t", "drain_t", "gnd", vgs, vds)
        result = solve_ac(circuit, frequency)
        return result.as_noisy_twoport(name)

    def __repr__(self):
        return (
            f"<PHEMTSmallSignal dc={type(self.dc_model).__name__} "
            f"Tg={self.tg:g}K Td0={self.td0:g}K>"
        )
