"""Analytic FET noise approximations (Fukui) for cross-checks.

The reference noise path is the Pospieszalski temperature model solved
through the MNA simulator (:meth:`PHEMTSmallSignal.as_noisy_twoport`).
The closed-form Fukui expression here provides an independent sanity
check: both must agree on the trend NFmin ∝ f and on the magnitude to
within the fudge factor's tolerance, which the test suite asserts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fukui_nfmin_db", "fukui_fmin"]


def fukui_fmin(f_hz, gm, cgs, cgd, rg, rs, fitting_factor: float = 0.22):
    """Fukui's minimum noise factor (linear).

    ``Fmin = 1 + 2 pi kf (f / fT) sqrt(gm (Rg + Rs))`` with
    ``fT = gm / 2π(Cgs + Cgd)``.  The fitting factor ``kf`` absorbs the
    technology dependence (Fukui's role for it); the default is
    calibrated so the expression matches the golden device's
    Pospieszalski NFmin over the GNSS band, giving an independent
    closed-form cross-check of the MNA noise path.
    """
    f = np.asarray(f_hz, dtype=float)
    if gm <= 0:
        raise ValueError("gm must be positive")
    ft = gm / (2.0 * np.pi * (cgs + cgd))
    return 1.0 + fitting_factor * (f / ft) * np.sqrt(gm * (rg + rs)) * 2.0 * np.pi


def fukui_nfmin_db(f_hz, gm, cgs, cgd, rg, rs,
                   fitting_factor: float = 0.035):
    """Fukui NFmin in dB; see :func:`fukui_fmin`."""
    return 10.0 * np.log10(
        fukui_fmin(f_hz, gm, cgs, cgd, rg, rs, fitting_factor)
    )
