"""Large-signal DC drain-current models for GaAs pHEMTs.

The paper's first step compares **several transistor models** during
parameter extraction.  This module implements the five classic
compact-model families used for MESFET/pHEMT design:

* :class:`CurticeQuadratic` — Curtice (1980) square-law model;
* :class:`CurticeCubic`    — Curtice-Ettenberg (1985) cubic model;
* :class:`StatzModel`      — Statz et al. (1987), a.k.a. Raytheon model;
* :class:`TomModel`        — TriQuint's Own Model (McCamant 1990);
* :class:`AngelovModel`    — Angelov/Chalmers (1992) tanh model.

Every model exposes the same interface: ``ids(vgs, vds)`` (vectorized),
the derivatives ``gm`` / ``gds``, and a flat parameter vector with
bounds for the extraction machinery.  ``ids`` is defined for
``vds >= 0`` (forward operation, which is all the extraction datasets
exercise).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import ClassVar, Dict, Tuple

import numpy as np

__all__ = [
    "FetDcModel",
    "CurticeQuadratic",
    "CurticeCubic",
    "StatzModel",
    "TomModel",
    "AngelovModel",
    "MODEL_REGISTRY",
]

_DERIVATIVE_STEP = 1e-5


@dataclass(frozen=True)
class FetDcModel:
    """Base class: flat-parameter access and numeric derivatives."""

    #: name -> (lower, upper) extraction bounds; subclasses override.
    BOUNDS: ClassVar[Dict[str, Tuple[float, float]]] = {}

    def ids(self, vgs, vds):
        """Drain current [A] for gate-source / drain-source voltages."""
        raise NotImplementedError

    def gm(self, vgs, vds):
        """Transconductance dIds/dVgs [S] (central difference)."""
        step = _DERIVATIVE_STEP
        return (self.ids(vgs + step, vds) - self.ids(vgs - step, vds)) / (
            2.0 * step
        )

    def gds(self, vgs, vds):
        """Output conductance dIds/dVds [S] (central difference)."""
        step = _DERIVATIVE_STEP
        vds = np.asarray(vds, dtype=float)
        # One-sided near vds = 0 to stay in the defined region.
        lo = np.maximum(vds - step, 0.0)
        hi = lo + 2.0 * step
        return (self.ids(vgs, hi) - self.ids(vgs, lo)) / (hi - lo)

    # -- flat-vector plumbing for the extractor ----------------------------
    @classmethod
    def parameter_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    def parameter_vector(self) -> np.ndarray:
        return np.array(
            [getattr(self, name) for name in self.parameter_names()],
            dtype=float,
        )

    @classmethod
    def from_vector(cls, vector) -> "FetDcModel":
        names = cls.parameter_names()
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (len(names),):
            raise ValueError(
                f"{cls.__name__} expects {len(names)} parameters "
                f"{names}, got shape {vector.shape}"
            )
        return cls(**dict(zip(names, vector)))

    @classmethod
    def bounds_arrays(cls) -> Tuple[np.ndarray, np.ndarray]:
        names = cls.parameter_names()
        lower = np.array([cls.BOUNDS[n][0] for n in names], dtype=float)
        upper = np.array([cls.BOUNDS[n][1] for n in names], dtype=float)
        return lower, upper

    def replaced(self, **changes) -> "FetDcModel":
        """A copy with some parameters changed."""
        return replace(self, **changes)


def _saturating(vds, alpha):
    """tanh saturation term, safe for vectorized vds >= 0."""
    return np.tanh(alpha * np.asarray(vds, dtype=float))


@dataclass(frozen=True)
class CurticeQuadratic(FetDcModel):
    """Ids = beta (Vgs - Vto)^2 (1 + lambda Vds) tanh(alpha Vds)."""

    beta: float = 0.3      # [A/V^2]
    vto: float = 0.3       # [V] threshold (enhancement pHEMT: positive)
    lambda_: float = 0.05  # [1/V] channel-length modulation
    alpha: float = 2.5     # [1/V] knee sharpness

    BOUNDS = {
        "beta": (1e-3, 2.0),
        "vto": (-2.0, 1.0),
        "lambda_": (0.0, 0.5),
        "alpha": (0.1, 10.0),
    }

    def ids(self, vgs, vds):
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        overdrive = np.maximum(vgs - self.vto, 0.0)
        return (
            self.beta
            * overdrive**2
            * (1.0 + self.lambda_ * vds)
            * _saturating(vds, self.alpha)
        )


@dataclass(frozen=True)
class CurticeCubic(FetDcModel):
    """Curtice-Ettenberg cubic: Ids = poly3(V1) (1 + λVds) tanh(γ Vds).

    ``V1 = Vgs (1 + beta_v (vds0 - Vds))`` shifts the effective gate
    drive with drain voltage; the cubic polynomial is clamped at zero
    below pinch-off.
    """

    a0: float = 0.01
    a1: float = 0.05
    a2: float = 0.2
    a3: float = 0.1
    beta_v: float = 0.02
    gamma: float = 2.5
    lambda_: float = 0.04
    vds0: float = 3.0

    BOUNDS = {
        "a0": (-0.2, 0.5),
        "a1": (-1.0, 2.0),
        "a2": (-2.0, 4.0),
        "a3": (-4.0, 4.0),
        "beta_v": (-0.3, 0.3),
        "gamma": (0.1, 10.0),
        "lambda_": (0.0, 0.5),
        "vds0": (0.5, 8.0),
    }

    def ids(self, vgs, vds):
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        v1 = vgs * (1.0 + self.beta_v * (self.vds0 - vds))
        poly = self.a0 + v1 * (self.a1 + v1 * (self.a2 + v1 * self.a3))
        poly = np.maximum(poly, 0.0)
        return poly * (1.0 + self.lambda_ * vds) * _saturating(vds, self.gamma)


@dataclass(frozen=True)
class StatzModel(FetDcModel):
    """Statz (Raytheon) model with the polynomial knee region.

    ``Ids = beta (Vgs-Vto)^2 / (1 + b (Vgs-Vto)) * K(Vds) (1 + λVds)``
    where ``K = 1 - (1 - alpha Vds / 3)^3`` below the knee and 1 above.
    """

    beta: float = 0.3
    vto: float = 0.3
    b: float = 1.0        # [1/V] drive compression
    alpha: float = 2.0    # [1/V] knee parameter
    lambda_: float = 0.05

    BOUNDS = {
        "beta": (1e-3, 2.0),
        "vto": (-2.0, 1.0),
        "b": (0.0, 20.0),
        "alpha": (0.1, 10.0),
        "lambda_": (0.0, 0.5),
    }

    def ids(self, vgs, vds):
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        overdrive = np.maximum(vgs - self.vto, 0.0)
        drive = self.beta * overdrive**2 / (1.0 + self.b * overdrive)
        knee_arg = 1.0 - self.alpha * vds / 3.0
        knee = np.where(vds < 3.0 / self.alpha, 1.0 - knee_arg**3, 1.0)
        return drive * knee * (1.0 + self.lambda_ * vds)


@dataclass(frozen=True)
class TomModel(FetDcModel):
    """TriQuint's Own Model: Statz-style knee plus self-consistent
    drain feedback ``Ids = Ids0 / (1 + delta Vds Ids0)`` and a
    non-integer drive exponent ``q``.
    """

    beta: float = 0.25
    vto: float = 0.3
    q: float = 2.0
    alpha: float = 2.0
    delta: float = 0.2    # [1/W] self-heating-like compression
    lambda_: float = 0.02

    BOUNDS = {
        "beta": (1e-3, 2.0),
        "vto": (-2.0, 1.0),
        "q": (1.0, 3.5),
        "alpha": (0.1, 10.0),
        "delta": (0.0, 5.0),
        "lambda_": (0.0, 0.5),
    }

    def ids(self, vgs, vds):
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        overdrive = np.maximum(vgs - self.vto, 0.0)
        knee_arg = 1.0 - self.alpha * vds / 3.0
        knee = np.where(vds < 3.0 / self.alpha, 1.0 - knee_arg**3, 1.0)
        ids0 = (
            self.beta
            * overdrive**self.q
            * knee
            * (1.0 + self.lambda_ * vds)
        )
        return ids0 / (1.0 + self.delta * vds * ids0)


@dataclass(frozen=True)
class AngelovModel(FetDcModel):
    """Angelov (Chalmers) model.

    ``Ids = Ipk (1 + tanh(psi)) (1 + lambda Vds) tanh(alpha Vds)`` with
    ``psi = p1 (Vgs - Vpk) + p2 (Vgs - Vpk)^2 + p3 (Vgs - Vpk)^3``.
    ``Ipk`` is the current at peak transconductance, ``Vpk`` the gate
    voltage there — parameters a designer can read straight off the
    measured transfer characteristic, which is why the model extracts
    so robustly.
    """

    ipk: float = 0.03     # [A]
    vpk: float = 0.45     # [V]
    p1: float = 4.0       # [1/V]
    p2: float = 0.5
    p3: float = 0.5
    alpha: float = 2.5
    lambda_: float = 0.05

    BOUNDS = {
        "ipk": (1e-4, 0.5),
        "vpk": (-2.0, 1.5),
        "p1": (0.1, 20.0),
        "p2": (-10.0, 10.0),
        "p3": (-10.0, 10.0),
        "alpha": (0.1, 10.0),
        "lambda_": (0.0, 0.5),
    }

    def ids(self, vgs, vds):
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        dv = vgs - self.vpk
        psi = dv * (self.p1 + dv * (self.p2 + dv * self.p3))
        return (
            self.ipk
            * (1.0 + np.tanh(psi))
            * (1.0 + self.lambda_ * vds)
            * _saturating(vds, self.alpha)
        )


#: Registry used by the model-comparison experiment (E1).
MODEL_REGISTRY = {
    "curtice2": CurticeQuadratic,
    "curtice3": CurticeCubic,
    "statz": StatzModel,
    "tom": TomModel,
    "angelov": AngelovModel,
}
