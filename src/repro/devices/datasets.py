"""Measurement-dataset containers used by the extraction pipeline.

These mirror what a device characterization lab produces: a DC I-V
grid, S-parameter sweeps at several bias points, and spot noise
parameters.  The synthetic reference device fills them with
instrument-noise-corrupted values; the extractor only ever sees these
containers, never the golden model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.rf.frequency import FrequencyGrid
from repro.rf.noise import NoiseParameters
from repro.rf.twoport import TwoPort

__all__ = ["BiasPoint", "IVDataset", "SParamRecord", "DeviceDataset"]


@dataclass(frozen=True)
class BiasPoint:
    """A (Vgs, Vds) operating point."""

    vgs: float
    vds: float

    def __str__(self):
        return f"Vgs={self.vgs:.3f} V, Vds={self.vds:.2f} V"


@dataclass
class IVDataset:
    """Measured output characteristics on a rectangular bias grid."""

    vgs: np.ndarray          # (M,)
    vds: np.ndarray          # (N,)
    ids: np.ndarray          # (M, N) drain current [A]

    def __post_init__(self):
        self.vgs = np.asarray(self.vgs, dtype=float)
        self.vds = np.asarray(self.vds, dtype=float)
        self.ids = np.asarray(self.ids, dtype=float)
        expected = (self.vgs.size, self.vds.size)
        if self.ids.shape != expected:
            raise ValueError(
                f"ids must have shape {expected}, got {self.ids.shape}"
            )

    @property
    def mesh(self):
        """Broadcast (Vgs, Vds) meshes matching ``ids``."""
        return np.meshgrid(self.vgs, self.vds, indexing="ij")

    @property
    def i_max(self) -> float:
        """Peak measured current [A] (used for error normalization)."""
        return float(np.max(np.abs(self.ids)))

    def rms_error_percent(self, model) -> float:
        """RMS fit error of a DC model against this dataset, in % of Imax."""
        vgs_mesh, vds_mesh = self.mesh
        predicted = model.ids(vgs_mesh, vds_mesh)
        residual = predicted - self.ids
        return float(
            100.0 * np.sqrt(np.mean(residual**2)) / max(self.i_max, 1e-12)
        )


@dataclass
class SParamRecord:
    """One S-parameter sweep at a fixed bias."""

    bias: BiasPoint
    network: TwoPort


@dataclass
class DeviceDataset:
    """Everything the extraction pipeline consumes for one device."""

    iv: IVDataset
    sparams: List[SParamRecord] = field(default_factory=list)
    noise: Optional[NoiseParameters] = None
    noise_frequency: Optional[FrequencyGrid] = None
    noise_bias: Optional[BiasPoint] = None
    label: str = "device"

    def sparams_at(self, bias: BiasPoint, atol: float = 1e-6) -> SParamRecord:
        """The S-parameter record matching *bias* (exact grid point)."""
        for record in self.sparams:
            if (
                abs(record.bias.vgs - bias.vgs) < atol
                and abs(record.bias.vds - bias.vds) < atol
            ):
                return record
        raise KeyError(f"no S-parameter record at {bias}")
