"""The synthetic reference pHEMT ("golden device") and its datasets.

Substitution note (see DESIGN.md): the paper extracts models from
measurements of a physical low-noise pHEMT.  Offline we build a golden
device that is **richer than any candidate compact model** — an Angelov
tanh drive law combined with a TOM-style drain-feedback compression and
a soft gate-leakage onset — so that, exactly as with real silicon, no
candidate fits perfectly and the model-comparison ranking of E1 is
meaningful.  Electrical targets approximate an Avago ATF-54143-class
enhancement pHEMT: Vth ≈ +0.3 V, Ids ≈ 60 mA at Vgs = 0.6 V / Vds = 3 V,
fT ≈ 30 GHz, NFmin ≈ 0.5 dB at 2 GHz.

Measurement corruption mimics lab instruments: the DC analyzer adds
relative + absolute current noise; the VNA adds complex Gaussian error
per S-parameter plus a small phase drift; the noise-figure meter
jitters NFmin by a few hundredths of a dB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.devices.datasets import (
    BiasPoint,
    DeviceDataset,
    IVDataset,
    SParamRecord,
)
from repro.devices.dcmodels import AngelovModel
from repro.devices.smallsignal import (
    CapacitanceModel,
    ExtrinsicParams,
    PHEMTSmallSignal,
)
from repro.rf.frequency import FrequencyGrid

__all__ = ["GoldenDC", "ReferencePHEMT", "make_reference_device"]


@dataclass(frozen=True)
class GoldenDC:
    """Golden DC law: Angelov drive + TOM-style compression.

    ``Ids = I_angelov / (1 + theta * Vds * I_angelov)`` — the
    compression term is structurally absent from the pure Angelov
    candidate and the drive law is absent from TOM, so neither fits
    exactly.
    """

    angelov: AngelovModel
    theta: float = 0.22    # [1/W-ish] compression strength

    def ids(self, vgs, vds):
        base = self.angelov.ids(vgs, vds)
        return base / (1.0 + self.theta * np.asarray(vds, dtype=float) * base)

    def gm(self, vgs, vds):
        step = 1e-5
        return (self.ids(vgs + step, vds) - self.ids(vgs - step, vds)) / (
            2.0 * step
        )

    def gds(self, vgs, vds):
        step = 1e-5
        vds = np.asarray(vds, dtype=float)
        lo = np.maximum(vds - step, 0.0)
        hi = lo + 2.0 * step
        return (self.ids(vgs, hi) - self.ids(vgs, lo)) / (hi - lo)


class ReferencePHEMT:
    """The golden device: DC law + small-signal shell + noise model."""

    def __init__(self, seed: int = 20150901):
        self.dc = GoldenDC(
            angelov=AngelovModel(
                ipk=0.042,
                vpk=0.52,
                p1=5.2,
                p2=1.1,
                p3=0.9,
                alpha=3.2,
                lambda_=0.065,
            ),
            theta=0.22,
        )
        self.small_signal = PHEMTSmallSignal(
            dc_model=self.dc,
            capacitances=CapacitanceModel(ri=2.5),
            extrinsics=ExtrinsicParams(rg=2.0, rd=2.5, rs=1.0),
            tg=330.0,
            td0=5000.0,
            td_slope=90000.0,
        )
        self._rng = np.random.default_rng(seed)

    # -- dataset generation -------------------------------------------------
    def iv_dataset(self, vgs: Optional[Sequence[float]] = None,
                   vds: Optional[Sequence[float]] = None,
                   relative_noise: float = 0.004,
                   absolute_noise: float = 25e-6) -> IVDataset:
        """A "measured" output-characteristic grid."""
        if vgs is None:
            vgs = np.linspace(0.25, 0.70, 10)
        if vds is None:
            vds = np.linspace(0.0, 4.0, 17)
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vgs_mesh, vds_mesh = np.meshgrid(vgs, vds, indexing="ij")
        clean = self.dc.ids(vgs_mesh, vds_mesh)
        noisy = (
            clean * (1.0 + relative_noise * self._rng.standard_normal(clean.shape))
            + absolute_noise * self._rng.standard_normal(clean.shape)
        )
        return IVDataset(vgs=vgs, vds=vds, ids=noisy)

    def sparam_record(self, frequency: FrequencyGrid, bias: BiasPoint,
                      error_magnitude: float = 0.004) -> SParamRecord:
        """A "VNA-measured" S-parameter sweep at one bias."""
        clean = self.small_signal.twoport(frequency, bias.vgs, bias.vds)
        shape = clean.s.shape
        error = error_magnitude * (
            self._rng.standard_normal(shape)
            + 1j * self._rng.standard_normal(shape)
        ) / np.sqrt(2.0)
        # Small systematic phase drift, as from imperfect port cables.
        drift = np.exp(
            1j
            * np.deg2rad(0.5)
            * (frequency.f_hz / frequency.f_hz[-1])[:, None, None]
        )
        from repro.rf.twoport import TwoPort

        noisy = TwoPort(frequency, clean.s * drift + error, z0=clean.z0,
                        name=f"meas@{bias}")
        return SParamRecord(bias=bias, network=noisy)

    def noise_parameters(self, frequency: FrequencyGrid, bias: BiasPoint,
                         jitter_db: float = 0.03):
        """"Measured" noise parameters (NF-meter jitter on NFmin)."""
        noisy_twoport = self.small_signal.as_noisy_twoport(
            frequency, bias.vgs, bias.vds
        )
        params = noisy_twoport.noise_parameters
        nfmin_db = params.nfmin_db + jitter_db * self._rng.standard_normal(
            params.nfmin_db.shape
        )
        from repro.rf.noise import NoiseParameters

        fmin = np.maximum(10.0 ** (nfmin_db / 10.0), 1.0)
        return NoiseParameters(fmin, params.rn, params.y_opt)

    def full_dataset(self, frequency: Optional[FrequencyGrid] = None,
                     biases: Optional[Sequence[BiasPoint]] = None
                     ) -> DeviceDataset:
        """The complete characterization bundle for the extractor."""
        if frequency is None:
            frequency = FrequencyGrid.linear(0.5e9, 3.0e9, 26)
        if biases is None:
            biases = [
                BiasPoint(0.45, 2.0),
                BiasPoint(0.52, 3.0),
                BiasPoint(0.60, 3.0),
            ]
        records = [self.sparam_record(frequency, bias) for bias in biases]
        design_bias = biases[len(biases) // 2]
        return DeviceDataset(
            iv=self.iv_dataset(),
            sparams=records,
            noise=self.noise_parameters(frequency, design_bias),
            noise_frequency=frequency,
            noise_bias=design_bias,
            label="golden E-pHEMT (ATF-54143 class)",
        )


def make_reference_device(seed: int = 20150901) -> ReferencePHEMT:
    """Factory with the canonical seed used by all experiments."""
    return ReferencePHEMT(seed=seed)
