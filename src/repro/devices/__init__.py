"""pHEMT device models: DC laws, small-signal shell, noise, golden device."""

from repro.devices.dcmodels import (
    MODEL_REGISTRY,
    AngelovModel,
    CurticeCubic,
    CurticeQuadratic,
    FetDcModel,
    StatzModel,
    TomModel,
)
from repro.devices.smallsignal import (
    CapacitanceModel,
    ExtrinsicParams,
    IntrinsicParams,
    PHEMTSmallSignal,
    embed_intrinsic,
)
from repro.devices.datasets import (
    BiasPoint,
    DeviceDataset,
    IVDataset,
    SParamRecord,
)
from repro.devices.noise_models import fukui_fmin, fukui_nfmin_db
from repro.devices.reference import (
    GoldenDC,
    ReferencePHEMT,
    make_reference_device,
)

__all__ = [
    "MODEL_REGISTRY",
    "AngelovModel",
    "CurticeCubic",
    "CurticeQuadratic",
    "FetDcModel",
    "StatzModel",
    "TomModel",
    "CapacitanceModel",
    "ExtrinsicParams",
    "IntrinsicParams",
    "PHEMTSmallSignal",
    "embed_intrinsic",
    "BiasPoint",
    "DeviceDataset",
    "IVDataset",
    "SParamRecord",
    "fukui_fmin",
    "fukui_nfmin_db",
    "GoldenDC",
    "ReferencePHEMT",
    "make_reference_device",
]
