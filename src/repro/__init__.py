"""repro — reproduction of Dobes et al., "Multi-objective optimization of a
low-noise antenna amplifier for multi-constellation satellite-navigation
receivers" (SOCC 2015).

The package is layered bottom-up:

* :mod:`repro.util` — constants and unit conversions.
* :mod:`repro.rf` — linear network theory (two-ports, noise, gain, stability).
* :mod:`repro.analysis` — a from-scratch MNA circuit simulator with noise
  analysis and a DC operating-point solver.
* :mod:`repro.passives` — dispersive passive-component models (real L/C/R,
  microstrip lines, T splitters).
* :mod:`repro.devices` — pHEMT large-signal models (Curtice, Statz, TOM,
  Angelov), the bias-dependent small-signal shell, noise models, and the
  synthetic reference device used in place of proprietary measurements.
* :mod:`repro.optimize` — metaheuristics, the three-step robust extraction
  procedure, and standard + improved goal-attainment multi-objective solvers.
* :mod:`repro.core` — the GNSS LNA design flow itself.
* :mod:`repro.experiments` — drivers reproducing each table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
