"""The paper's three-step robust identification procedure.

Model-parameter extraction from measured data proceeds in three
stages, combining meta-heuristic and direct optimization (the paper's
wording) with a robustness stage:

1. **Global search** — differential evolution over the model's full
   parameter box, minimizing the normalized RMS residual.  This stage
   is immune to the poor/absent gradients and local minima of compact
   FET models (e.g. the threshold kink of square-law models).
2. **Direct refinement** — trust-region nonlinear least squares from
   the DE solution, polishing to machine-precision local optimality at
   a tiny fraction of the global stage's cost.
3. **Robust re-weighting** — iteratively re-weighted least squares
   with the Tukey biweight, which discounts measurement outliers that
   would otherwise bias the fit (real I-V grids contain trap/thermal
   glitches; the synthetic datasets inject them too).

Single-stage baselines (:func:`extract_de_only`,
:func:`extract_local_only`) exist so experiment E2 can quantify what
each stage buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Type

import numpy as np

from repro.devices.datasets import IVDataset, SParamRecord
from repro.devices.dcmodels import FetDcModel
from repro.devices.smallsignal import (
    ExtrinsicParams,
    IntrinsicParams,
    embed_intrinsic,
)
from repro.optimize.direct import refine_least_squares
from repro.optimize.metaheuristics import differential_evolution

__all__ = [
    "ExtractionResult",
    "extract_dc_model",
    "extract_de_only",
    "extract_local_only",
    "extract_small_signal",
    "SmallSignalExtractionResult",
    "ColdFetExtractionResult",
    "extract_extrinsics_cold_fet",
]

_TUKEY_C = 4.685


@dataclass
class ExtractionResult:
    """Outcome of a DC-model extraction."""

    model: FetDcModel
    rms_error_percent: float
    nfev_global: int
    nfev_local: int
    nfev_robust: int
    converged: bool
    stage_errors: Dict[str, float] = field(default_factory=dict)

    @property
    def nfev_total(self) -> int:
        return self.nfev_global + self.nfev_local + self.nfev_robust


def _iv_residual_builder(model_class: Type[FetDcModel], iv: IVDataset):
    """Residuals normalized by the dataset's peak current."""
    vgs_mesh, vds_mesh = iv.mesh
    measured = iv.ids
    scale = max(iv.i_max, 1e-12)

    def residuals(x: np.ndarray) -> np.ndarray:
        model = model_class.from_vector(x)
        predicted = model.ids(vgs_mesh, vds_mesh)
        return ((predicted - measured) / scale).ravel()

    return residuals


def _rms_percent(residuals_fn, x) -> float:
    r = residuals_fn(x)
    return float(100.0 * np.sqrt(np.mean(r**2)))


def extract_dc_model(
    model_class: Type[FetDcModel],
    iv: IVDataset,
    seed: Optional[int] = 0,
    de_population: int = 40,
    de_iterations: int = 250,
    robust_iterations: int = 5,
) -> ExtractionResult:
    """Full three-step robust identification of a DC model."""
    residuals = _iv_residual_builder(model_class, iv)
    lower, upper = model_class.bounds_arrays()

    # Step 1: global meta-heuristic search.
    def scalar(x):
        r = residuals(x)
        return float(np.mean(r**2))

    global_stage = differential_evolution(
        scalar, lower, upper, population_size=de_population,
        max_iterations=de_iterations, seed=seed,
    )

    # Step 2: direct local refinement.
    local_stage = refine_least_squares(residuals, global_stage.x,
                                       lower, upper)

    # Step 3: robust IRLS with the Tukey biweight.
    x_robust = local_stage.x
    nfev_robust = 0
    for _ in range(robust_iterations):
        r = residuals(x_robust)
        scale = 1.4826 * np.median(np.abs(r - np.median(r)))
        if scale < 1e-15:
            break  # already an essentially exact fit
        u = r / (_TUKEY_C * scale)
        weights = np.where(np.abs(u) < 1.0, (1.0 - u**2) ** 2, 0.0)
        weights = np.sqrt(np.maximum(weights, 1e-6))
        stage = refine_least_squares(residuals, x_robust, lower, upper,
                                     weights=weights)
        nfev_robust += stage.nfev
        if np.max(np.abs(stage.x - x_robust)) < 1e-12:
            x_robust = stage.x
            break
        x_robust = stage.x

    model = model_class.from_vector(x_robust)
    return ExtractionResult(
        model=model,
        rms_error_percent=_rms_percent(residuals, x_robust),
        nfev_global=global_stage.nfev,
        nfev_local=local_stage.nfev,
        nfev_robust=nfev_robust,
        converged=local_stage.converged,
        stage_errors={
            "global": _rms_percent(residuals, global_stage.x),
            "local": _rms_percent(residuals, local_stage.x),
            "robust": _rms_percent(residuals, x_robust),
        },
    )


def extract_de_only(model_class: Type[FetDcModel], iv: IVDataset,
                    seed: Optional[int] = 0, de_population: int = 40,
                    de_iterations: int = 250) -> ExtractionResult:
    """Baseline: meta-heuristic stage alone (no polish, no robustness)."""
    residuals = _iv_residual_builder(model_class, iv)
    lower, upper = model_class.bounds_arrays()

    def scalar(x):
        r = residuals(x)
        return float(np.mean(r**2))

    stage = differential_evolution(
        scalar, lower, upper, population_size=de_population,
        max_iterations=de_iterations, seed=seed,
    )
    return ExtractionResult(
        model=model_class.from_vector(stage.x),
        rms_error_percent=_rms_percent(residuals, stage.x),
        nfev_global=stage.nfev, nfev_local=0, nfev_robust=0,
        converged=stage.converged,
        stage_errors={"global": _rms_percent(residuals, stage.x)},
    )


def extract_local_only(model_class: Type[FetDcModel], iv: IVDataset,
                       seed: Optional[int] = 0,
                       start_perturbation: float = 0.4) -> ExtractionResult:
    """Baseline: direct local fit from a randomly perturbed default start.

    This is what a naive extraction does — and what the three-step
    procedure exists to beat.  The start point is the model's default
    parameters perturbed uniformly by ±``start_perturbation`` of the
    box width, mimicking an engineer's imperfect initial guess.
    """
    residuals = _iv_residual_builder(model_class, iv)
    lower, upper = model_class.bounds_arrays()
    rng = np.random.default_rng(seed)
    x0 = model_class().parameter_vector()
    x0 = x0 + start_perturbation * (upper - lower) * (
        rng.random(x0.size) - 0.5
    )
    x0 = np.clip(x0, lower, upper)
    stage = refine_least_squares(residuals, x0, lower, upper)
    return ExtractionResult(
        model=model_class.from_vector(stage.x),
        rms_error_percent=_rms_percent(residuals, stage.x),
        nfev_global=0, nfev_local=stage.nfev, nfev_robust=0,
        converged=stage.converged,
        stage_errors={"local": _rms_percent(residuals, stage.x)},
    )


# ----------------------------------------------------------------------
# small-signal (S-parameter) extraction
# ----------------------------------------------------------------------

_SS_NAMES = ("gm", "gds", "cgs", "cgd", "cds", "ri", "tau")
_SS_LOWER = np.array([1e-3, 1e-5, 1e-14, 1e-15, 1e-15, 0.05, 0.0])
_SS_UPPER = np.array([1.0, 5e-2, 5e-12, 2e-12, 2e-12, 20.0, 1e-11])


@dataclass
class SmallSignalExtractionResult:
    """Outcome of an intrinsic small-signal extraction at one bias."""

    intrinsic: IntrinsicParams
    rms_error: float          # RMS of normalized complex S residuals
    nfev_total: int
    converged: bool


def extract_small_signal(
    record: SParamRecord,
    extrinsics: ExtrinsicParams,
    seed: Optional[int] = 0,
    de_population: int = 40,
    de_iterations: int = 150,
) -> SmallSignalExtractionResult:
    """Fit the 7 intrinsic elements to a measured S-parameter sweep.

    The parasitic shell is assumed known from cold-FET/fixture
    calibration (standard practice); the intrinsic elements are fitted
    by the same global-then-direct scheme as the DC models.  Residuals
    are the complex S errors normalized per element by the measured
    magnitude range, so S11 and S21 contribute comparably.  The search
    runs in unit-box coordinates because the element values span 13
    orders of magnitude (farads vs ohms).
    """
    network = record.network
    frequency = network.frequency
    measured = network.s
    norms = np.maximum(
        np.max(np.abs(measured), axis=0, keepdims=True), 1e-6
    )
    span = _SS_UPPER - _SS_LOWER

    def residuals(unit_x: np.ndarray) -> np.ndarray:
        x = _SS_LOWER + np.clip(unit_x, 0.0, 1.0) * span
        intrinsic = IntrinsicParams(*x)
        model = embed_intrinsic(intrinsic, extrinsics, frequency,
                                z0=network.z0)
        delta = (model.s - measured) / norms
        return np.concatenate([delta.real.ravel(), delta.imag.ravel()])

    def scalar(unit_x):
        r = residuals(unit_x)
        return float(np.mean(r**2))

    unit_lower = np.zeros(_SS_LOWER.size)
    unit_upper = np.ones(_SS_LOWER.size)
    global_stage = differential_evolution(
        scalar, unit_lower, unit_upper, population_size=de_population,
        max_iterations=de_iterations, seed=seed,
    )
    local_stage = refine_least_squares(residuals, global_stage.x,
                                       unit_lower, unit_upper)
    intrinsic = IntrinsicParams(*(_SS_LOWER + local_stage.x * span))
    r_final = residuals(local_stage.x)
    return SmallSignalExtractionResult(
        intrinsic=intrinsic,
        rms_error=float(np.sqrt(np.mean(r_final**2))),
        nfev_total=global_stage.nfev + local_stage.nfev,
        converged=local_stage.converged,
    )


# ----------------------------------------------------------------------
# cold-FET extrinsic (parasitic-shell) extraction
# ----------------------------------------------------------------------

# [rg, rd, rs, lg, ld, ls, cpg, cpd, cgs, cgd, cds, ri, g_channel]
_COLD_LOWER = np.array([
    0.05, 0.05, 0.05, 5e-12, 5e-12, 5e-12, 5e-15, 5e-15,
    5e-14, 1e-14, 1e-14, 0.05, 5e-3,
])
_COLD_UPPER = np.array([
    10.0, 10.0, 10.0, 3e-9, 3e-9, 2e-9, 1.2e-12, 1.2e-12,
    5e-12, 2e-12, 2e-12, 20.0, 1.0,
])


@dataclass
class ColdFetExtractionResult:
    """Outcome of a cold-FET (Vds = 0) extrinsic extraction."""

    extrinsics: ExtrinsicParams
    channel_conductance: float
    rms_error: float
    nfev_total: int
    converged: bool


def extract_extrinsics_cold_fet(
    record: SParamRecord,
    seed: Optional[int] = 0,
    de_population: int = 45,
    de_iterations: int = 250,
) -> ColdFetExtractionResult:
    """Extract the parasitic shell from a cold (Vds = 0) S-parameter sweep.

    At Vds = 0 the transconductance vanishes and the channel collapses
    to a conductance, so the measurement is dominated by the extrinsic
    resistances/inductances/pads — the classic Dambrine-style cold-FET
    condition.  The full 13-element passive network (shell + cold
    intrinsic) is fitted with the usual global-then-direct scheme.
    """
    network = record.network
    frequency = network.frequency
    measured = network.s
    norms = np.maximum(
        np.max(np.abs(measured), axis=0, keepdims=True), 1e-6
    )
    span = _COLD_UPPER - _COLD_LOWER

    def residuals(unit_x: np.ndarray) -> np.ndarray:
        x = _COLD_LOWER + np.clip(unit_x, 0.0, 1.0) * span
        extrinsics = ExtrinsicParams(rg=x[0], rd=x[1], rs=x[2],
                                     lg=x[3], ld=x[4], ls=x[5],
                                     cpg=x[6], cpd=x[7])
        intrinsic = IntrinsicParams(gm=0.0, gds=x[12], cgs=x[8],
                                    cgd=x[9], cds=x[10], ri=x[11],
                                    tau=0.0)
        model = embed_intrinsic(intrinsic, extrinsics, frequency,
                                z0=network.z0)
        delta = (model.s - measured) / norms
        return np.concatenate([delta.real.ravel(), delta.imag.ravel()])

    def scalar(unit_x):
        r = residuals(unit_x)
        return float(np.mean(r**2))

    n_dim = _COLD_LOWER.size
    global_stage = differential_evolution(
        scalar, np.zeros(n_dim), np.ones(n_dim),
        population_size=de_population, max_iterations=de_iterations,
        seed=seed,
    )
    local_stage = refine_least_squares(residuals, global_stage.x,
                                       np.zeros(n_dim), np.ones(n_dim))
    x = _COLD_LOWER + local_stage.x * span
    r_final = residuals(local_stage.x)
    return ColdFetExtractionResult(
        extrinsics=ExtrinsicParams(rg=x[0], rd=x[1], rs=x[2], lg=x[3],
                                   ld=x[4], ls=x[5], cpg=x[6], cpd=x[7]),
        channel_conductance=float(x[12]),
        rms_error=float(np.sqrt(np.mean(r_final**2))),
        nfev_total=global_stage.nfev + local_stage.nfev,
        converged=local_stage.converged,
    )
