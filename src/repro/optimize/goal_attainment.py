"""Goal-attainment multi-objective optimization: standard and improved.

**Standard method** (Gembicki 1974, as shipped in classic optimization
toolboxes): introduce a scalar attainment factor ``gamma`` and solve ::

    minimize    gamma
    subject to  f_i(x) - w_i * gamma <= goal_i     (each objective)
                g_j(x) <= 0                        (hard constraints)
                lower <= x <= upper

A negative ``gamma`` means every goal is over-attained.  The method's
well-known weaknesses: the solution depends strongly on the weight
scaling when objectives have different magnitudes, the single local
NLP solve stalls in local minima of non-convex RF objectives, and a
conservative goal vector leaves the solution short of the Pareto
surface.

**Improved method** — the paper announces "a substantial improvement of
a standard method for the multi-objective optimization" without
spelling it out in the abstract (full text unavailable; see DESIGN.md),
so this class reconstructs the three fixes that address exactly those
weaknesses:

1. *auto-scaling*: objective ranges are probed on a Latin-hypercube
   sample and the weights are normalized by them, making the
   attainment factor dimensionless and the solution invariant to
   objective units;
2. *meta-heuristic multi-start*: the NLP is restarted from the best
   probe points (global information), not a single user guess;
3. *goal tightening*: after a solve, goals are re-anchored at the
   attained objective values minus a fraction of the range, and the
   NLP re-run — iterating the solution onto the Pareto surface no
   matter how timid the original goals were.

Both methods count objective evaluations identically, so experiment E5
compares them fairly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence

import numpy as np
from scipy import optimize as sp_optimize

from repro.obs import tracer as _obs_tracer
from repro.obs.telemetry import GenerationRecord
from repro.optimize.batching import BatchShardExecutor, validate_workers
from repro.optimize.checkpoint import CheckpointStore, resume_or_none
from repro.optimize.faults import (
    CATEGORY_NON_FINITE,
    FAILURE_EXCEPTIONS,
    RunHealth,
    classify_exception,
)
from repro.optimize.metaheuristics import (
    _emit_final_population,
    _restore_telemetry,
    _save_checkpoint,
    _seed_population,
    latin_hypercube,
)

__all__ = [
    "MultiObjectiveProblem",
    "GoalAttainmentResult",
    "goal_attainment_standard",
    "goal_attainment_improved",
]

#: Finite objective vector assigned to failed evaluations inside the
#: SLSQP solve — ``inf``/``nan`` would break the line search, a large
#: finite value just makes the point maximally unattractive.
PENALTY_OBJECTIVE = 1.0e9


@dataclass
class MultiObjectiveProblem:
    """A box-bounded multi-objective minimization problem.

    ``objectives(x)`` returns the objective vector (all minimized);
    ``constraints(x)``, when given, returns values that must end up
    <= 0 at a feasible point.

    ``objectives_batch`` / ``constraints_batch`` are optional
    population-level companions: given a ``(B, n)`` matrix they return
    ``(B, n_objectives)`` / ``(B, n_constraints)`` arrays matching the
    scalar callables row by row.  Optimizers that evaluate whole
    populations (NSGA-II, the improved goal-attainment probe stage)
    use them when present to amortize the model solve across
    candidates.
    """

    objectives: Callable[[np.ndarray], np.ndarray]
    n_objectives: int
    lower: np.ndarray
    upper: np.ndarray
    constraints: Optional[Callable[[np.ndarray], np.ndarray]] = None
    objective_names: Sequence[str] = ()
    objectives_batch: Optional[Callable[[np.ndarray], np.ndarray]] = None
    constraints_batch: Optional[Callable[[np.ndarray], np.ndarray]] = None

    def __post_init__(self):
        self.lower = np.asarray(self.lower, dtype=float)
        self.upper = np.asarray(self.upper, dtype=float)
        if self.lower.shape != self.upper.shape or self.lower.ndim != 1:
            raise ValueError("bounds must be 1-D arrays of equal shape")
        if np.any(self.lower >= self.upper):
            raise ValueError("lower bounds must be strictly below upper")
        if self.n_objectives < 2:
            raise ValueError("a multi-objective problem needs >= 2 objectives")
        if not self.objective_names:
            self.objective_names = tuple(
                f"f{i + 1}" for i in range(self.n_objectives)
            )

    def sharded(self, executor) -> "MultiObjectiveProblem":
        """This problem with its batch callables sharded over *executor*.

        *executor* is a
        :class:`~repro.optimize.batching.BatchShardExecutor`; the
        returned problem routes ``objectives_batch`` /
        ``constraints_batch`` through ``executor.map_batch`` so the
        per-worker row blocks evaluate concurrently (the model's hot
        loop is numpy ``linalg.solve``, which releases the GIL).  Rows
        restack in order, so results stay bit-identical to the
        unsharded call; a problem with no batch callables is returned
        unchanged.  The caller keeps ownership of *executor* and closes
        it when the run is done.
        """
        if self.objectives_batch is None and self.constraints_batch is None:
            return self

        def shard(fn):
            if fn is None:
                return None
            return lambda population: executor.map_batch(fn, population)

        return replace(
            self,
            objectives_batch=shard(self.objectives_batch),
            constraints_batch=shard(self.constraints_batch),
        )


@dataclass
class GoalAttainmentResult:
    """Outcome of a goal-attainment solve."""

    x: np.ndarray
    objectives: np.ndarray
    gamma: float
    goals: np.ndarray
    weights: np.ndarray
    nfev: int
    success: bool
    constraint_violation: float
    message: str = ""
    history: List[float] = field(default_factory=list)
    health: RunHealth = field(default_factory=RunHealth)

    def attained(self, tolerance: float = 1e-6) -> bool:
        """True when every goal is met (gamma <= tolerance)."""
        return self.success and self.gamma <= tolerance


class _CountedObjectives:
    """Memoizing evaluation counter shared by all constraint callbacks.

    Failure-isolated: an evaluation that raises one of
    :data:`FAILURE_EXCEPTIONS` or returns non-finite entries yields the
    finite :data:`PENALTY_OBJECTIVE` vector (recorded in ``health``)
    instead of sinking the surrounding SLSQP solve.
    """

    def __init__(self, problem: MultiObjectiveProblem,
                 health: Optional[RunHealth] = None):
        self._problem = problem
        self.health = health if health is not None else RunHealth()
        self.nfev = 0
        self._last_key = None
        self._last_value = None

    def __call__(self, x: np.ndarray) -> np.ndarray:
        key = x.tobytes()
        if key != self._last_key:
            n_obj = self._problem.n_objectives
            try:
                value = np.asarray(self._problem.objectives(x), dtype=float)
            except FAILURE_EXCEPTIONS as exc:
                self.health.record(classify_exception(exc))
                value = np.full(n_obj, PENALTY_OBJECTIVE)
            else:
                if value.shape != (n_obj,):
                    raise ValueError(
                        f"objectives returned shape {value.shape}, "
                        f"expected ({n_obj},)"
                    )
                bad = ~np.isfinite(value)
                if np.any(bad):
                    self.health.record(CATEGORY_NON_FINITE)
                    value = np.where(bad, PENALTY_OBJECTIVE, value)
            self._last_value = value
            self._last_key = key
            self.nfev += 1
        return self._last_value

    # -- checkpoint support -------------------------------------------------
    def state(self):
        """Snapshot (count + memo) so a resumed run counts identically."""
        return {
            "nfev": self.nfev,
            "last_key": self._last_key,
            "last_value": None if self._last_value is None
            else np.array(self._last_value),
        }

    def restore(self, state):
        self.nfev = int(state["nfev"])
        self._last_key = state["last_key"]
        self._last_value = state["last_value"]


def _solve_gembicki_nlp(problem: MultiObjectiveProblem, goals, weights,
                        x0, counter: _CountedObjectives,
                        max_iterations: int = 200):
    """One SLSQP solve of the Gembicki reformulation from x0."""
    n_x = problem.lower.size
    goals = np.asarray(goals, dtype=float)
    weights = np.asarray(weights, dtype=float)

    def split(y):
        return y[:n_x], y[n_x]

    def objective(y):
        return y[n_x]

    def attainment_constraints(y):
        x, gamma = split(y)
        f = counter(x)
        return goals + weights * gamma - f  # must be >= 0

    constraint_list = [
        {"type": "ineq", "fun": attainment_constraints},
    ]
    if problem.constraints is not None:
        constraint_list.append(
            {"type": "ineq",
             "fun": lambda y: -np.asarray(
                 problem.constraints(y[:n_x]), dtype=float
             )}
        )

    f0 = counter(np.asarray(x0, dtype=float))
    gamma0 = float(np.max((f0 - goals) / weights)) + 0.1
    y0 = np.concatenate([x0, [gamma0]])
    gamma_span = 1e3 * (1.0 + abs(gamma0))
    bounds = list(zip(problem.lower, problem.upper)) + [
        (-gamma_span, gamma_span)
    ]
    solution = sp_optimize.minimize(
        objective, y0, method="SLSQP", bounds=bounds,
        constraints=constraint_list,
        options={"maxiter": max_iterations, "ftol": 1e-10},
    )
    x_final = np.clip(solution.x[:n_x], problem.lower, problem.upper)
    return x_final, float(solution.x[n_x]), bool(solution.success), str(
        solution.message
    )


def _package(problem, counter, x, goals, weights, success, message,
             history) -> GoalAttainmentResult:
    f = counter(x)
    gamma = float(np.max((f - goals) / weights))
    violation = 0.0
    if problem.constraints is not None:
        violation = float(
            np.max(np.maximum(problem.constraints(x), 0.0), initial=0.0)
        )
    return GoalAttainmentResult(
        x=np.asarray(x, dtype=float), objectives=f, gamma=gamma,
        goals=np.asarray(goals, dtype=float),
        weights=np.asarray(weights, dtype=float), nfev=counter.nfev,
        success=success, constraint_violation=violation, message=message,
        history=history, health=counter.health,
    )


def goal_attainment_standard(
    problem: MultiObjectiveProblem,
    goals,
    weights=None,
    x0=None,
    max_iterations: int = 200,
) -> GoalAttainmentResult:
    """The textbook Gembicki method: one NLP solve, user-supplied weights.

    Defaults follow classic toolbox behaviour: ``weights = |goals|``
    (units-carrying, hence the scaling pathology) and a mid-box start.
    """
    goals = np.asarray(goals, dtype=float)
    if goals.shape != (problem.n_objectives,):
        raise ValueError(
            f"goals must have shape ({problem.n_objectives},), "
            f"got {goals.shape}"
        )
    if weights is None:
        weights = np.maximum(np.abs(goals), 1e-12)
    weights = np.asarray(weights, dtype=float)
    if np.any(weights <= 0):
        raise ValueError("weights must be positive")
    if x0 is None:
        x0 = 0.5 * (problem.lower + problem.upper)
    counter = _CountedObjectives(problem)
    x_final, gamma, success, message = _solve_gembicki_nlp(
        problem, goals, weights, x0, counter, max_iterations
    )
    return _package(problem, counter, x_final, goals, weights, success,
                    message, history=[gamma])


def goal_attainment_improved(
    problem: MultiObjectiveProblem,
    goals,
    weights=None,
    n_probe: int = 64,
    n_starts: int = 6,
    tighten_rounds: int = 2,
    tighten_fraction: float = 0.04,
    seed: Optional[int] = 0,
    initial_population: Optional[np.ndarray] = None,
    max_iterations: int = 200,
    workers: Optional[int] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
    resume: bool = True,
    on_generation: Optional[Callable[[GenerationRecord], None]] = None,
) -> GoalAttainmentResult:
    """The paper-style improved goal attainment (see module docstring).

    ``initial_population`` warm-starts the probe stage: its rows
    (clipped to the bounds) replace the leading LHS probes, so the
    multi-start ordering sees a nearby archived run's best designs
    first.  The finished run journals its NLP starts plus the final
    design as a ``final_population`` event for future warm starts.

    ``workers > 1`` shards the population-level probe stage — the only
    batched part of this algorithm — across a thread pool
    (:meth:`MultiObjectiveProblem.sharded`); row order and per-row
    results are preserved, so the run stays bit-identical.  The
    sequential NLP stages are unaffected.

    With a ``checkpoint_store`` the run snapshots its state after the
    probe stage, after every NLP start, and after every tightening
    round (the counter memo rides along, so a resumed run reports the
    same ``nfev`` as an uninterrupted one).

    ``on_generation`` receives one
    :class:`~repro.obs.telemetry.GenerationRecord` per completed stage
    — the probe is generation 0, NLP start *k* is generation ``k + 1``,
    tightening round *r* is generation ``n_starts + r + 1`` — and rides
    inside checkpoints when it exposes ``state()``/``restore()``.
    """
    workers = validate_workers(workers)
    if workers is not None and workers > 1:
        # Re-enter with the sharded problem so the executor's lifetime
        # brackets exactly one run; the inner call sees workers=None.
        executor = BatchShardExecutor(workers)
        try:
            return goal_attainment_improved(
                problem.sharded(executor), goals, weights=weights,
                n_probe=n_probe, n_starts=n_starts,
                tighten_rounds=tighten_rounds,
                tighten_fraction=tighten_fraction, seed=seed,
                initial_population=initial_population,
                max_iterations=max_iterations, workers=None,
                checkpoint_store=checkpoint_store, resume=resume,
                on_generation=on_generation,
            )
        finally:
            executor.close()

    goals = np.asarray(goals, dtype=float)
    if goals.shape != (problem.n_objectives,):
        raise ValueError(
            f"goals must have shape ({problem.n_objectives},), "
            f"got {goals.shape}"
        )
    rng = np.random.default_rng(seed)
    health = RunHealth()
    counter = _CountedObjectives(problem, health)
    algorithm = "goal_attainment_improved"

    def save(stage_count, start_index, tighten_index, starts, ranges,
             weights, best, history):
        if checkpoint_store is None:
            return
        _save_checkpoint(checkpoint_store, algorithm, stage_count, rng,
                         health, {
                             "start_index": start_index,
                             "tighten_index": tighten_index,
                             "starts": [np.array(s) for s in starts],
                             "ranges": np.array(ranges),
                             "weights": np.array(weights),
                             "best": best,
                             "history": list(history),
                             "counter": counter.state(),
                         }, on_generation=on_generation)

    def emit(stage, generation, gamma, violation, wall_time_s,
             mean=None, spread=0.0):
        if on_generation is None:
            return
        on_generation(GenerationRecord(
            algorithm=algorithm,
            generation=int(generation),
            nfev=counter.nfev,
            best=float(gamma),
            mean=float(gamma if mean is None else mean),
            spread=float(spread),
            wall_time_s=float(wall_time_s),
            n_failures=health.n_failures,
            violation=float(violation),
            extra={"stage": stage},
        ))

    checkpoint = resume_or_none(checkpoint_store, algorithm) \
        if resume else None
    if checkpoint is not None:
        payload = checkpoint.payload
        rng.bit_generator.state = checkpoint.rng_state
        health.restore(payload["health"])
        health.resumed_at = int(checkpoint.iteration)
        counter.restore(payload["counter"])
        _restore_telemetry(on_generation, payload)
        starts = [np.asarray(s, dtype=float) for s in payload["starts"]]
        ranges = np.asarray(payload["ranges"], dtype=float)
        weights = np.asarray(payload["weights"], dtype=float)
        best = payload["best"]
        history = list(payload["history"])
        start_index = int(payload["start_index"])
        tighten_index = int(payload["tighten_index"])
    else:
        # --- stage 1: probe the objective ranges on an LHS sample -------
        probe_start = time.monotonic()
        probes = latin_hypercube(n_probe, problem.lower, problem.upper,
                                 rng)
        probes = _seed_population(probes, initial_population,
                                  problem.lower, problem.upper)
        with _obs_tracer.span("goal_attainment.probe", n_probe=n_probe):
            if problem.objectives_batch is not None:
                # Population-level evaluation: one batched model solve
                # for the whole sample, counted exactly like the
                # per-point loop.
                try:
                    probe_values = np.asarray(
                        problem.objectives_batch(probes), dtype=float
                    )
                    counter.nfev += len(probes)
                except FAILURE_EXCEPTIONS:
                    health.retries += 1
                    probe_values = np.array([counter(p) for p in probes])
            else:
                probe_values = np.array([counter(p) for p in probes])
        bad = ~np.all(np.isfinite(probe_values), axis=1)
        if np.any(bad):
            health.record(CATEGORY_NON_FINITE, int(np.sum(bad)))
            probe_values[bad] = PENALTY_OBJECTIVE
        if problem.constraints is not None:
            if problem.constraints_batch is not None:
                feas = np.all(
                    np.asarray(problem.constraints_batch(probes)) <= 0.0,
                    axis=1,
                )
            else:
                feas = np.array([
                    np.all(np.asarray(problem.constraints(p)) <= 0.0)
                    for p in probes
                ])
        else:
            feas = np.ones(len(probes), dtype=bool)
        # Failed probes would inflate the ranges (and hence the
        # auto-scaled weights) by the penalty magnitude; scale from the
        # healthy probes only.
        healthy = probe_values[~bad] if np.any(~bad) else probe_values
        ranges = np.maximum(
            healthy.max(axis=0) - healthy.min(axis=0), 1e-9
        )
        if weights is None:
            weights = ranges.copy()
        weights = np.asarray(weights, dtype=float)

        # --- stage 2 setup: order the starts by probe attainment --------
        attainment = np.max((probe_values - goals) / weights, axis=1)
        attainment = np.where(feas, attainment, attainment + 1e6)
        order = np.argsort(attainment)
        starts = [probes[i] for i in order[:n_starts]]
        best = None
        history = []
        start_index = 0
        tighten_index = 0
        finite_attainment = attainment[np.isfinite(attainment)]
        if finite_attainment.size:
            emit("probe", 0, float(np.min(finite_attainment)),
                 float("nan"), time.monotonic() - probe_start,
                 mean=float(np.mean(finite_attainment)),
                 spread=float(np.ptp(finite_attainment)))
        else:
            emit("probe", 0, float("inf"), float("nan"),
                 time.monotonic() - probe_start, mean=float("inf"))
        save(0, start_index, tighten_index, starts, ranges, weights,
             best, history)

    # --- stage 2: multi-start from the best probes -----------------------
    for k in range(start_index, len(starts)):
        stage_start = time.monotonic()
        with _obs_tracer.span("goal_attainment.nlp_start", start=k):
            x_final, gamma, success, message = _solve_gembicki_nlp(
                problem, goals, weights, starts[k], counter, max_iterations
            )
        candidate = _package(problem, counter, x_final, goals, weights,
                             success, message, history=[])
        history.append(candidate.gamma)
        if _better(candidate, best):
            best = candidate
        emit("nlp_start", k + 1, best.gamma, best.constraint_violation,
             time.monotonic() - stage_start)
        save(k + 1, k + 1, tighten_index, starts, ranges, weights,
             best, history)

    if best is None:  # pragma: no cover - n_starts >= 1 always yields one
        raise RuntimeError("no goal-attainment start succeeded")

    # --- stage 3: goal tightening onto the Pareto surface ----------------
    for round_index in range(tighten_index, tighten_rounds):
        if best.constraint_violation > 1e-6:
            break
        stage_start = time.monotonic()
        current_goals = best.objectives - tighten_fraction * ranges
        with _obs_tracer.span("goal_attainment.tighten",
                              round=round_index):
            x_final, gamma, success, message = _solve_gembicki_nlp(
                problem, current_goals, weights, best.x, counter,
                max_iterations
            )
        candidate = _package(problem, counter, x_final, current_goals,
                             weights, success, message, history=[])
        history.append(candidate.gamma)
        if not candidate.success or candidate.constraint_violation > 1e-6:
            break
        if np.all(candidate.objectives <= best.objectives + 1e-12):
            best = candidate
            emit("tighten", len(starts) + round_index + 1, best.gamma,
                 best.constraint_violation,
                 time.monotonic() - stage_start)
            save(len(starts) + round_index + 1, len(starts),
                 round_index + 1, starts, ranges, weights, best, history)
        else:
            break

    # Report gamma against the *original* goals for comparability.
    final = _package(problem, counter, best.x, goals, weights,
                     best.success, best.message, history)
    if checkpoint_store is not None:
        checkpoint_store.clear()
    # The NLP starts plus the winning design are this algorithm's best
    # warm-start seeds; gammas approximate the fitness ordering.
    seeds = np.vstack([np.asarray(final.x, dtype=float)[None, :]]
                      + [np.asarray(s, dtype=float)[None, :]
                         for s in starts])
    gammas = [float(final.gamma)] + [
        float(history[k]) if k < len(history) else float("inf")
        for k in range(len(starts))
    ]
    _emit_final_population(algorithm, seeds, gammas)
    return final


def _better(candidate: GoalAttainmentResult,
            incumbent: Optional[GoalAttainmentResult]) -> bool:
    if incumbent is None:
        return True
    cand_key = (candidate.constraint_violation > 1e-6, candidate.gamma)
    inc_key = (incumbent.constraint_violation > 1e-6, incumbent.gamma)
    return cand_key < inc_key
