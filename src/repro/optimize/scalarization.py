"""Scalarization baselines: weighted sum and epsilon-constraint.

These are the methods the improved goal attainment is compared against
in experiment E5/E6.  The weighted sum is the classic strawman — it
cannot reach non-convex regions of the Pareto front no matter the
weights — and epsilon-constraint is the standard alternative that can,
at the cost of one constrained solve per front point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import optimize as sp_optimize

from repro.optimize.goal_attainment import (
    GoalAttainmentResult,
    MultiObjectiveProblem,
    _CountedObjectives,
)
from repro.optimize.metaheuristics import latin_hypercube

__all__ = ["weighted_sum", "epsilon_constraint"]


def weighted_sum(
    problem: MultiObjectiveProblem,
    weights,
    n_starts: int = 4,
    seed: Optional[int] = 0,
    max_iterations: int = 200,
) -> GoalAttainmentResult:
    """Minimize ``sum(w_i f_i(x))`` subject to the hard constraints.

    Returned as a :class:`GoalAttainmentResult` with ``goals`` set to
    the attained objectives (gamma = 0 by construction) so downstream
    tables can treat every method uniformly.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (problem.n_objectives,):
        raise ValueError(
            f"weights must have shape ({problem.n_objectives},)"
        )
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    counter = _CountedObjectives(problem)
    rng = np.random.default_rng(seed)
    starts = latin_hypercube(n_starts, problem.lower, problem.upper, rng)

    def scalar(x):
        return float(np.dot(weights, counter(x)))

    constraint_list = []
    if problem.constraints is not None:
        constraint_list.append(
            {"type": "ineq",
             "fun": lambda x: -np.asarray(problem.constraints(x),
                                          dtype=float)}
        )
    best_x, best_value, best_success, best_message = None, np.inf, False, ""
    for x0 in starts:
        solution = sp_optimize.minimize(
            scalar, x0, method="SLSQP",
            bounds=list(zip(problem.lower, problem.upper)),
            constraints=constraint_list,
            options={"maxiter": max_iterations, "ftol": 1e-10},
        )
        violation = 0.0
        if problem.constraints is not None:
            violation = float(np.max(np.maximum(
                problem.constraints(solution.x), 0.0), initial=0.0))
        if violation <= 1e-6 and solution.fun < best_value:
            best_x = np.clip(solution.x, problem.lower, problem.upper)
            best_value = float(solution.fun)
            best_success = bool(solution.success)
            best_message = str(solution.message)
    if best_x is None:
        # No feasible solve; return the least-infeasible start for reporting.
        best_x = starts[0]
        best_success = False
        best_message = "no feasible weighted-sum solution found"
    f = counter(best_x)
    violation = 0.0
    if problem.constraints is not None:
        violation = float(np.max(np.maximum(
            problem.constraints(best_x), 0.0), initial=0.0))
    return GoalAttainmentResult(
        x=best_x, objectives=f, gamma=0.0, goals=f.copy(),
        weights=weights, nfev=counter.nfev, success=best_success,
        constraint_violation=violation, message=best_message,
    )


def epsilon_constraint(
    problem: MultiObjectiveProblem,
    primary_index: int,
    epsilons,
    n_starts: int = 4,
    seed: Optional[int] = 0,
    max_iterations: int = 200,
) -> GoalAttainmentResult:
    """Minimize one objective with the others bounded by *epsilons*.

    ``epsilons[i]`` bounds objective ``i``; the entry at
    ``primary_index`` is ignored.
    """
    epsilons = np.asarray(epsilons, dtype=float)
    if not 0 <= primary_index < problem.n_objectives:
        raise ValueError(f"primary_index out of range: {primary_index}")
    counter = _CountedObjectives(problem)
    rng = np.random.default_rng(seed)
    starts = latin_hypercube(n_starts, problem.lower, problem.upper, rng)
    secondary = [
        i for i in range(problem.n_objectives) if i != primary_index
    ]

    def scalar(x):
        return float(counter(x)[primary_index])

    def eps_constraints(x):
        f = counter(x)
        return np.array([epsilons[i] - f[i] for i in secondary])

    constraint_list = [{"type": "ineq", "fun": eps_constraints}]
    if problem.constraints is not None:
        constraint_list.append(
            {"type": "ineq",
             "fun": lambda x: -np.asarray(problem.constraints(x),
                                          dtype=float)}
        )
    best_x, best_value, best_success, best_message = None, np.inf, False, ""
    for x0 in starts:
        solution = sp_optimize.minimize(
            scalar, x0, method="SLSQP",
            bounds=list(zip(problem.lower, problem.upper)),
            constraints=constraint_list,
            options={"maxiter": max_iterations, "ftol": 1e-10},
        )
        x_sol = np.clip(solution.x, problem.lower, problem.upper)
        violation = float(np.max(np.maximum(
            -eps_constraints(x_sol), 0.0), initial=0.0))
        if problem.constraints is not None:
            violation = max(violation, float(np.max(np.maximum(
                problem.constraints(x_sol), 0.0), initial=0.0)))
        if violation <= 1e-6 and solution.fun < best_value:
            best_x, best_value = x_sol, float(solution.fun)
            best_success = bool(solution.success)
            best_message = str(solution.message)
    if best_x is None:
        best_x = starts[0]
        best_success = False
        best_message = "no feasible epsilon-constraint solution found"
    f = counter(best_x)
    violation = 0.0
    if problem.constraints is not None:
        violation = float(np.max(np.maximum(
            problem.constraints(best_x), 0.0), initial=0.0))
    return GoalAttainmentResult(
        x=best_x, objectives=f, gamma=0.0, goals=epsilons,
        weights=np.ones(problem.n_objectives), nfev=counter.nfev,
        success=best_success, constraint_violation=violation,
        message=best_message,
    )
