"""Meta-heuristic global optimizers, implemented from scratch.

The paper's extraction procedure combines "meta-heuristic and direct
optimization methods"; these are the meta-heuristic half.  All three
share one calling convention and return an :class:`OptimizationResult`
so the extraction pipeline can swap them freely:

* :func:`differential_evolution` — DE/rand/1/bin with dither, the
  workhorse;
* :func:`particle_swarm` — global-best PSO with velocity clamping;
* :func:`simulated_annealing` — Gaussian-step SA with geometric
  cooling and per-dimension step adaptation.

All operate on box bounds, are fully deterministic given a seed, and
count function evaluations honestly (the experiment tables report
``nfev``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.optimize.batching import PopulationEvaluator

__all__ = [
    "OptimizationResult",
    "differential_evolution",
    "particle_swarm",
    "simulated_annealing",
    "latin_hypercube",
]


@dataclass
class OptimizationResult:
    """Outcome of a single optimizer run."""

    x: np.ndarray
    fun: float
    nfev: int
    n_iterations: int
    converged: bool
    history: List[float] = field(default_factory=list)
    message: str = ""


def _check_bounds(lower, upper):
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if lower.shape != upper.shape or lower.ndim != 1:
        raise ValueError("bounds must be two 1-D arrays of equal length")
    if np.any(lower >= upper):
        raise ValueError("every lower bound must be below its upper bound")
    return lower, upper


def latin_hypercube(n_samples: int, lower, upper,
                    rng: np.random.Generator) -> np.ndarray:
    """Latin-hypercube samples within box bounds, shape (n_samples, dim)."""
    lower, upper = _check_bounds(lower, upper)
    dim = lower.size
    samples = np.empty((n_samples, dim))
    for d in range(dim):
        perm = rng.permutation(n_samples)
        jitter = rng.random(n_samples)
        samples[:, d] = (perm + jitter) / n_samples
    return lower + samples * (upper - lower)


def differential_evolution(
    objective: Callable[[np.ndarray], float],
    lower,
    upper,
    population_size: int = 30,
    max_iterations: int = 200,
    crossover_rate: float = 0.9,
    mutation: tuple = (0.5, 1.0),
    tolerance: float = 1e-10,
    seed: Optional[int] = None,
    initial: Optional[np.ndarray] = None,
    objective_batch: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    workers: Optional[int] = None,
) -> OptimizationResult:
    """DE/rand/1/bin with mutation dither and bounce-back bound repair.

    When ``objective_batch`` (a ``(B, n) -> (B,)`` map) or ``workers``
    is given, each generation's trial vectors are built first and
    evaluated in one population-level call.  This is the classic
    *generational* DE variant: donors are drawn from the start-of-
    generation population instead of the partially updated one, so
    trajectories differ from the sequential path (convergence behaviour
    is equivalent; the RNG consumption is identical).  Without either
    argument the original sequential path runs unchanged.
    """
    lower, upper = _check_bounds(lower, upper)
    rng = np.random.default_rng(seed)
    dim = lower.size
    pop_size = max(int(population_size), 4)
    evaluator = None
    if objective_batch is not None or workers is not None:
        evaluator = PopulationEvaluator(objective, objective_batch, workers)

    population = latin_hypercube(pop_size, lower, upper, rng)
    if initial is not None:
        population[0] = np.clip(np.asarray(initial, dtype=float), lower, upper)
    if evaluator is not None:
        fitness = evaluator(population)
    else:
        fitness = np.array([objective(ind) for ind in population])
    nfev = pop_size
    history = [float(np.min(fitness))]

    for iteration in range(1, max_iterations + 1):
        f_scale = rng.uniform(*mutation)
        trials = np.empty_like(population) if evaluator is not None else None
        for i in range(pop_size):
            candidates = rng.choice(pop_size, size=3, replace=False)
            # Re-draw until all three donors differ from the target index.
            while i in candidates:
                candidates = rng.choice(pop_size, size=3, replace=False)
            a, b, c = population[candidates]
            mutant = a + f_scale * (b - c)
            # Bounce-back repair keeps the mutant inside the box without
            # piling probability mass on the bounds.
            below = mutant < lower
            above = mutant > upper
            mutant[below] = lower[below] + rng.random(np.sum(below)) * (
                population[i][below] - lower[below]
            )
            mutant[above] = upper[above] - rng.random(np.sum(above)) * (
                upper[above] - population[i][above]
            )
            cross = rng.random(dim) < crossover_rate
            cross[rng.integers(dim)] = True
            trial = np.where(cross, mutant, population[i])
            if evaluator is not None:
                trials[i] = trial
                continue
            f_trial = objective(trial)
            nfev += 1
            if f_trial <= fitness[i]:
                population[i] = trial
                fitness[i] = f_trial
        if evaluator is not None:
            f_trials = evaluator(trials)
            nfev += pop_size
            accept = f_trials <= fitness
            population[accept] = trials[accept]
            fitness[accept] = f_trials[accept]
        best = float(np.min(fitness))
        history.append(best)
        spread = float(np.max(fitness) - best)
        if spread < tolerance * (1.0 + abs(best)):
            if evaluator is not None:
                evaluator.close()
            best_idx = int(np.argmin(fitness))
            return OptimizationResult(
                x=population[best_idx].copy(), fun=best, nfev=nfev,
                n_iterations=iteration, converged=True, history=history,
                message="population collapsed within tolerance",
            )
    if evaluator is not None:
        evaluator.close()
    best_idx = int(np.argmin(fitness))
    return OptimizationResult(
        x=population[best_idx].copy(), fun=float(fitness[best_idx]),
        nfev=nfev, n_iterations=max_iterations, converged=False,
        history=history, message="iteration limit reached",
    )


def particle_swarm(
    objective: Callable[[np.ndarray], float],
    lower,
    upper,
    n_particles: int = 30,
    max_iterations: int = 200,
    inertia: float = 0.72,
    cognitive: float = 1.49,
    social: float = 1.49,
    tolerance: float = 1e-10,
    seed: Optional[int] = None,
    objective_batch: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    workers: Optional[int] = None,
) -> OptimizationResult:
    """Global-best PSO with velocity clamping at half the box width.

    When ``objective_batch`` or ``workers`` is given, each iteration's
    particle positions are evaluated in one population-level call.
    Unlike DE, this is *exactly* trajectory-preserving: all positions
    of an iteration are fixed before any evaluation, and the
    personal/global-best updates consume the values in the same order
    as the sequential loop.
    """
    lower, upper = _check_bounds(lower, upper)
    rng = np.random.default_rng(seed)
    dim = lower.size
    span = upper - lower
    v_max = 0.5 * span
    evaluator = None
    if objective_batch is not None or workers is not None:
        evaluator = PopulationEvaluator(objective, objective_batch, workers)

    positions = latin_hypercube(n_particles, lower, upper, rng)
    velocities = rng.uniform(-0.1, 0.1, size=(n_particles, dim)) * span
    if evaluator is not None:
        fitness = evaluator(positions)
    else:
        fitness = np.array([objective(p) for p in positions])
    nfev = n_particles
    personal_best = positions.copy()
    personal_fitness = fitness.copy()
    g_idx = int(np.argmin(fitness))
    global_best = positions[g_idx].copy()
    global_fitness = float(fitness[g_idx])
    history = [global_fitness]
    stale = 0

    for iteration in range(1, max_iterations + 1):
        r1 = rng.random((n_particles, dim))
        r2 = rng.random((n_particles, dim))
        velocities = (
            inertia * velocities
            + cognitive * r1 * (personal_best - positions)
            + social * r2 * (global_best - positions)
        )
        velocities = np.clip(velocities, -v_max, v_max)
        positions = np.clip(positions + velocities, lower, upper)
        values = evaluator(positions) if evaluator is not None else None
        improved_any = False
        for i in range(n_particles):
            value = values[i] if values is not None else objective(
                positions[i]
            )
            nfev += 1
            if value < personal_fitness[i]:
                personal_fitness[i] = value
                personal_best[i] = positions[i].copy()
                if value < global_fitness:
                    global_fitness = float(value)
                    global_best = positions[i].copy()
                    improved_any = True
        history.append(global_fitness)
        stale = 0 if improved_any else stale + 1
        if stale >= 30 and np.std(personal_fitness) < tolerance * (
            1.0 + abs(global_fitness)
        ):
            if evaluator is not None:
                evaluator.close()
            return OptimizationResult(
                x=global_best, fun=global_fitness, nfev=nfev,
                n_iterations=iteration, converged=True, history=history,
                message="swarm stagnated within tolerance",
            )
    if evaluator is not None:
        evaluator.close()
    return OptimizationResult(
        x=global_best, fun=global_fitness, nfev=nfev,
        n_iterations=max_iterations, converged=False, history=history,
        message="iteration limit reached",
    )


def simulated_annealing(
    objective: Callable[[np.ndarray], float],
    lower,
    upper,
    max_iterations: int = 5000,
    initial_temperature: float = 1.0,
    cooling: float = 0.995,
    seed: Optional[int] = None,
    initial: Optional[np.ndarray] = None,
) -> OptimizationResult:
    """Gaussian-move SA with geometric cooling and adaptive step size."""
    lower, upper = _check_bounds(lower, upper)
    rng = np.random.default_rng(seed)
    span = upper - lower

    current = (
        np.clip(np.asarray(initial, dtype=float), lower, upper)
        if initial is not None
        else lower + rng.random(lower.size) * span
    )
    f_current = objective(current)
    nfev = 1
    best = current.copy()
    f_best = f_current
    temperature = initial_temperature
    step = 0.25
    accepted = 0
    history = [f_best]

    for iteration in range(1, max_iterations + 1):
        proposal = current + rng.standard_normal(lower.size) * step * span
        proposal = np.clip(proposal, lower, upper)
        f_proposal = objective(proposal)
        nfev += 1
        delta = f_proposal - f_current
        if delta <= 0 or rng.random() < np.exp(
            -delta / max(temperature, 1e-300)
        ):
            current, f_current = proposal, f_proposal
            accepted += 1
            if f_current < f_best:
                best, f_best = current.copy(), f_current
        temperature *= cooling
        if iteration % 100 == 0:
            # Keep the acceptance rate near 30-40% by scaling the step.
            rate = accepted / 100.0
            accepted = 0
            if rate > 0.45:
                step = min(step * 1.3, 1.0)
            elif rate < 0.2:
                step = max(step * 0.7, 1e-6)
            history.append(f_best)
    return OptimizationResult(
        x=best, fun=float(f_best), nfev=nfev, n_iterations=max_iterations,
        converged=True, history=history, message="annealing schedule complete",
    )
