"""Meta-heuristic global optimizers, implemented from scratch.

The paper's extraction procedure combines "meta-heuristic and direct
optimization methods"; these are the meta-heuristic half.  All three
share one calling convention and return an :class:`OptimizationResult`
so the extraction pipeline can swap them freely:

* :func:`differential_evolution` — DE/rand/1/bin with dither, the
  workhorse;
* :func:`particle_swarm` — global-best PSO with velocity clamping;
* :func:`simulated_annealing` — Gaussian-step SA with geometric
  cooling and per-dimension step adaptation.

All operate on box bounds, are fully deterministic given a seed, and
count function evaluations honestly (the experiment tables report
``nfev``).

The runtime is **fault tolerant**: a candidate whose evaluation
raises, hangs past the pool timeout, or returns a non-finite value is
scored ``+inf`` (never selected as best, never poisoning ``argmin``)
and counted on ``result.health`` — the run itself cannot be aborted by
a bad candidate.  DE and PSO additionally support deterministic
checkpoint/resume through an injectable
:class:`~repro.optimize.checkpoint.CheckpointStore`: an interrupted
run resumed from its last checkpoint finishes bit-for-bit identical to
an uninterrupted one, because the full population, counters, and RNG
bit-generator state are restored.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.guards import contracts as _contracts
from repro.obs import journal as _obs_journal
from repro.obs.telemetry import GenerationRecord, population_stats
from repro.optimize.batching import PopulationEvaluator
from repro.optimize.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    resume_or_none,
)
from repro.optimize.faults import RunHealth, guarded_call

__all__ = [
    "OptimizationResult",
    "differential_evolution",
    "particle_swarm",
    "simulated_annealing",
    "latin_hypercube",
]


@dataclass
class OptimizationResult:
    """Outcome of a single optimizer run."""

    x: np.ndarray
    fun: float
    nfev: int
    n_iterations: int
    converged: bool
    history: List[float] = field(default_factory=list)
    message: str = ""
    health: RunHealth = field(default_factory=RunHealth)

    def __post_init__(self):
        # Guard the trust boundary every optimizer reports through: a
        # non-finite best design or a NaN objective must never leave a
        # run silently (+inf is legitimate — an all-failed run).
        _contracts.check_optimization_result(
            self.x, self.fun, "OptimizationResult"
        )


def _check_bounds(lower, upper):
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if lower.shape != upper.shape or lower.ndim != 1:
        raise ValueError("bounds must be two 1-D arrays of equal length")
    if not (np.all(np.isfinite(lower)) and np.all(np.isfinite(upper))):
        raise ValueError(
            "bounds must be finite (no nan/inf): got lower="
            f"{lower.tolist()}, upper={upper.tolist()}"
        )
    if np.any(lower >= upper):
        raise ValueError("every lower bound must be below its upper bound")
    return lower, upper


def latin_hypercube(n_samples: int, lower, upper,
                    rng: np.random.Generator) -> np.ndarray:
    """Latin-hypercube samples within box bounds, shape (n_samples, dim)."""
    lower, upper = _check_bounds(lower, upper)
    dim = lower.size
    samples = np.empty((n_samples, dim))
    for d in range(dim):
        perm = rng.permutation(n_samples)
        jitter = rng.random(n_samples)
        samples[:, d] = (perm + jitter) / n_samples
    return lower + samples * (upper - lower)


def _save_checkpoint(store: CheckpointStore, algorithm: str, iteration: int,
                     rng: np.random.Generator, health: RunHealth,
                     payload: dict, on_generation=None):
    health.checkpoints_written += 1
    payload = dict(payload)
    payload["health"] = health.state()
    state_fn = getattr(on_generation, "state", None)
    if callable(state_fn):
        payload["telemetry"] = state_fn()
    store.save(Checkpoint(
        algorithm=algorithm,
        iteration=iteration,
        rng_state=rng.bit_generator.state,
        payload=payload,
    ))
    _obs_journal.emit("checkpoint", algorithm=algorithm,
                      iteration=int(iteration),
                      n_failures=health.n_failures)


def _restore_telemetry(on_generation, payload: dict):
    """Rewind a telemetry sink to a checkpoint's snapshot (if it can).

    Records emitted after the checkpoint by the interrupted run are
    dropped and re-emitted by the resumed run, so the final trace is
    contiguous and identical to an uninterrupted run's.
    """
    restore_fn = getattr(on_generation, "restore", None)
    state = payload.get("telemetry")
    if callable(restore_fn) and state is not None:
        restore_fn(state)


def _seed_population(population: np.ndarray, seeds,
                     lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """Overwrite the leading rows of a cold population with *seeds*.

    The cold population is always drawn first (same RNG consumption
    with or without seeding, so warm and cold runs stay comparable);
    the archived rows then replace up to the first ``len(seeds)`` rows,
    clipped into the current box.  Extra seed rows are dropped —
    partial seeding of a larger population keeps LHS coverage for the
    rest.
    """
    if seeds is None:
        return population
    matrix = np.atleast_2d(np.asarray(seeds, dtype=float))
    if matrix.ndim != 2 or matrix.shape[1] != population.shape[1]:
        raise ValueError(
            f"initial_population has shape {matrix.shape}; expected "
            f"(k, {population.shape[1]})"
        )
    k = min(matrix.shape[0], population.shape[0])
    population[:k] = np.clip(matrix[:k], lower, upper)
    return population


def _emit_final_population(algorithm: str, population: np.ndarray,
                           fitness) -> None:
    """Journal the final population for future warm starts.

    The event is the warm-start handoff: ``repro.obs.analytics`` reads
    it back through the bounded tail reader and feeds the rows into a
    later run's ``initial_population=``.  Non-finite fitness rows are
    kept — the seeding path clips and the receiving optimizer
    re-evaluates everything anyway.
    """
    _obs_journal.emit(
        "final_population",
        algorithm=algorithm,
        population=[[float(v) for v in row] for row in population],
        fitness=[float(v) for v in np.asarray(fitness, dtype=float)],
    )


def _emit_generation(on_generation, algorithm: str, generation: int,
                     nfev: int, fitness, health: RunHealth,
                     wall_time_s: float, violation: float = float("nan"),
                     extra: Optional[dict] = None):
    """Invoke an ``on_generation`` sink with one convergence snapshot."""
    if on_generation is None:
        return
    best, mean, spread = population_stats(fitness)
    on_generation(GenerationRecord(
        algorithm=algorithm,
        generation=generation,
        nfev=int(nfev),
        best=best,
        mean=mean,
        spread=spread,
        wall_time_s=float(wall_time_s),
        n_failures=health.n_failures,
        violation=violation,
        extra=dict(extra or {}),
    ))


def differential_evolution(
    objective: Callable[[np.ndarray], float],
    lower,
    upper,
    population_size: int = 30,
    max_iterations: int = 200,
    crossover_rate: float = 0.9,
    mutation: tuple = (0.5, 1.0),
    tolerance: float = 1e-10,
    seed: Optional[int] = None,
    initial: Optional[np.ndarray] = None,
    initial_population: Optional[np.ndarray] = None,
    objective_batch: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    generation_timeout: Optional[float] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
    checkpoint_every: int = 10,
    resume: bool = True,
    on_generation: Optional[Callable[[GenerationRecord], None]] = None,
) -> OptimizationResult:
    """DE/rand/1/bin with mutation dither and bounce-back bound repair.

    ``initial_population`` warm-starts the search: its rows (clipped to
    the bounds) replace the leading rows of the LHS initialization —
    typically the final population of a nearby archived run, found via
    :func:`repro.obs.analytics.warm_start_population`.  ``initial``
    still overwrites row 0 afterwards, and the completed run journals
    its own ``final_population`` event for the next warm start.

    When ``objective_batch`` (a ``(B, n) -> (B,)`` map), ``workers``,
    or ``backend`` is given, each generation's trial vectors are built
    first and evaluated in one population-level call — in-process,
    across thread shards, or on the shared-memory worker fleet
    depending on ``backend`` (see
    :class:`~repro.optimize.batching.PopulationEvaluator`).  This is
    the classic
    *generational* DE variant: donors are drawn from the start-of-
    generation population instead of the partially updated one, so
    trajectories differ from the sequential path (convergence behaviour
    is equivalent; the RNG consumption is identical).  Without either
    argument the original sequential path runs unchanged.

    With ``checkpoint_store`` given, the complete generation state is
    saved every ``checkpoint_every`` generations and (when ``resume``)
    restored on the next call, replaying the exact RNG trajectory; the
    checkpoint is cleared on successful completion.

    ``on_generation`` (any callable, typically a
    :class:`~repro.obs.telemetry.TelemetryRecorder`) receives one
    :class:`~repro.obs.telemetry.GenerationRecord` per generation —
    including generation 0 right after initialization.  Sinks exposing
    ``state()``/``restore()`` ride inside checkpoints, so resumed runs
    continue the trace contiguously.
    """
    lower, upper = _check_bounds(lower, upper)
    rng = np.random.default_rng(seed)
    dim = lower.size
    pop_size = max(int(population_size), 4)
    health = RunHealth()
    evaluator = None
    if (objective_batch is not None or workers is not None
            or backend is not None):
        evaluator = PopulationEvaluator(
            objective, objective_batch, workers,
            generation_timeout=generation_timeout, health=health,
            backend=backend,
        )

    try:
        checkpoint = (resume_or_none(checkpoint_store,
                                     "differential_evolution")
                      if resume else None)
        if checkpoint is not None:
            payload = checkpoint.payload
            population = np.array(payload["population"], dtype=float)
            if population.shape != (pop_size, dim):
                raise CheckpointError(
                    f"checkpoint population shape {population.shape} does "
                    f"not match the requested run ({pop_size}, {dim})"
                )
            fitness = np.array(payload["fitness"], dtype=float)
            history = list(payload["history"])
            nfev = int(payload["nfev"])
            health.restore(payload["health"])
            _restore_telemetry(on_generation, payload)
            rng.bit_generator.state = checkpoint.rng_state
            start_iteration = int(checkpoint.iteration)
            health.resumed_at = start_iteration
        else:
            init_start = time.monotonic()
            population = latin_hypercube(pop_size, lower, upper, rng)
            population = _seed_population(population, initial_population,
                                          lower, upper)
            if initial is not None:
                population[0] = np.clip(np.asarray(initial, dtype=float),
                                        lower, upper)
            if evaluator is not None:
                fitness = evaluator(population)
            else:
                fitness = np.array([
                    guarded_call(objective, ind, health)
                    for ind in population
                ])
            nfev = pop_size
            history = [float(np.min(fitness))]
            start_iteration = 0
            _emit_generation(on_generation, "differential_evolution", 0,
                             nfev, fitness, health,
                             time.monotonic() - init_start)

        for iteration in range(start_iteration + 1, max_iterations + 1):
            generation_start = time.monotonic()
            f_scale = rng.uniform(*mutation)
            trials = np.empty_like(population) if evaluator is not None \
                else None
            for i in range(pop_size):
                candidates = rng.choice(pop_size, size=3, replace=False)
                # Re-draw until all three donors differ from the target
                # index.
                while i in candidates:
                    candidates = rng.choice(pop_size, size=3, replace=False)
                a, b, c = population[candidates]
                mutant = a + f_scale * (b - c)
                # Bounce-back repair keeps the mutant inside the box
                # without piling probability mass on the bounds.
                below = mutant < lower
                above = mutant > upper
                mutant[below] = lower[below] + rng.random(np.sum(below)) * (
                    population[i][below] - lower[below]
                )
                mutant[above] = upper[above] - rng.random(np.sum(above)) * (
                    upper[above] - population[i][above]
                )
                cross = rng.random(dim) < crossover_rate
                cross[rng.integers(dim)] = True
                trial = np.where(cross, mutant, population[i])
                if evaluator is not None:
                    trials[i] = trial
                    continue
                f_trial = guarded_call(objective, trial, health)
                nfev += 1
                if f_trial <= fitness[i]:
                    population[i] = trial
                    fitness[i] = f_trial
            if evaluator is not None:
                f_trials = evaluator(trials)
                nfev += pop_size
                accept = f_trials <= fitness
                population[accept] = trials[accept]
                fitness[accept] = f_trials[accept]
            best = float(np.min(fitness))
            history.append(best)
            _emit_generation(on_generation, "differential_evolution",
                             iteration, nfev, fitness, health,
                             time.monotonic() - generation_start)
            worst = float(np.max(fitness))
            # All-penalty populations have worst == best == inf; treat
            # the spread as open so the run keeps searching.
            spread = worst - best if np.isfinite(worst) else np.inf
            if spread < tolerance * (1.0 + abs(best)):
                if checkpoint_store is not None:
                    checkpoint_store.clear()
                best_idx = int(np.argmin(fitness))
                _emit_final_population("differential_evolution",
                                       population, fitness)
                return OptimizationResult(
                    x=population[best_idx].copy(), fun=best, nfev=nfev,
                    n_iterations=iteration, converged=True, history=history,
                    message="population collapsed within tolerance",
                    health=health,
                )
            if (checkpoint_store is not None
                    and iteration % max(int(checkpoint_every), 1) == 0
                    and iteration < max_iterations):
                _save_checkpoint(
                    checkpoint_store, "differential_evolution", iteration,
                    rng, health,
                    {"population": population.copy(),
                     "fitness": fitness.copy(),
                     "history": list(history),
                     "nfev": int(nfev)},
                    on_generation=on_generation,
                )
        if checkpoint_store is not None:
            checkpoint_store.clear()
        best_idx = int(np.argmin(fitness))
        _emit_final_population("differential_evolution", population, fitness)
        return OptimizationResult(
            x=population[best_idx].copy(), fun=float(fitness[best_idx]),
            nfev=nfev, n_iterations=max_iterations, converged=False,
            history=history, message="iteration limit reached",
            health=health,
        )
    finally:
        if evaluator is not None:
            evaluator.close()


def particle_swarm(
    objective: Callable[[np.ndarray], float],
    lower,
    upper,
    n_particles: int = 30,
    max_iterations: int = 200,
    inertia: float = 0.72,
    cognitive: float = 1.49,
    social: float = 1.49,
    tolerance: float = 1e-10,
    seed: Optional[int] = None,
    initial_population: Optional[np.ndarray] = None,
    objective_batch: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    generation_timeout: Optional[float] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
    checkpoint_every: int = 10,
    resume: bool = True,
    on_generation: Optional[Callable[[GenerationRecord], None]] = None,
) -> OptimizationResult:
    """Global-best PSO with velocity clamping at half the box width.

    ``initial_population`` warm-starts the swarm the same way as
    :func:`differential_evolution`: archived rows replace the leading
    LHS positions (velocities stay randomly drawn), and the finished
    run journals its personal-best set as a ``final_population`` event.

    When ``objective_batch``, ``workers``, or ``backend`` is given,
    each iteration's particle positions are evaluated in one
    population-level call (see
    :class:`~repro.optimize.batching.PopulationEvaluator` for the
    backend choices).
    Unlike DE, this is *exactly* trajectory-preserving: all positions
    of an iteration are fixed before any evaluation, and the
    personal/global-best updates consume the values in the same order
    as the sequential loop.

    Checkpoint/resume and ``on_generation`` telemetry follow the same
    contract as :func:`differential_evolution` (deterministic,
    bit-for-bit; contiguous traces across resume).
    """
    lower, upper = _check_bounds(lower, upper)
    rng = np.random.default_rng(seed)
    dim = lower.size
    span = upper - lower
    v_max = 0.5 * span
    health = RunHealth()
    evaluator = None
    if (objective_batch is not None or workers is not None
            or backend is not None):
        evaluator = PopulationEvaluator(
            objective, objective_batch, workers,
            generation_timeout=generation_timeout, health=health,
            backend=backend,
        )

    try:
        checkpoint = (resume_or_none(checkpoint_store, "particle_swarm")
                      if resume else None)
        if checkpoint is not None:
            payload = checkpoint.payload
            positions = np.array(payload["positions"], dtype=float)
            if positions.shape != (n_particles, dim):
                raise CheckpointError(
                    f"checkpoint swarm shape {positions.shape} does not "
                    f"match the requested run ({n_particles}, {dim})"
                )
            velocities = np.array(payload["velocities"], dtype=float)
            personal_best = np.array(payload["personal_best"], dtype=float)
            personal_fitness = np.array(payload["personal_fitness"],
                                        dtype=float)
            global_best = np.array(payload["global_best"], dtype=float)
            global_fitness = float(payload["global_fitness"])
            history = list(payload["history"])
            stale = int(payload["stale"])
            nfev = int(payload["nfev"])
            health.restore(payload["health"])
            _restore_telemetry(on_generation, payload)
            rng.bit_generator.state = checkpoint.rng_state
            start_iteration = int(checkpoint.iteration)
            health.resumed_at = start_iteration
        else:
            init_start = time.monotonic()
            positions = latin_hypercube(n_particles, lower, upper, rng)
            positions = _seed_population(positions, initial_population,
                                         lower, upper)
            velocities = rng.uniform(-0.1, 0.1,
                                     size=(n_particles, dim)) * span
            if evaluator is not None:
                fitness = evaluator(positions)
            else:
                fitness = np.array([
                    guarded_call(objective, p, health) for p in positions
                ])
            nfev = n_particles
            personal_best = positions.copy()
            personal_fitness = fitness.copy()
            g_idx = int(np.argmin(fitness))
            global_best = positions[g_idx].copy()
            global_fitness = float(fitness[g_idx])
            history = [global_fitness]
            stale = 0
            start_iteration = 0
            _emit_generation(on_generation, "particle_swarm", 0, nfev,
                             fitness, health,
                             time.monotonic() - init_start)

        for iteration in range(start_iteration + 1, max_iterations + 1):
            generation_start = time.monotonic()
            r1 = rng.random((n_particles, dim))
            r2 = rng.random((n_particles, dim))
            velocities = (
                inertia * velocities
                + cognitive * r1 * (personal_best - positions)
                + social * r2 * (global_best - positions)
            )
            velocities = np.clip(velocities, -v_max, v_max)
            positions = np.clip(positions + velocities, lower, upper)
            values = evaluator(positions) if evaluator is not None else None
            improved_any = False
            for i in range(n_particles):
                value = values[i] if values is not None else guarded_call(
                    objective, positions[i], health
                )
                nfev += 1
                if value < personal_fitness[i]:
                    personal_fitness[i] = value
                    personal_best[i] = positions[i].copy()
                    if value < global_fitness:
                        global_fitness = float(value)
                        global_best = positions[i].copy()
                        improved_any = True
            history.append(global_fitness)
            _emit_generation(on_generation, "particle_swarm", iteration,
                             nfev, personal_fitness, health,
                             time.monotonic() - generation_start)
            stale = 0 if improved_any else stale + 1
            if stale >= 30 and np.std(personal_fitness) < tolerance * (
                1.0 + abs(global_fitness)
            ):
                if checkpoint_store is not None:
                    checkpoint_store.clear()
                _emit_final_population("particle_swarm", personal_best,
                                       personal_fitness)
                return OptimizationResult(
                    x=global_best, fun=global_fitness, nfev=nfev,
                    n_iterations=iteration, converged=True, history=history,
                    message="swarm stagnated within tolerance",
                    health=health,
                )
            if (checkpoint_store is not None
                    and iteration % max(int(checkpoint_every), 1) == 0
                    and iteration < max_iterations):
                _save_checkpoint(
                    checkpoint_store, "particle_swarm", iteration, rng,
                    health,
                    {"positions": positions.copy(),
                     "velocities": velocities.copy(),
                     "personal_best": personal_best.copy(),
                     "personal_fitness": personal_fitness.copy(),
                     "global_best": global_best.copy(),
                     "global_fitness": float(global_fitness),
                     "history": list(history),
                     "stale": int(stale),
                     "nfev": int(nfev)},
                    on_generation=on_generation,
                )
        if checkpoint_store is not None:
            checkpoint_store.clear()
        _emit_final_population("particle_swarm", personal_best,
                               personal_fitness)
        return OptimizationResult(
            x=global_best, fun=global_fitness, nfev=nfev,
            n_iterations=max_iterations, converged=False, history=history,
            message="iteration limit reached", health=health,
        )
    finally:
        if evaluator is not None:
            evaluator.close()


def simulated_annealing(
    objective: Callable[[np.ndarray], float],
    lower,
    upper,
    max_iterations: int = 5000,
    initial_temperature: float = 1.0,
    cooling: float = 0.995,
    seed: Optional[int] = None,
    initial: Optional[np.ndarray] = None,
) -> OptimizationResult:
    """Gaussian-move SA with geometric cooling and adaptive step size.

    NaN-safe: a proposal whose evaluation fails or is non-finite scores
    ``+inf`` — it can only be accepted while the current point is also
    ``+inf``, and it can never displace the best-so-far.
    """
    lower, upper = _check_bounds(lower, upper)
    rng = np.random.default_rng(seed)
    span = upper - lower
    health = RunHealth()

    current = (
        np.clip(np.asarray(initial, dtype=float), lower, upper)
        if initial is not None
        else lower + rng.random(lower.size) * span
    )
    f_current = guarded_call(objective, current, health)
    nfev = 1
    best = current.copy()
    f_best = f_current
    temperature = initial_temperature
    step = 0.25
    accepted = 0
    history = [f_best]

    for iteration in range(1, max_iterations + 1):
        proposal = current + rng.standard_normal(lower.size) * step * span
        proposal = np.clip(proposal, lower, upper)
        f_proposal = guarded_call(objective, proposal, health)
        nfev += 1
        delta = f_proposal - f_current
        # inf - inf is nan: when the current point is failed, accept any
        # proposal so the walk can escape the failed region; a failed
        # proposal against a finite current point is always rejected.
        if not np.isfinite(delta):
            accept = not np.isfinite(f_current)
        else:
            accept = delta <= 0 or rng.random() < np.exp(
                -delta / max(temperature, 1e-300)
            )
        if accept:
            current, f_current = proposal, f_proposal
            accepted += 1
            if f_current < f_best:
                best, f_best = current.copy(), f_current
        temperature *= cooling
        if iteration % 100 == 0:
            # Keep the acceptance rate near 30-40% by scaling the step.
            rate = accepted / 100.0
            accepted = 0
            if rate > 0.45:
                step = min(step * 1.3, 1.0)
            elif rate < 0.2:
                step = max(step * 0.7, 1e-6)
            history.append(f_best)
    return OptimizationResult(
        x=best, fun=float(f_best), nfev=nfev, n_iterations=max_iterations,
        converged=True, history=history, message="annealing schedule complete",
        health=health,
    )
