"""Optimization substrate: metaheuristics, extraction, goal attainment."""

from repro.optimize.batching import (
    BACKENDS,
    BatchShardExecutor,
    PopulationEvaluator,
    validate_workers,
)
from repro.optimize.fleet import FleetBroken, WorkerFleet
from repro.optimize.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    FileCheckpointStore,
    MemoryCheckpointStore,
)
from repro.optimize.faults import (
    FAILURE_EXCEPTIONS,
    EvaluationFailure,
    FaultInjector,
    InjectedFault,
    RunHealth,
    classify_exception,
    guarded_call,
)
from repro.optimize.metaheuristics import (
    OptimizationResult,
    differential_evolution,
    latin_hypercube,
    particle_swarm,
    simulated_annealing,
)
from repro.optimize.direct import refine_least_squares, refine_nelder_mead
from repro.optimize.extraction import (
    ColdFetExtractionResult,
    ExtractionResult,
    SmallSignalExtractionResult,
    extract_dc_model,
    extract_de_only,
    extract_extrinsics_cold_fet,
    extract_local_only,
    extract_small_signal,
)
from repro.optimize.goal_attainment import (
    GoalAttainmentResult,
    MultiObjectiveProblem,
    goal_attainment_improved,
    goal_attainment_standard,
)
from repro.optimize.nsga2 import Nsga2Result, nsga2

#: Robust-evaluation names resolved lazily (PEP 562): robust.py imports
#: repro.core.engine, whose own import of repro.optimize.faults runs
#: this package __init__ — an eager import here would close that cycle
#: while the engine module is still half-initialized.
_ROBUST_EXPORTS = (
    "CornerSet",
    "QuadraticSurrogate",
    "RobustEvaluator",
    "RobustFigures",
    "RobustScalarObjective",
    "RobustStateSink",
    "TemperatureCoefficients",
    "build_robust_problem",
    "robust_score",
)


def __getattr__(name):
    if name in _ROBUST_EXPORTS:
        from repro.optimize import robust
        return getattr(robust, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
from repro.optimize.scalarization import epsilon_constraint, weighted_sum
from repro.optimize.pareto import (
    dominates,
    hypervolume_2d,
    pareto_filter,
    sweep_goal_front,
)

__all__ = [
    "BACKENDS",
    "BatchShardExecutor",
    "FleetBroken",
    "PopulationEvaluator",
    "WorkerFleet",
    "validate_workers",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "FileCheckpointStore",
    "MemoryCheckpointStore",
    "FAILURE_EXCEPTIONS",
    "EvaluationFailure",
    "FaultInjector",
    "InjectedFault",
    "RunHealth",
    "classify_exception",
    "guarded_call",
    "OptimizationResult",
    "differential_evolution",
    "latin_hypercube",
    "particle_swarm",
    "simulated_annealing",
    "refine_least_squares",
    "refine_nelder_mead",
    "ColdFetExtractionResult",
    "ExtractionResult",
    "SmallSignalExtractionResult",
    "extract_dc_model",
    "extract_de_only",
    "extract_extrinsics_cold_fet",
    "extract_local_only",
    "extract_small_signal",
    "GoalAttainmentResult",
    "MultiObjectiveProblem",
    "goal_attainment_improved",
    "goal_attainment_standard",
    "Nsga2Result",
    "nsga2",
    "CornerSet",
    "QuadraticSurrogate",
    "RobustEvaluator",
    "RobustFigures",
    "RobustScalarObjective",
    "RobustStateSink",
    "TemperatureCoefficients",
    "build_robust_problem",
    "robust_score",
    "epsilon_constraint",
    "weighted_sum",
    "dominates",
    "hypervolume_2d",
    "pareto_filter",
    "sweep_goal_front",
]
