"""Population evaluation strategies for the metaheuristic optimizers.

The optimizers in :mod:`repro.optimize.metaheuristics` accept an
optional *batch objective* — one call mapping a ``(B, n)`` population
matrix to ``(B,)`` fitness values — so problems with a vectorized
model (the compiled LNA engine, any NumPy-friendly test function) pay
one solve per generation instead of one per candidate.

:class:`PopulationEvaluator` packages the dispatch rules behind a
``backend`` selector:

* ``"serial"`` — a plain Python loop, identical to what the optimizers
  did before batching existed;
* ``"batch"`` — one in-process call to ``objective_batch`` per
  generation;
* ``"thread"`` — ``objective_batch`` (or the scalar loop) sharded
  across a ``ThreadPoolExecutor``; the hot loop is numpy
  ``linalg.solve``, which releases the GIL, so the shards genuinely
  overlap with **zero** serialization;
* ``"fleet"`` — a persistent :class:`~repro.optimize.fleet.WorkerFleet`
  of processes exchanging candidates and results through preallocated
  shared-memory buffers (no per-call pickling — the objective ships
  once at spawn);
* ``"auto"`` — measure the first generation in-process and the second
  on the parallel candidate (threads when a batch objective exists,
  the fleet otherwise), then commit to whichever was faster — the
  decision is benchmarked, not guessed, and journaled as
  ``backend_decision``.

``backend=None`` keeps the historical inference: an explicit
``objective_batch`` wins; otherwise ``workers > 1`` selects the fleet
(the successor of the old per-generation process pool); otherwise the
serial loop.

Every path is **fault-isolated**: a candidate whose evaluation raises,
returns a non-finite value, or exceeds the per-generation timeout gets
``+inf`` fitness and a :class:`~repro.optimize.faults.RunHealth`
counter tick — never an exception out of the evaluator.  The fleet
additionally degrades gracefully: a worker death abandons the partial
generation and rebuilds the fleet (fresh processes *and* fresh
shared-memory segments) with capped exponential backoff, and after
``max_pool_rebuilds`` rebuilds the evaluator falls back to in-process
evaluation permanently (recorded as ``health.serial_fallback``).
Per-row results are bit-identical across all backends: the same
float64 candidate rows meet the same objective code, whether in this
process, a thread shard, or a fleet worker.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import journal as _obs_journal
from repro.obs import metrics as _obs_metrics
from repro.obs import tracer as _obs_tracer
from repro.optimize.faults import (
    BACKOFF_BASE,
    BACKOFF_CAP,
    CATEGORY_NON_FINITE,
    CATEGORY_TIMEOUT,
    RunHealth,
    guarded_call,
)
from repro.optimize.fleet import (
    STATUS_PENDING,
    FleetBroken,
    WorkerFleet,
    status_category,
)

__all__ = [
    "BACKENDS",
    "BatchShardExecutor",
    "PopulationEvaluator",
    "validate_workers",
]

#: Accepted values of ``PopulationEvaluator(backend=...)`` (besides
#: ``None``, which keeps the historical inference).
BACKENDS = ("serial", "batch", "thread", "fleet", "auto")


def validate_workers(workers: Optional[int]) -> Optional[int]:
    """Check a ``workers`` argument, returning it normalized to int.

    ``None`` means "no parallel workers".  Anything else must be a
    strictly positive integer; floats, bools, and non-positive counts
    are rejected with a message naming the offending value.
    """
    if workers is None:
        return None
    if isinstance(workers, bool) or not isinstance(
        workers, (int, np.integer)
    ):
        raise TypeError(
            f"workers must be a positive integer or None, "
            f"got {workers!r} of type {type(workers).__name__}"
        )
    if workers <= 0:
        raise ValueError(
            f"workers must be a positive integer, got {int(workers)}"
        )
    return int(workers)


def default_workers() -> int:
    """Worker count used when a parallel backend is asked for without
    an explicit ``workers``: the CPUs this process may actually use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class BatchShardExecutor:
    """Shard array-valued batch callables across a thread pool.

    The multi-objective problems expose ``objectives_batch`` /
    ``constraints_batch`` returning ``(B, k)`` matrices rather than the
    ``(B,)`` vectors :class:`PopulationEvaluator` handles, so they get
    their own thin sharding wrapper: :meth:`map_batch` splits the
    population into per-worker row blocks, runs the callable on each
    block concurrently, and stacks the results back **in row order** —
    bit-identical to the unsharded call because every row meets the
    same code on the same data.  Exceptions propagate unchanged so the
    callers' existing batch→serial degradation still owns failure
    handling.
    """

    def __init__(self, workers: int):
        workers = validate_workers(workers)
        if workers is None:
            raise ValueError("BatchShardExecutor needs an explicit "
                             "worker count")
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._closed:
            raise RuntimeError("BatchShardExecutor is closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-shard",
            )
        return self._pool

    def map_batch(self, fn: Callable[[np.ndarray], np.ndarray],
                  population: np.ndarray) -> np.ndarray:
        """``fn`` over row shards of *population*, restacked in order."""
        population = np.asarray(population, dtype=float)
        n = population.shape[0]
        n_shards = min(self.workers, n)
        if n_shards <= 1:
            return np.asarray(fn(population))
        pool = self._ensure_pool()
        shards = np.array_split(population, n_shards, axis=0)
        futures = [pool.submit(fn, shard) for shard in shards]
        parts = [np.asarray(future.result()) for future in futures]
        return np.concatenate(parts, axis=0)

    def close(self) -> None:
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "BatchShardExecutor":
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class PopulationEvaluator:
    """Maps a ``(B, n)`` population to ``(B,)`` objective values.

    Use as a context manager (or call :meth:`close`) when a parallel
    backend is in play, so worker processes/threads and shared-memory
    segments are reclaimed deterministically; a ``__del__`` safety net
    does the same if an optimizer dies mid-run without closing.  Both
    paths are idempotent, survive a half-constructed instance, and
    unlink every shared-memory segment, so killed runs leak nothing in
    ``/dev/shm``.

    Parameters
    ----------
    objective, objective_batch, workers, backend:
        Dispatch inputs (see module docstring).  ``workers`` defaults
        to the usable CPU count when a parallel backend is requested
        without it.
    objective_factory:
        Optional zero-argument callable shipped to fleet workers in
        place of the objective itself; each worker calls it **once** at
        startup and it may return a scalar objective or an
        ``(objective, objective_batch)`` pair.  Use it when the
        objective wraps expensive state (a compiled template) that is
        cheaper to rebuild in the worker than to serialize.
    generation_timeout:
        Wall-clock budget in seconds for one population evaluation on
        the fleet path.  Candidates still pending at the deadline are
        scored ``+inf`` (category ``"timeout"``) and the fleet is
        rebuilt with fresh segments, abandoning the hung workers.
    max_pool_rebuilds:
        Fleet rebuilds (after a worker death or a timeout) before the
        evaluator gives up on multiprocessing and runs in-process for
        the rest of the run.
    backoff_base, backoff_cap:
        Exponential backoff (seconds) between fleet rebuilds:
        ``min(cap, base * 2**k)`` after the k-th rebuild.
    fleet_capacity:
        Initial row capacity of the fleet's shared buffers (grown
        automatically when a larger population arrives).
    health:
        Shared :class:`RunHealth` to record failures into; a private
        one is created when not given (exposed as ``.health``).
    """

    def __init__(self, objective: Callable[[np.ndarray], float],
                 objective_batch: Optional[Callable] = None,
                 workers: Optional[int] = None,
                 generation_timeout: Optional[float] = None,
                 max_pool_rebuilds: int = 3,
                 backoff_base: float = BACKOFF_BASE,
                 backoff_cap: float = BACKOFF_CAP,
                 health: Optional[RunHealth] = None,
                 backend: Optional[str] = None,
                 objective_factory: Optional[Callable] = None,
                 fleet_capacity: int = 256):
        workers = validate_workers(workers)
        if generation_timeout is not None and generation_timeout <= 0:
            raise ValueError(
                f"generation_timeout must be positive, "
                f"got {generation_timeout}"
            )
        if backend is not None and backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS} or None, "
                f"got {backend!r}"
            )
        if backend == "batch" and objective_batch is None:
            raise ValueError('backend="batch" requires objective_batch')
        self._objective = objective
        self._batch = objective_batch
        self._objective_factory = objective_factory
        if workers is None and backend in ("thread", "fleet", "auto"):
            workers = default_workers()
        self._workers = workers
        self.generation_timeout = generation_timeout
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.health = health if health is not None else RunHealth()
        self.fleet_capacity = int(fleet_capacity)
        self.requested_backend = backend
        self._fleet: Optional[WorkerFleet] = None
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._fleet_abandoned = False
        self._auto_samples: List[Tuple[str, float]] = []
        self._closed = False
        self.backend = self._resolve_backend(backend)

    def _resolve_backend(self, backend: Optional[str]) -> str:
        if backend is None:
            # Historical inference: batch wins; otherwise workers > 1
            # means the (now fleet-backed) process path; else serial.
            if self._batch is not None:
                return "batch"
            if self._workers is not None and self._workers > 1:
                return "fleet"
            return "serial"
        if backend in ("thread", "fleet", "auto") and self._workers == 1:
            # One worker cannot overlap anything; stay in-process.
            return "batch" if self._batch is not None else "serial"
        return backend

    # -- dispatch -----------------------------------------------------------
    def __call__(self, population: np.ndarray) -> np.ndarray:
        population = np.atleast_2d(np.asarray(population, dtype=float))
        mode = self._current_mode()
        with _obs_tracer.span("batching.generation",
                              batch=population.shape[0], mode=mode):
            start = time.perf_counter()
            values = self._dispatch(mode, population)
            elapsed = time.perf_counter() - start
        if self.backend == "auto":
            self._auto_step(mode, population.shape[0], elapsed)
        _obs_metrics.inc("batching.generations")
        _obs_metrics.inc(f"batching.generations_{mode}")
        return values

    def _current_mode(self) -> str:
        """The concrete path the next generation will take."""
        backend = self.backend
        if self._closed and backend in ("thread", "fleet", "auto"):
            # A closed evaluator must not respawn workers; it keeps
            # answering (the old pool path did too), just in-process.
            return self._inprocess_mode()
        if backend == "auto":
            # Probe in-process first, the parallel candidate second.
            if not self._auto_samples:
                return self._inprocess_mode()
            return self._parallel_candidate()
        if backend == "fleet" and self._fleet_abandoned:
            return self._inprocess_mode()
        return backend

    def _inprocess_mode(self) -> str:
        return "batch" if self._batch is not None else "serial"

    def _parallel_candidate(self) -> str:
        # Threads only overlap when the batch objective does real
        # numpy work that releases the GIL; a scalar-only objective
        # needs real processes.
        return "thread" if self._batch is not None else "fleet"

    def _dispatch(self, mode: str, population: np.ndarray) -> np.ndarray:
        if mode == "batch":
            return self._batch_eval(population)
        if mode == "thread":
            return self._thread_eval(population)
        if mode == "fleet":
            return self._fleet_eval(population)
        return self._serial_eval(population)

    def _auto_step(self, mode: str, n_rows: int, elapsed: float) -> None:
        """Commit ``backend="auto"`` after one timed generation each way."""
        rate = n_rows / elapsed if elapsed > 0 else float("inf")
        self._auto_samples.append((mode, rate))
        if len(self._auto_samples) < 2:
            return
        (mode_a, rate_a), (mode_b, rate_b) = self._auto_samples[:2]
        chosen = mode_a if rate_a >= rate_b else mode_b
        self.backend = chosen
        _obs_journal.emit(
            "backend_decision",
            chosen=chosen,
            candidates={mode_a: float(rate_a), mode_b: float(rate_b)},
            workers=self._workers,
        )
        if chosen != "fleet" and self._fleet is not None:
            self._discard_fleet()

    # -- in-process paths ---------------------------------------------------
    def _serial_eval(self, population: np.ndarray) -> np.ndarray:
        return np.array(
            [guarded_call(self._objective, x, self.health)
             for x in population],
            dtype=float,
        )

    def _batch_eval(self, population: np.ndarray) -> np.ndarray:
        values, health = self._guarded_batch(population)
        self.health.merge(health)
        return values

    def _guarded_batch(self, population: np.ndarray
                       ) -> Tuple[np.ndarray, RunHealth]:
        """One fault-isolated batch call, failures in a local record.

        Shared by the in-process batch path and every thread shard, so
        a sharded generation counts failures exactly like an unsharded
        one — the local records merge in shard order afterwards.
        """
        local = RunHealth()
        n = population.shape[0]
        try:
            values = np.asarray(self._batch(population),
                                dtype=float).reshape(-1)
        except Exception:  # noqa: BLE001 - degrade, don't abort
            # The serial re-evaluation records the per-candidate
            # failures, so the batch-level error only counts as a retry.
            local.retries += 1
            values = np.array(
                [guarded_call(self._objective, x, local)
                 for x in population],
                dtype=float,
            )
            return values, local
        if values.shape[0] != n:
            raise ValueError(
                f"objective_batch returned {values.shape[0]} values "
                f"for a population of {n}"
            )
        bad = ~np.isfinite(values)
        if np.any(bad):
            local.record(CATEGORY_NON_FINITE, int(np.sum(bad)))
            values = np.where(bad, np.inf, values)
        return values, local

    # -- thread-parallel path -----------------------------------------------
    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self._workers,
                thread_name_prefix="repro-eval",
            )
        return self._thread_pool

    def _thread_eval(self, population: np.ndarray) -> np.ndarray:
        n = population.shape[0]
        n_shards = min(self._workers or 1, n)
        if n_shards <= 1:
            return (self._batch_eval(population)
                    if self._batch is not None
                    else self._serial_eval(population))
        pool = self._ensure_thread_pool()
        shards = np.array_split(population, n_shards, axis=0)
        if self._batch is not None:
            futures = [pool.submit(self._guarded_batch, shard)
                       for shard in shards]
        else:
            futures = [pool.submit(self._guarded_rows, shard)
                       for shard in shards]
        parts: List[np.ndarray] = []
        # Merge shard-local health in shard (row) order so counter
        # totals are independent of thread scheduling.
        for future in futures:
            values, shard_health = future.result()
            parts.append(values)
            self.health.merge(shard_health)
        return np.concatenate(parts)

    def _guarded_rows(self, population: np.ndarray
                      ) -> Tuple[np.ndarray, RunHealth]:
        local = RunHealth()
        values = np.array(
            [guarded_call(self._objective, x, local) for x in population],
            dtype=float,
        )
        return values, local

    # -- shared-memory fleet path -------------------------------------------
    def _ensure_fleet(self) -> WorkerFleet:
        if self._fleet is None:
            self._fleet = WorkerFleet(
                objective=self._objective,
                objective_batch=self._batch,
                objective_factory=self._objective_factory,
                workers=self._workers or default_workers(),
                capacity=self.fleet_capacity,
            )
        return self._fleet

    def _fleet_eval(self, population: np.ndarray) -> np.ndarray:
        while not self._fleet_abandoned:
            try:
                return self._fleet_eval_once(population)
            except FleetBroken:
                # The partial generation is discarded (its failures
                # were never merged); retry whole on a fresh fleet.
                self._discard_fleet()
                if self.health.pool_rebuilds >= self.max_pool_rebuilds:
                    self._abandon_fleet()
                    break
                self._rebuild_backoff()
        # Permanent (or configured-off) in-process fallback.
        return (self._batch_eval(population) if self._batch is not None
                else self._serial_eval(population))

    def _fleet_eval_once(self, population: np.ndarray) -> np.ndarray:
        fleet = self._ensure_fleet()
        tracer = _obs_tracer.get_tracer()
        result = fleet.evaluate(
            population,
            timeout=self.generation_timeout,
            tracing=tracer.enabled,
        )
        # Per-row failures arrive as status-lane codes and fold into a
        # generation-local record first: a FleetBroken above abandons
        # the whole generation before anything is merged, so a rebuilt
        # re-run cannot double-count (same rule the old pool path had).
        generation_health = RunHealth()
        for code in result.statuses[result.statuses > 0]:
            generation_health.record(status_category(int(code)))
        n_pending = int(np.sum(result.statuses == STATUS_PENDING))
        if n_pending:
            generation_health.record(CATEGORY_TIMEOUT, n_pending)
        generation_health.retries += result.retries
        if result.spans:
            stack = tracer._stack()
            tracer.merge(result.spans,
                         parent_id=stack[-1] if stack else None)
        for name, value in result.counters.items():
            _obs_metrics.inc(name, value)
        self.health.merge(generation_health)
        if result.timed_out:
            _obs_journal.emit(
                "generation_timeout",
                n_timeouts=n_pending,
                batch=int(population.shape[0]),
            )
            # Hung workers poison every later generation — and might
            # still write into reused buffers — so the whole fleet,
            # segments included, is swapped out.
            self._discard_fleet()
            if self.health.pool_rebuilds >= self.max_pool_rebuilds:
                self._abandon_fleet()
            else:
                self._rebuild_backoff()
        return result.values

    def _rebuild_backoff(self) -> None:
        """Count a rebuild and back off; the next use spawns fresh."""
        delay = min(self.backoff_cap,
                    self.backoff_base * 2.0 ** self.health.pool_rebuilds)
        self.health.pool_rebuilds += 1
        self.health.retries += 1
        _obs_journal.emit("pool_rebuild",
                          rebuilds=self.health.pool_rebuilds,
                          delay_s=float(delay))
        if delay > 0:
            time.sleep(delay)

    def _discard_fleet(self) -> None:
        fleet, self._fleet = self._fleet, None
        if fleet is not None:
            # Short join: dead workers don't answer and hung ones get
            # terminated; close() always unlinks the segments.
            fleet.close(join_timeout=0.2)

    def _abandon_fleet(self) -> None:
        self._discard_fleet()
        self._fleet_abandoned = True
        self.health.serial_fallback = True
        _obs_journal.emit("serial_fallback",
                          pool_rebuilds=self.health.pool_rebuilds)

    # -- lifecycle ----------------------------------------------------------
    def close(self):
        """Release workers, threads, and shared memory.  Idempotent and
        exception-safe — callable on a half-constructed instance and
        during interpreter shutdown."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        fleet = getattr(self, "_fleet", None)
        self._fleet = None
        if fleet is not None:
            try:
                fleet.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        pool = getattr(self, "_thread_pool", None)
        self._thread_pool = None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - teardown best effort
                pass

    def __del__(self):
        # Safety net for optimizers that die mid-run; must never raise,
        # even when __init__ failed before attributes existed.
        try:
            self.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass

    def __enter__(self) -> "PopulationEvaluator":
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
