"""Population evaluation strategies for the metaheuristic optimizers.

The optimizers in :mod:`repro.optimize.metaheuristics` accept an
optional *batch objective* — one call mapping a ``(B, n)`` population
matrix to ``(B,)`` fitness values — so problems with a vectorized
model (the compiled LNA engine, any NumPy-friendly test function) pay
one solve per generation instead of one per candidate.

:class:`PopulationEvaluator` packages the dispatch rules:

1. an explicit ``objective_batch`` wins — it is trusted to match the
   scalar objective row by row;
2. otherwise, ``workers > 1`` spreads the scalar objective over a
   ``ProcessPoolExecutor`` (the objective must then be picklable, i.e.
   a module-level function, not a closure);
3. otherwise, a plain Python loop — identical to what the optimizers
   did before batching existed.

Every path is **fault-isolated**: a candidate whose evaluation raises,
returns a non-finite value, or exceeds the per-generation timeout gets
``+inf`` fitness and a :class:`~repro.optimize.faults.RunHealth`
counter tick — never an exception out of the evaluator.  The process
pool additionally degrades gracefully: a batch-objective error falls
back to the serial loop for that generation, a ``BrokenProcessPool``
rebuilds the pool with capped exponential backoff, and after
``max_pool_rebuilds`` rebuilds the evaluator falls back to the serial
loop permanently (recorded as ``health.serial_fallback``).
"""

from __future__ import annotations

import time
import concurrent.futures
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional

import numpy as np

from repro.obs import journal as _obs_journal
from repro.obs import metrics as _obs_metrics
from repro.obs import tracer as _obs_tracer
from repro.optimize.faults import (
    BACKOFF_BASE,
    BACKOFF_CAP,
    CATEGORY_NON_FINITE,
    CATEGORY_TIMEOUT,
    RunHealth,
    classify_exception,
    guarded_call,
)

__all__ = ["PopulationEvaluator", "validate_workers"]


def _traced_objective(objective, x):
    """Pool target that captures the worker's spans alongside the value.

    Runs *objective* under a fresh enabled tracer swapped into the
    worker's global slot (so instrumented components inside the
    objective record into it too) and returns ``(value, spans)`` for
    the parent to :meth:`~repro.obs.tracer.Tracer.merge`.  Must stay a
    module-level function — pool targets are pickled.
    """
    worker_tracer = _obs_tracer.Tracer(enabled=True)
    previous = _obs_tracer.set_tracer(worker_tracer)
    try:
        with worker_tracer.span("worker.objective"):
            value = objective(x)
    finally:
        _obs_tracer.set_tracer(previous)
    return value, worker_tracer.drain()


def validate_workers(workers: Optional[int]) -> Optional[int]:
    """Check a ``workers`` argument, returning it normalized to int.

    ``None`` means "no process pool".  Anything else must be a strictly
    positive integer; floats, bools, and non-positive counts are
    rejected with a message naming the offending value.
    """
    if workers is None:
        return None
    if isinstance(workers, bool) or not isinstance(
        workers, (int, np.integer)
    ):
        raise TypeError(
            f"workers must be a positive integer or None, "
            f"got {workers!r} of type {type(workers).__name__}"
        )
    if workers <= 0:
        raise ValueError(
            f"workers must be a positive integer, got {int(workers)}"
        )
    return int(workers)


class PopulationEvaluator:
    """Maps a ``(B, n)`` population to ``(B,)`` objective values.

    Use as a context manager (or call :meth:`close`) when ``workers``
    is given, so the process pool is shut down deterministically; a
    ``__del__`` safety net reclaims the pool if an optimizer dies
    mid-run without closing.

    Parameters
    ----------
    objective, objective_batch, workers:
        Dispatch inputs (see module docstring).
    generation_timeout:
        Wall-clock budget in seconds for one population evaluation on
        the process-pool path.  Candidates still pending at the
        deadline are scored ``+inf`` (category ``"timeout"``) and the
        pool is rebuilt, abandoning the hung workers.
    max_pool_rebuilds:
        Pool rebuilds (after ``BrokenProcessPool`` or a timeout) before
        the evaluator gives up on multiprocessing and runs the serial
        loop for the rest of the run.
    backoff_base, backoff_cap:
        Exponential backoff (seconds) between pool rebuilds:
        ``min(cap, base * 2**k)`` after the k-th rebuild.
    health:
        Shared :class:`RunHealth` to record failures into; a private
        one is created when not given (exposed as ``.health``).
    """

    def __init__(self, objective: Callable[[np.ndarray], float],
                 objective_batch: Optional[Callable] = None,
                 workers: Optional[int] = None,
                 generation_timeout: Optional[float] = None,
                 max_pool_rebuilds: int = 3,
                 backoff_base: float = BACKOFF_BASE,
                 backoff_cap: float = BACKOFF_CAP,
                 health: Optional[RunHealth] = None):
        workers = validate_workers(workers)
        if generation_timeout is not None and generation_timeout <= 0:
            raise ValueError(
                f"generation_timeout must be positive, "
                f"got {generation_timeout}"
            )
        self._objective = objective
        self._batch = objective_batch
        self._workers = workers
        self.generation_timeout = generation_timeout
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.health = health if health is not None else RunHealth()
        self._pool: Optional[ProcessPoolExecutor] = None
        if objective_batch is None and workers is not None and workers > 1:
            self._pool = ProcessPoolExecutor(max_workers=workers)

    # -- dispatch -----------------------------------------------------------
    def __call__(self, population: np.ndarray) -> np.ndarray:
        population = np.atleast_2d(np.asarray(population, dtype=float))
        if self._batch is not None:
            mode = "batch"
        elif self._pool is not None:
            mode = "pool"
        else:
            mode = "serial"
        with _obs_tracer.span("batching.generation",
                              batch=population.shape[0], mode=mode):
            if mode == "batch":
                values = self._batch_eval(population)
            elif mode == "pool":
                values = self._pool_eval(population)
            else:
                values = self._serial_eval(population)
        _obs_metrics.inc("batching.generations")
        _obs_metrics.inc(f"batching.generations_{mode}")
        return values

    def _serial_eval(self, population: np.ndarray) -> np.ndarray:
        return np.array(
            [guarded_call(self._objective, x, self.health)
             for x in population],
            dtype=float,
        )

    def _batch_eval(self, population: np.ndarray) -> np.ndarray:
        n = population.shape[0]
        try:
            values = np.asarray(self._batch(population),
                                dtype=float).reshape(-1)
        except Exception:  # noqa: BLE001 - degrade, don't abort
            # The serial re-evaluation records the per-candidate
            # failures, so the batch-level error only counts as a retry.
            self.health.retries += 1
            return self._serial_eval(population)
        if values.shape[0] != n:
            raise ValueError(
                f"objective_batch returned {values.shape[0]} values "
                f"for a population of {n}"
            )
        bad = ~np.isfinite(values)
        if np.any(bad):
            self.health.record(CATEGORY_NON_FINITE, int(np.sum(bad)))
            values = np.where(bad, np.inf, values)
        return values

    # -- process-pool path --------------------------------------------------
    def _pool_eval(self, population: np.ndarray) -> np.ndarray:
        while self._pool is not None:
            try:
                return self._pool_eval_once(population)
            except BrokenProcessPool:
                if self.health.pool_rebuilds >= self.max_pool_rebuilds:
                    self._abandon_pool()
                    break
                self._rebuild_pool()
        # Permanent (or configured-off) serial fallback.
        return self._serial_eval(population)

    def _pool_eval_once(self, population: np.ndarray) -> np.ndarray:
        tracer = _obs_tracer.get_tracer()
        tracing = tracer.enabled
        if tracing:
            futures = [self._pool.submit(_traced_objective,
                                         self._objective, x)
                       for x in population]
            stack = tracer._stack()
            parent_id = stack[-1] if stack else None
        else:
            futures = [self._pool.submit(self._objective, x)
                       for x in population]
        deadline = None
        if self.generation_timeout is not None:
            deadline = time.monotonic() + self.generation_timeout
        values = np.empty(len(futures), dtype=float)
        timed_out = False
        # Per-candidate failures go into a generation-local record and
        # are folded into self.health only when this generation returns
        # values.  A BrokenProcessPool mid-collection aborts the whole
        # generation and the caller re-runs it on a fresh pool — merging
        # eagerly would double-count the candidates already collected.
        generation_health = RunHealth()
        for i, future in enumerate(futures):
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                result = future.result(timeout=remaining)
                if tracing:
                    value, worker_spans = result
                    tracer.merge(worker_spans, parent_id=parent_id)
                    value = float(value)
                else:
                    value = float(result)
            except BrokenProcessPool:
                raise
            except concurrent.futures.TimeoutError:
                future.cancel()
                generation_health.record(CATEGORY_TIMEOUT)
                timed_out = True
                values[i] = np.inf
                continue
            except Exception as exc:  # noqa: BLE001 - absorb per candidate
                generation_health.record(classify_exception(exc))
                values[i] = np.inf
                continue
            if not np.isfinite(value):
                generation_health.record(CATEGORY_NON_FINITE)
                values[i] = np.inf
            else:
                values[i] = value
        self.health.merge(generation_health)
        if timed_out:
            _obs_journal.emit(
                "generation_timeout",
                n_timeouts=generation_health.failures.get(
                    CATEGORY_TIMEOUT, 0),
                batch=len(futures),
            )
            # Hung workers poison every later generation; swap the pool.
            if self.health.pool_rebuilds >= self.max_pool_rebuilds:
                self._abandon_pool()
            else:
                self._rebuild_pool()
        return values

    def _rebuild_pool(self):
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        delay = min(self.backoff_cap,
                    self.backoff_base * 2.0 ** self.health.pool_rebuilds)
        self.health.pool_rebuilds += 1
        self.health.retries += 1
        _obs_journal.emit("pool_rebuild",
                          rebuilds=self.health.pool_rebuilds,
                          delay_s=float(delay))
        if delay > 0:
            time.sleep(delay)
        self._pool = ProcessPoolExecutor(max_workers=self._workers)

    def _abandon_pool(self):
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.health.serial_fallback = True
        _obs_journal.emit("serial_fallback",
                          pool_rebuilds=self.health.pool_rebuilds)

    # -- lifecycle ----------------------------------------------------------
    def close(self):
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __del__(self):
        # Safety net for optimizers that die mid-run; don't wait for
        # stragglers during interpreter teardown.
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - teardown best effort
                pass
            self._pool = None

    def __enter__(self) -> "PopulationEvaluator":
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
