"""Population evaluation strategies for the metaheuristic optimizers.

The optimizers in :mod:`repro.optimize.metaheuristics` accept an
optional *batch objective* — one call mapping a ``(B, n)`` population
matrix to ``(B,)`` fitness values — so problems with a vectorized
model (the compiled LNA engine, any NumPy-friendly test function) pay
one solve per generation instead of one per candidate.

:class:`PopulationEvaluator` packages the dispatch rules:

1. an explicit ``objective_batch`` wins — it is trusted to match the
   scalar objective row by row;
2. otherwise, ``workers > 1`` spreads the scalar objective over a
   ``ProcessPoolExecutor`` (the objective must then be picklable, i.e.
   a module-level function, not a closure);
3. otherwise, a plain Python loop — identical to what the optimizers
   did before batching existed.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional

import numpy as np

__all__ = ["PopulationEvaluator"]


class PopulationEvaluator:
    """Maps a ``(B, n)`` population to ``(B,)`` objective values.

    Use as a context manager (or call :meth:`close`) when ``workers``
    is given, so the process pool is shut down deterministically.
    """

    def __init__(self, objective: Callable[[np.ndarray], float],
                 objective_batch: Optional[Callable] = None,
                 workers: Optional[int] = None):
        self._objective = objective
        self._batch = objective_batch
        self._pool = None
        if objective_batch is None and workers is not None and workers > 1:
            self._pool = ProcessPoolExecutor(max_workers=int(workers))

    def __call__(self, population: np.ndarray) -> np.ndarray:
        population = np.atleast_2d(np.asarray(population, dtype=float))
        n = population.shape[0]
        if self._batch is not None:
            values = np.asarray(self._batch(population),
                                dtype=float).reshape(-1)
            if values.shape[0] != n:
                raise ValueError(
                    f"objective_batch returned {values.shape[0]} values "
                    f"for a population of {n}"
                )
            return values
        if self._pool is not None:
            return np.fromiter(
                self._pool.map(self._objective, population),
                dtype=float, count=n,
            )
        return np.array([self._objective(x) for x in population],
                        dtype=float)

    def close(self):
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "PopulationEvaluator":
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
