"""Persistent shared-memory evaluator fleet.

The old parallel path forked a ``ProcessPoolExecutor`` and pickled every
candidate, objective reference, and result through it *per call* — at
LNA evaluation cost (~5 ms/candidate) the serialization swamped the
actual MNA work and the pooled path clocked in slower than the scalar
loop.  :class:`WorkerFleet` replaces that round-trip with long-lived
worker processes and a zero-copy data plane:

* **Workers build the objective once.**  Each worker process receives
  the objective (or an ``objective_factory`` that builds it, e.g. a
  :class:`~repro.core.engine.CompiledTemplate` compile) a single time at
  spawn and reuses it for every generation.
* **Candidates and results travel through shared memory.**  Three
  preallocated ``multiprocessing.shared_memory`` buffers — the ``(C, n)``
  float64 candidate matrix, the ``(C,)`` float64 value vector, and a
  ``(C,)`` int8 per-row status lane — are written in place.  Nothing on
  the hot path is pickled.
* **Only control messages use queues.**  One small tuple per worker per
  generation (generation id + row range out, a completion record with
  drained spans/metric counters back).

Per-row semantics are *identical* to the in-process paths: a worker
evaluates each row with the same guarded classification as
:func:`repro.optimize.faults.guarded_call` (exceptions and non-finite
values map to ``+inf`` plus a taxonomy code in the status lane), and a
shard-level batch objective degrades to the per-row scalar loop exactly
like :meth:`PopulationEvaluator._batch_eval` does — so a healthy row's
value is bit-for-bit the serial result no matter which worker solved
it.

Failure model: any worker death (crash, kill, lost control channel)
raises :class:`FleetBroken`, and the caller — the rebuild/backoff/
serial-fallback ladder in
:class:`~repro.optimize.batching.PopulationEvaluator` — discards the
partial generation and retries on a fresh fleet.  A generation timeout
returns the rows that *did* finish and flags the stragglers so the
caller can penalize them and swap the fleet.  ``close()`` and
``__del__`` are idempotent, survive half-constructed instances, and
always unlink the shared-memory segments so killed runs leak nothing in
``/dev/shm``.
"""

from __future__ import annotations

import os
import time
import queue as _queue
import multiprocessing
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.optimize.faults import (
    CATEGORY_BAD_BIAS,
    CATEGORY_CONTRACT,
    CATEGORY_DC,
    CATEGORY_EXCEPTION,
    CATEGORY_NON_FINITE,
    CATEGORY_SINGULAR,
    CATEGORY_TIMEOUT,
    classify_exception,
)

__all__ = [
    "FleetBroken",
    "FleetResult",
    "WorkerFleet",
    "STATUS_PENDING",
    "STATUS_OK",
    "status_category",
    "SHM_PREFIX",
    "list_segments",
    "segment_owner_pid",
    "stale_segments",
    "unlink_segment",
]

#: Name prefix of every shared-memory segment the fleet creates; the
#: owning parent's pid is embedded right after it
#: (``repro-fleet-<pid>-<token>-<lane>``), which is what lets
#: :func:`stale_segments` tell a leak from a live fleet.
SHM_PREFIX = "repro-fleet-"

#: Where POSIX shared memory appears as files (Linux).
_SHM_DIR = "/dev/shm"


def list_segments(prefix: str = SHM_PREFIX) -> List[str]:
    """Names of ``/dev/shm`` segments carrying *prefix* (sorted)."""
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - non-Linux / no shm mount
        return []
    return sorted(entry for entry in entries if entry.startswith(prefix))


def segment_owner_pid(name: str) -> Optional[int]:
    """The creating process id embedded in a fleet segment name."""
    if not name.startswith(SHM_PREFIX):
        return None
    remainder = name[len(SHM_PREFIX):]
    pid_text = remainder.split("-", 1)[0]
    try:
        return int(pid_text)
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's process
        return True
    return True


def stale_segments(prefix: str = SHM_PREFIX) -> List[str]:
    """Fleet segments whose owning process is gone.

    A live fleet's segments have a living owner pid in their name; a
    segment whose owner died without unlinking (SIGKILL before the
    resource tracker could sweep, a torn container) is a leak the
    ``repro-obs gc`` subcommand and the service supervisor collect.
    Names that do not embed a parseable pid are left alone — better to
    leak than to delete a stranger's memory.
    """
    stale = []
    for name in list_segments(prefix):
        pid = segment_owner_pid(name)
        if pid is not None and not _pid_alive(pid):
            stale.append(name)
    return stale


def unlink_segment(name: str) -> bool:
    """Unlink one shared-memory segment by name; ``True`` if removed.

    Attaches through :mod:`multiprocessing.shared_memory` rather than
    unlinking the ``/dev/shm`` file directly, so the resource tracker's
    registration for the name is retired along with the segment — a
    later tracker sweep will not warn about (or double-unlink) it.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - permission/mount oddities
        return False
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a benign race
        return False
    return True

#: How often an idle worker wakes from its control-queue wait to check
#: whether it has been orphaned (parent SIGKILLed without a "stop").
_ORPHAN_POLL_S = 1.0

#: Status-lane codes.  ``-1`` marks a row the parent published but no
#: worker has finished; ``0`` a healthy value; positive codes index the
#: failure taxonomy below.
STATUS_PENDING = -1
STATUS_OK = 0

#: Positive status codes, in order: code ``k + 1`` means category
#: ``_STATUS_CATEGORIES[k]``.  Append only — codes are part of the
#: parent/worker protocol.
_STATUS_CATEGORIES: Tuple[str, ...] = (
    CATEGORY_EXCEPTION,
    CATEGORY_NON_FINITE,
    CATEGORY_SINGULAR,
    CATEGORY_DC,
    CATEGORY_BAD_BIAS,
    CATEGORY_CONTRACT,
    CATEGORY_TIMEOUT,
)
_CATEGORY_TO_CODE = {c: k + 1 for k, c in enumerate(_STATUS_CATEGORIES)}


def status_category(code: int) -> str:
    """Map a positive status-lane code back to its failure category."""
    if 1 <= code <= len(_STATUS_CATEGORIES):
        return _STATUS_CATEGORIES[code - 1]
    return CATEGORY_EXCEPTION


def _category_code(category: str) -> int:
    return _CATEGORY_TO_CODE.get(category, _CATEGORY_TO_CODE[CATEGORY_EXCEPTION])


class FleetBroken(RuntimeError):
    """A worker died (or stopped answering) mid-protocol.

    The fleet is unusable; the caller must rebuild it (fresh processes
    *and* fresh segments — a killed worker may still hold a mapping of
    the old ones) or fall back to in-process evaluation.
    """


class FleetResult:
    """One generation's outcome: values + status lane + telemetry."""

    __slots__ = ("values", "statuses", "timed_out", "spans", "counters",
                 "retries")

    def __init__(self, values: np.ndarray, statuses: np.ndarray,
                 timed_out: bool, spans: list, counters: Dict[str, float],
                 retries: int):
        self.values = values        # (B,) float64, +inf on failed rows
        self.statuses = statuses    # (B,) int8 status-lane snapshot
        self.timed_out = timed_out  # True when rows were still pending
        self.spans = spans          # worker SpanRecords (tracing runs)
        self.counters = counters    # summed worker metric counters
        self.retries = retries      # shard batch->scalar degradations


# ----------------------------------------------------------------------
# shared-memory segments
# ----------------------------------------------------------------------

class _Segments:
    """The three shared buffers plus their numpy views."""

    def __init__(self, x_shm, y_shm, s_shm, capacity: int, n_vars: int,
                 owner: bool):
        self._shms = (x_shm, y_shm, s_shm)
        self.capacity = int(capacity)
        self.n_vars = int(n_vars)
        self.owner = bool(owner)
        self.x = np.ndarray((capacity, n_vars), dtype=np.float64,
                            buffer=x_shm.buf)
        self.y = np.ndarray((capacity,), dtype=np.float64, buffer=y_shm.buf)
        self.status = np.ndarray((capacity,), dtype=np.int8,
                                 buffer=s_shm.buf)
        self._released = False

    @classmethod
    def create(cls, capacity: int, n_vars: int) -> "_Segments":
        token = os.urandom(4).hex()
        base = f"repro-fleet-{os.getpid()}-{token}"
        x = shared_memory.SharedMemory(
            create=True, size=max(8, 8 * capacity * n_vars),
            name=f"{base}-x")
        try:
            y = shared_memory.SharedMemory(
                create=True, size=max(8, 8 * capacity), name=f"{base}-y")
        except Exception:
            x.close()
            x.unlink()
            raise
        try:
            s = shared_memory.SharedMemory(
                create=True, size=max(1, capacity), name=f"{base}-s")
        except Exception:
            for shm in (x, y):
                shm.close()
                shm.unlink()
            raise
        return cls(x, y, s, capacity, n_vars, owner=True)

    @classmethod
    def attach(cls, spec: Tuple[Tuple[str, str, str], int, int]
               ) -> "_Segments":
        names, capacity, n_vars = spec
        shms = []
        try:
            for name in names:
                # Attaching re-registers the segment with the resource
                # tracker, but multiprocessing children share the
                # parent's tracker process and its cache is a set, so
                # the re-register is a no-op.  Only the owning parent
                # unregisters — via unlink() in release().  (An mp
                # child must NOT unregister here: that would strip the
                # parent's registration from the shared cache and lose
                # the kill-safety net.)
                shm = shared_memory.SharedMemory(name=name)
                shms.append(shm)
        except Exception:
            for shm in shms:
                shm.close()
            raise
        return cls(*shms, capacity, n_vars, owner=False)

    def spec(self) -> Tuple[Tuple[str, str, str], int, int]:
        return (tuple(shm.name for shm in self._shms), self.capacity,
                self.n_vars)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(shm.name for shm in self._shms)

    @property
    def nbytes(self) -> int:
        return sum(shm.size for shm in self._shms)

    def release(self) -> None:
        """Close the mapping; the owner also unlinks.  Idempotent."""
        if self._released:
            return
        self._released = True
        # Drop numpy views first: a memoryview with exports cannot close.
        self.x = self.y = self.status = None
        for shm in self._shms:
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
            if self.owner:
                try:
                    shm.unlink()
                except Exception:
                    pass


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------

def _build_objectives(objective, objective_batch, objective_factory):
    """Resolve the worker's callables, invoking the factory once."""
    if objective_factory is not None:
        built = objective_factory()
        if isinstance(built, tuple):
            objective, objective_batch = built
        elif objective is None and objective_batch is None:
            objective = built
        else:
            # Factory refines whichever slot the caller left open.
            if objective is None:
                objective = built
            else:
                objective_batch = built
    return objective, objective_batch


def _eval_shard(objective, objective_batch, segments, start: int,
                stop: int, tracing: bool):
    """Evaluate rows [start, stop) in place; return (spans, counters, retries).

    Mirrors the in-process dispatch: the shard goes through the batch
    objective when one exists, degrading to the per-row scalar loop on a
    batch-level error; every row ends with a value in ``y`` and a final
    code in the status lane (value first, then status — the status write
    publishes the row).
    """
    from repro.obs import metrics as _obs_metrics
    from repro.obs import tracer as _obs_tracer

    worker_metrics = _obs_metrics.Metrics()
    previous_metrics = _obs_metrics.set_metrics(worker_metrics)
    worker_tracer = None
    previous_tracer = None
    if tracing:
        worker_tracer = _obs_tracer.Tracer(enabled=True)
        previous_tracer = _obs_tracer.set_tracer(worker_tracer)
    retries = 0
    try:
        x = segments.x[start:stop].copy()
        n = stop - start
        if objective_batch is not None:
            try:
                with _obs_tracer.span("worker.objective_batch", batch=n):
                    values = np.asarray(objective_batch(x),
                                        dtype=float).reshape(-1)
                if values.shape[0] != n:
                    raise ValueError(
                        f"objective_batch returned {values.shape[0]} "
                        f"values for a shard of {n}"
                    )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 - degrade per shard
                if objective is None:
                    code = _category_code(classify_exception(exc))
                    segments.y[start:stop] = np.inf
                    segments.status[start:stop] = code
                    return _drain(worker_tracer, worker_metrics, retries)
                retries = 1
            else:
                finite = np.isfinite(values)
                segments.y[start:stop] = np.where(finite, values, np.inf)
                segments.status[start:stop] = np.where(
                    finite, STATUS_OK,
                    _category_code(CATEGORY_NON_FINITE)).astype(np.int8)
                return _drain(worker_tracer, worker_metrics, retries)
        for i in range(n):
            row = start + i
            try:
                with _obs_tracer.span("worker.objective"):
                    value = float(objective(x[i]))
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 - absorb per row
                segments.y[row] = np.inf
                segments.status[row] = _category_code(
                    classify_exception(exc))
                continue
            if np.isfinite(value):
                segments.y[row] = value
                segments.status[row] = STATUS_OK
            else:
                segments.y[row] = np.inf
                segments.status[row] = _category_code(CATEGORY_NON_FINITE)
        return _drain(worker_tracer, worker_metrics, retries)
    finally:
        _obs_metrics.set_metrics(previous_metrics)
        if tracing:
            _obs_tracer.set_tracer(previous_tracer)


def _drain(worker_tracer, worker_metrics, retries):
    spans = worker_tracer.drain() if worker_tracer is not None else []
    return spans, worker_metrics.counters(), retries


def _worker_main(worker_id: int, objective, objective_batch,
                 objective_factory, segment_spec, ctrl_queue,
                 result_queue) -> None:
    """Worker loop: build the objective once, then serve eval shards."""
    try:
        objective, objective_batch = _build_objectives(
            objective, objective_batch, objective_factory)
        if objective is None and objective_batch is None:
            raise ValueError("fleet worker has no objective to serve")
        segments = _Segments.attach(segment_spec)
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover
        return
    except BaseException as exc:  # noqa: BLE001 - report, then exit
        try:
            result_queue.put(("init_error", worker_id, repr(exc)))
        except Exception:
            pass
        return
    # If the parent is SIGKILLed no "stop" ever arrives and a plain
    # blocking get() would pin this worker — and its mapping of the
    # shared segments — forever.  Poll with a timeout and watch for
    # re-parenting instead: the parent's death is the stop signal.
    parent_pid = os.getppid()
    try:
        while True:
            try:
                message = ctrl_queue.get(timeout=_ORPHAN_POLL_S)
            except _queue.Empty:
                if os.getppid() != parent_pid:
                    break  # orphaned: parent died without a stop
                continue
            command = message[0]
            if command == "stop":
                break
            if command == "ping":
                result_queue.put(("pong", worker_id, message[1]))
            elif command == "attach":
                segments.release()
                segments = _Segments.attach(message[1])
                result_queue.put(("attached", worker_id, message[2]))
            elif command == "eval":
                _, generation, start, stop, tracing = message
                try:
                    spans, counters, retries = _eval_shard(
                        objective, objective_batch, segments, start, stop,
                        tracing)
                except (KeyboardInterrupt, SystemExit):  # pragma: no cover
                    raise
                except Exception as exc:  # noqa: BLE001 - protocol error
                    result_queue.put(("shard_error", worker_id, generation,
                                      start, stop, repr(exc)))
                    continue
                result_queue.put(("done", worker_id, generation, start,
                                  stop, spans, counters, retries))
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover
        pass
    except (EOFError, OSError):  # pragma: no cover - parent went away
        pass
    finally:
        segments.release()


# ----------------------------------------------------------------------
# parent-side fleet
# ----------------------------------------------------------------------

class WorkerFleet:
    """A persistent fleet of evaluator processes over shared memory.

    Parameters
    ----------
    objective, objective_batch:
        Callables shipped to the workers **once** at spawn.  With a
        fork start method they are inherited rather than pickled, so
        closures work; with spawn they must pickle.
    objective_factory:
        Zero-argument callable run once inside each worker; it may
        return a scalar objective or an ``(objective, objective_batch)``
        pair.  Use it to build expensive state (a compiled template)
        in the worker instead of serializing it.
    workers:
        Number of worker processes.
    capacity:
        Initial row capacity of the shared buffers; grows automatically
        (workers re-attach) when a larger population arrives.
    poll_interval:
        Parent-side liveness-check period while waiting on results.
    """

    _SPAWN_TIMEOUT_S = 60.0

    def __init__(self, objective: Optional[Callable] = None,
                 objective_batch: Optional[Callable] = None,
                 objective_factory: Optional[Callable] = None,
                 workers: int = 2,
                 capacity: int = 256,
                 poll_interval: float = 0.02,
                 mp_context: Optional[str] = None):
        if objective is None and objective_batch is None \
                and objective_factory is None:
            raise ValueError("WorkerFleet needs an objective, a batch "
                             "objective, or an objective_factory")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._objective = objective
        self._objective_batch = objective_batch
        self._objective_factory = objective_factory
        self.workers = int(workers)
        self._capacity = max(1, int(capacity))
        self._poll_interval = float(poll_interval)
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(mp_context)
        self._segments: Optional[_Segments] = None
        self._processes: List = []
        self._ctrl_queues: List = []
        self._result_queue = None
        self._generation = 0
        self._closed = False
        self.warmup_s: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------
    @property
    def running(self) -> bool:
        return bool(self._processes) and not self._closed

    def any_alive(self) -> bool:
        return any(p.is_alive() for p in self._processes)

    @property
    def segment_names(self) -> Tuple[str, ...]:
        return self._segments.names if self._segments is not None else ()

    @property
    def capacity(self) -> int:
        """Current row capacity of the shared buffers."""
        return self._capacity

    def ensure_running(self, n_vars: int) -> None:
        """Spawn processes and segments on first use (or after close)."""
        if self._closed:
            raise FleetBroken("fleet is closed")
        if self._processes:
            if self._segments.n_vars != n_vars:
                self._resize(self._capacity, n_vars)
            return
        start = time.perf_counter()
        self._segments = _Segments.create(self._capacity, n_vars)
        self._result_queue = self._ctx.Queue()
        spec = self._segments.spec()
        for worker_id in range(self.workers):
            ctrl = self._ctx.Queue()
            process = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, self._objective, self._objective_batch,
                      self._objective_factory, spec, ctrl,
                      self._result_queue),
                daemon=True,
                name=f"repro-fleet-{worker_id}",
            )
            process.start()
            self._ctrl_queues.append(ctrl)
            self._processes.append(process)
        self._emit("fleet_spawn", workers=self.workers,
                   capacity=self._capacity, n_vars=int(n_vars),
                   segment_bytes=int(self._segments.nbytes))
        self._await_pongs(token="warmup")
        self.warmup_s = time.perf_counter() - start
        self._emit("fleet_warmup", workers=self.workers,
                   warmup_s=float(self.warmup_s))

    def _await_pongs(self, token: str) -> None:
        """Ping every worker and wait until all answer (objective built)."""
        for ctrl in self._ctrl_queues:
            ctrl.put(("ping", token))
        pending = set(range(self.workers))
        deadline = time.monotonic() + self._SPAWN_TIMEOUT_S
        while pending:
            message = self._next_message(deadline)
            if message[0] == "pong" and message[2] == token:
                pending.discard(message[1])
            elif message[0] == "init_error":
                raise FleetBroken(
                    f"worker {message[1]} failed to initialize: "
                    f"{message[2]}"
                )

    def _next_message(self, deadline: float):
        """Result-queue get with liveness checks; raises FleetBroken."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise FleetBroken("fleet stopped answering (timeout on "
                                  "control channel)")
            try:
                return self._result_queue.get(
                    timeout=min(self._poll_interval, remaining))
            except _queue.Empty:
                dead = [p.name for p in self._processes
                        if not p.is_alive()]
                if dead:
                    raise FleetBroken(
                        f"worker process(es) died: {', '.join(dead)}"
                    ) from None

    def _resize(self, capacity: int, n_vars: int) -> None:
        """Swap in bigger segments; workers re-attach in lockstep."""
        old = self._segments
        new = _Segments.create(capacity, n_vars)
        token = f"attach-{self._generation}"
        try:
            for ctrl in self._ctrl_queues:
                ctrl.put(("attach", new.spec(), token))
            pending = set(range(self.workers))
            deadline = time.monotonic() + self._SPAWN_TIMEOUT_S
            while pending:
                message = self._next_message(deadline)
                if message[0] == "attached" and message[2] == token:
                    pending.discard(message[1])
        except FleetBroken:
            new.release()
            raise
        self._segments = new
        self._capacity = capacity
        self._emit("segment_attach", capacity=int(capacity),
                   n_vars=int(n_vars), segment_bytes=int(new.nbytes))
        if old is not None:
            old.release()
            self._emit("segment_detach", reason="resize")

    # -- evaluation ---------------------------------------------------------
    def evaluate(self, population: np.ndarray,
                 timeout: Optional[float] = None,
                 tracing: bool = False) -> FleetResult:
        """Evaluate a ``(B, n)`` population; see :class:`FleetResult`.

        Raises :class:`FleetBroken` if a worker dies mid-generation;
        a *timeout* instead returns the completed rows with
        ``timed_out=True`` and pending rows marked in the status lane.
        """
        population = np.ascontiguousarray(population, dtype=np.float64)
        n_batch, n_vars = population.shape
        self.ensure_running(n_vars)
        if n_batch > self._segments.capacity:
            self._resize(max(n_batch, 2 * self._segments.capacity), n_vars)

        segments = self._segments
        segments.x[:n_batch] = population
        segments.status[:n_batch] = STATUS_PENDING
        self._generation += 1
        generation = self._generation

        shards = self._shards(n_batch)
        for worker_id, (start, stop) in enumerate(shards):
            if stop > start:
                self._ctrl_queues[worker_id].put(
                    ("eval", generation, start, stop, bool(tracing)))
        pending = {worker_id for worker_id, (start, stop)
                   in enumerate(shards) if stop > start}

        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        spans: list = []
        counters: Dict[str, float] = {}
        retries = 0
        timed_out = False
        while pending:
            try:
                message = self._next_message(
                    deadline if deadline is not None
                    else time.monotonic() + self._SPAWN_TIMEOUT_S)
            except FleetBroken as exc:
                if deadline is not None and time.monotonic() >= deadline \
                        and self.any_alive() \
                        and "stopped answering" in str(exc):
                    timed_out = True
                    break
                raise
            kind = message[0]
            if kind == "done":
                _, worker_id, gen, _start, _stop, shard_spans, \
                    shard_counters, shard_retries = message
                if gen != generation:
                    continue  # stale message from an abandoned generation
                pending.discard(worker_id)
                spans.extend(shard_spans)
                for name, value in shard_counters.items():
                    counters[name] = counters.get(name, 0.0) + value
                retries += int(shard_retries)
            elif kind == "shard_error":
                raise FleetBroken(
                    f"worker {message[1]} failed a shard: {message[5]}"
                )
            elif kind == "init_error":  # pragma: no cover - late report
                raise FleetBroken(
                    f"worker {message[1]} failed to initialize: "
                    f"{message[2]}"
                )

        values = segments.y[:n_batch].copy()
        statuses = segments.status[:n_batch].copy()
        still_pending = statuses == STATUS_PENDING
        if np.any(still_pending):
            timed_out = True
            values[still_pending] = np.inf
        return FleetResult(values, statuses, timed_out, spans, counters,
                           retries)

    def _shards(self, n_batch: int) -> List[Tuple[int, int]]:
        """Contiguous, balanced row ranges — one per worker."""
        bounds = np.linspace(0, n_batch, self.workers + 1).astype(int)
        return [(int(bounds[k]), int(bounds[k + 1]))
                for k in range(self.workers)]

    # -- teardown -----------------------------------------------------------
    def close(self, join_timeout: float = 2.0) -> None:
        """Stop workers and unlink segments.  Idempotent, never raises."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        for ctrl in getattr(self, "_ctrl_queues", []) or []:
            try:
                ctrl.put(("stop",))
            except Exception:
                pass
        processes = getattr(self, "_processes", []) or []
        deadline = time.monotonic() + join_timeout
        for process in processes:
            try:
                process.join(timeout=max(0.0, deadline - time.monotonic()))
            except Exception:
                pass
        for process in processes:
            try:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=0.5)
                if process.is_alive():  # pragma: no cover - stubborn child
                    process.kill()
                    process.join(timeout=0.5)
            except Exception:
                pass
        for ctrl in getattr(self, "_ctrl_queues", []) or []:
            try:
                ctrl.close()
                ctrl.join_thread()
            except Exception:
                pass
        result_queue = getattr(self, "_result_queue", None)
        if result_queue is not None:
            try:
                result_queue.close()
                result_queue.join_thread()
            except Exception:
                pass
        segments = getattr(self, "_segments", None)
        if segments is not None:
            segments.release()
            self._emit("segment_detach", reason="close")
        self._segments = None
        self._processes = []
        self._ctrl_queues = []
        self._result_queue = None
        self._emit("fleet_stop", workers=self.workers)

    def __del__(self):  # pragma: no cover - interpreter-teardown guard
        try:
            self.close(join_timeout=0.2)
        except Exception:
            pass

    def __enter__(self) -> "WorkerFleet":
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    @staticmethod
    def _emit(event: str, **fields) -> None:
        """Journal a fleet lifecycle event; never raises."""
        try:
            from repro.obs import journal as _obs_journal
            _obs_journal.emit(event, **fields)
        except Exception:  # pragma: no cover - teardown best effort
            pass
