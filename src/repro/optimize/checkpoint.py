"""Checkpoint/resume support for long optimization runs.

A production LNA optimization sweeps thousands of MNA solves over
minutes to hours; losing the whole run to a crash, an OOM kill, or a
pre-empted worker node is not acceptable at that scale.  The optimizers
in :mod:`repro.optimize` therefore accept an injectable
:class:`CheckpointStore` and periodically persist their *complete*
algorithm state — population, fitness, RNG bit-generator state,
best-so-far, evaluation counters, and run-health telemetry.

Resume is **deterministic**: restoring a checkpoint replays the exact
RNG trajectory, so an interrupted-and-resumed run finishes bit-for-bit
identical to an uninterrupted one (enforced by
``tests/test_checkpoint.py``).

Two stores ship here:

* :class:`MemoryCheckpointStore` — in-process, for tests and
  supervisor processes that own the optimizer loop;
* :class:`FileCheckpointStore` — pickle on disk with atomic
  write-then-rename, for crash recovery across process boundaries.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "FileCheckpointStore",
    "resume_or_none",
]


class CheckpointError(RuntimeError):
    """A checkpoint exists but cannot be used (corrupt or mismatched)."""


@dataclass
class Checkpoint:
    """One snapshot of optimizer state.

    ``algorithm`` guards against resuming a DE checkpoint in PSO;
    ``iteration`` is the last *completed* generation; ``rng_state`` is
    the ``numpy`` bit-generator state dict (``None`` for deterministic
    stages); ``payload`` carries the algorithm-specific arrays.
    """

    algorithm: str
    iteration: int
    rng_state: Optional[dict]
    payload: Dict[str, Any] = field(default_factory=dict)


class CheckpointStore:
    """Interface the optimizers write to; subclass to customize."""

    def save(self, checkpoint: Checkpoint) -> None:
        raise NotImplementedError

    def load(self) -> Optional[Checkpoint]:
        """The latest checkpoint, or ``None`` when nothing was saved."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop the stored checkpoint (called on successful completion)."""
        raise NotImplementedError


class MemoryCheckpointStore(CheckpointStore):
    """Keeps the latest checkpoint in process memory."""

    def __init__(self):
        self._checkpoint: Optional[Checkpoint] = None
        self.n_saves = 0

    def save(self, checkpoint: Checkpoint) -> None:
        self._checkpoint = checkpoint
        self.n_saves += 1

    def load(self) -> Optional[Checkpoint]:
        return self._checkpoint

    def clear(self) -> None:
        self._checkpoint = None


class FileCheckpointStore(CheckpointStore):
    """Pickles the latest checkpoint to *path*, atomically.

    The snapshot is written to a temporary file in the same directory
    and renamed over the target, so a crash mid-write can never leave a
    truncated checkpoint — the previous complete one survives.
    """

    def __init__(self, path: str):
        self.path = str(path)

    def save(self, checkpoint: Checkpoint) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(checkpoint, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def load(self) -> Optional[Checkpoint]:
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, "rb") as handle:
                checkpoint = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError, OSError) as exc:
            raise CheckpointError(
                f"checkpoint file {self.path!r} is unreadable: {exc}"
            ) from exc
        if not isinstance(checkpoint, Checkpoint):
            raise CheckpointError(
                f"checkpoint file {self.path!r} does not contain a "
                f"Checkpoint (got {type(checkpoint).__name__})"
            )
        return checkpoint

    def clear(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def resume_or_none(store: Optional[CheckpointStore],
                   algorithm: str) -> Optional[Checkpoint]:
    """Load *store*'s checkpoint, validating the algorithm tag.

    Helper shared by the optimizers; returns ``None`` when there is no
    store or no saved state, raises :class:`CheckpointError` when the
    stored checkpoint belongs to a different algorithm.
    """
    if store is None:
        return None
    checkpoint = store.load()
    if checkpoint is None:
        return None
    if checkpoint.algorithm != algorithm:
        raise CheckpointError(
            f"checkpoint was written by {checkpoint.algorithm!r}, "
            f"cannot resume {algorithm!r} from it"
        )
    return checkpoint
