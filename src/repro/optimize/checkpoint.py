"""Checkpoint/resume support for long optimization runs.

A production LNA optimization sweeps thousands of MNA solves over
minutes to hours; losing the whole run to a crash, an OOM kill, or a
pre-empted worker node is not acceptable at that scale.  The optimizers
in :mod:`repro.optimize` therefore accept an injectable
:class:`CheckpointStore` and periodically persist their *complete*
algorithm state — population, fitness, RNG bit-generator state,
best-so-far, evaluation counters, and run-health telemetry.

Resume is **deterministic**: restoring a checkpoint replays the exact
RNG trajectory, so an interrupted-and-resumed run finishes bit-for-bit
identical to an uninterrupted one (enforced by
``tests/test_checkpoint.py``).

Two stores ship here:

* :class:`MemoryCheckpointStore` — in-process, for tests and
  supervisor processes that own the optimizer loop;
* :class:`FileCheckpointStore` — pickle on disk with atomic
  write-then-rename, for crash recovery across process boundaries.

The file store is hardened against the failure modes disks actually
have:

* every snapshot is framed with a magic tag, a schema version, and a
  CRC32 of the pickle payload, so truncation or bit rot is *detected*
  instead of resumed from;
* the previously good snapshot is rotated to ``<path>.prev`` on every
  save, so a corrupt primary file quarantines to ``<path>.corrupt``
  and resume falls back to the last good checkpoint instead of
  aborting the run (strict guard mode restores the hard
  :class:`CheckpointError`);
* reads and writes retry transient ``OSError`` with the shared capped
  backoff of :func:`repro.optimize.faults.retry_transient`.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import warnings
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.guards import modes as _guard_modes
from repro.obs import journal as _obs_journal
from repro.obs import metrics as _obs_metrics
from repro.optimize.faults import retry_transient

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "FileCheckpointStore",
    "resume_or_none",
    "SCHEMA_VERSION",
]

#: File-format magic of framed checkpoint files.
_MAGIC = b"RPCK"
#: Bump when the framed layout (not the payload schema) changes.
SCHEMA_VERSION = 1
_HEADER = struct.Struct("<II")  # (schema_version, crc32)


class CheckpointError(RuntimeError):
    """A checkpoint exists but cannot be used (corrupt or mismatched)."""


@dataclass
class Checkpoint:
    """One snapshot of optimizer state.

    ``algorithm`` guards against resuming a DE checkpoint in PSO;
    ``iteration`` is the last *completed* generation; ``rng_state`` is
    the ``numpy`` bit-generator state dict (``None`` for deterministic
    stages); ``payload`` carries the algorithm-specific arrays.
    """

    algorithm: str
    iteration: int
    rng_state: Optional[dict]
    payload: Dict[str, Any] = field(default_factory=dict)


class CheckpointStore:
    """Interface the optimizers write to; subclass to customize."""

    def save(self, checkpoint: Checkpoint) -> None:
        raise NotImplementedError

    def load(self) -> Optional[Checkpoint]:
        """The latest checkpoint, or ``None`` when nothing was saved."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop the stored checkpoint (called on successful completion)."""
        raise NotImplementedError


class MemoryCheckpointStore(CheckpointStore):
    """Keeps the latest checkpoint in process memory."""

    def __init__(self):
        self._checkpoint: Optional[Checkpoint] = None
        self.n_saves = 0

    def save(self, checkpoint: Checkpoint) -> None:
        self._checkpoint = checkpoint
        self.n_saves += 1

    def load(self) -> Optional[Checkpoint]:
        return self._checkpoint

    def clear(self) -> None:
        self._checkpoint = None


class FileCheckpointStore(CheckpointStore):
    """Pickles the latest checkpoint to *path*, atomically and framed.

    The snapshot is written to a temporary file in the same directory
    and renamed over the target, so a crash mid-write can never leave a
    truncated checkpoint.  The file body is ``RPCK`` + schema version +
    CRC32 + pickle, the previous good file survives as
    ``<path>.prev``, and a file that fails validation on load is
    renamed to ``<file>.corrupt`` (quarantine) before resume falls
    back to the previous snapshot.  Plain-pickle files written by
    earlier releases still load.

    Parameters
    ----------
    path:
        Target file.
    retry_attempts:
        Transient-``OSError`` retries per read/write, with the shared
        capped backoff of :func:`repro.optimize.faults.retry_transient`.
    """

    def __init__(self, path: str, retry_attempts: int = 3):
        self.path = str(path)
        self.previous_path = self.path + ".prev"
        self.retry_attempts = int(retry_attempts)
        self.io_retries = 0

    # -- write --------------------------------------------------------------
    def save(self, checkpoint: Checkpoint) -> None:
        blob = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
        payload = _MAGIC + _HEADER.pack(SCHEMA_VERSION,
                                        zlib.crc32(blob)) + blob
        retry_transient(
            self._write_payload, payload,
            attempts=self.retry_attempts,
            no_retry=(),           # every OSError on write is retryable
            on_retry=self._count_retry,
        )

    def _write_payload(self, payload: bytes) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            # Keep the outgoing snapshot as the fallback generation
            # before the new one takes its place.  Two writers racing
            # the same path (a lease takeover whose previous owner is
            # still flushing its final snapshot) may both see the file
            # and rotate it; the loser's rename then finds it already
            # moved — that is a clean last-writer-wins interleaving,
            # not a transient disk fault, so it must not burn a retry.
            try:
                os.replace(self.path, self.previous_path)
            except FileNotFoundError:
                pass
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def _count_retry(self, exc: BaseException, attempt: int) -> None:
        self.io_retries += 1
        _obs_metrics.inc("checkpoint.io_retries")

    # -- read ---------------------------------------------------------------
    def load(self) -> Optional[Checkpoint]:
        """The newest valid checkpoint, falling back to ``<path>.prev``.

        A file that fails validation (truncated, bit-flipped, wrong
        object) is quarantined by renaming it to ``<file>.corrupt`` and
        the previous snapshot is tried next; only strict guard mode
        turns corruption into a raised :class:`CheckpointError`.
        """
        for candidate in (self.path, self.previous_path):
            try:
                data = retry_transient(
                    self._read_bytes, candidate,
                    attempts=self.retry_attempts,
                    on_retry=self._count_retry,
                )
            except FileNotFoundError:
                continue
            try:
                return self._parse(candidate, data)
            except CheckpointError as exc:
                if _guard_modes.get_mode() == _guard_modes.MODE_STRICT:
                    raise
                self._quarantine(candidate, exc)
        return None

    @staticmethod
    def _read_bytes(path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    @staticmethod
    def _parse(path: str, data: bytes) -> Checkpoint:
        if data.startswith(_MAGIC):
            header_end = len(_MAGIC) + _HEADER.size
            if len(data) < header_end:
                raise CheckpointError(
                    f"checkpoint file {path!r} is truncated inside the header"
                )
            version, crc = _HEADER.unpack(data[len(_MAGIC):header_end])
            if version > SCHEMA_VERSION:
                raise CheckpointError(
                    f"checkpoint file {path!r} has schema version {version}, "
                    f"newer than supported {SCHEMA_VERSION}"
                )
            blob = data[header_end:]
            if zlib.crc32(blob) != crc:
                raise CheckpointError(
                    f"checkpoint file {path!r} failed its CRC32 check "
                    f"(truncated or bit-flipped)"
                )
        else:
            blob = data  # legacy plain-pickle file from earlier releases
        try:
            checkpoint = pickle.loads(blob)
        except Exception as exc:  # noqa: BLE001 - any unpickle fault = corrupt
            raise CheckpointError(
                f"checkpoint file {path!r} is unreadable: {exc}"
            ) from exc
        if not isinstance(checkpoint, Checkpoint):
            raise CheckpointError(
                f"checkpoint file {path!r} does not contain a "
                f"Checkpoint (got {type(checkpoint).__name__})"
            )
        return checkpoint

    def _quarantine(self, path: str, reason: CheckpointError) -> None:
        corrupt_path = path + ".corrupt"
        try:
            os.replace(path, corrupt_path)
        except OSError:
            corrupt_path = path  # rename failed; leave it in place
        _obs_metrics.inc("checkpoint.quarantined")
        _obs_journal.emit("checkpoint_quarantined", path=str(path),
                          reason=str(reason)[:200])
        warnings.warn(
            f"quarantined corrupt checkpoint {path!r} -> {corrupt_path!r} "
            f"({reason}); resuming from the previous good snapshot if any",
            stacklevel=3,
        )

    def clear(self) -> None:
        for path in (self.path, self.previous_path):
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass


def resume_or_none(store: Optional[CheckpointStore],
                   algorithm: str) -> Optional[Checkpoint]:
    """Load *store*'s checkpoint, validating the algorithm tag.

    Helper shared by the optimizers; returns ``None`` when there is no
    store or no saved state, raises :class:`CheckpointError` when the
    stored checkpoint belongs to a different algorithm.
    """
    if store is None:
        return None
    checkpoint = store.load()
    if checkpoint is None:
        return None
    if checkpoint.algorithm != algorithm:
        raise CheckpointError(
            f"checkpoint was written by {checkpoint.algorithm!r}, "
            f"cannot resume {algorithm!r} from it"
        )
    return checkpoint
