"""NSGA-II: population-based multi-objective baseline.

The paper's contribution is a *point* method (improved goal
attainment); NSGA-II (Deb et al., 2002) is the standard *front* method
and serves two roles here:

* an independent generator of the NF/GT Pareto front, cross-checking
  the goal-attainment sweep of experiment E6;
* a cost comparison — one NSGA-II run prices the entire front, while
  goal attainment prices one point per solve.

Implementation: fast non-dominated sorting, crowding distance,
binary-tournament selection with Deb's constraint-domination rule,
simulated binary crossover (SBX) and polynomial mutation, all from
scratch and deterministic under a seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.guards import contracts as _contracts
from repro.obs.telemetry import GenerationRecord, population_stats
from repro.optimize.checkpoint import (
    CheckpointError,
    CheckpointStore,
    resume_or_none,
)
from repro.optimize.faults import (
    CATEGORY_NON_FINITE,
    RunHealth,
    classify_exception,
)
from repro.optimize.batching import BatchShardExecutor, validate_workers
from repro.optimize.goal_attainment import MultiObjectiveProblem
from repro.optimize.metaheuristics import (
    _emit_final_population,
    _emit_generation,
    _restore_telemetry,
    _save_checkpoint,
    _seed_population,
    latin_hypercube,
)

__all__ = ["Nsga2Result", "nsga2"]

#: Finite objective/violation assigned to failed candidates.  NSGA-II's
#: crowding distance normalizes by the objective spread, so ``inf``
#: would poison the whole front — a large finite figure keeps failed
#: candidates strictly dominated instead.
PENALTY_OBJECTIVE = 1.0e9


@dataclass
class Nsga2Result:
    """Final non-dominated set of an NSGA-II run."""

    x: np.ndarray            # (m, dim) decision vectors of the front
    objectives: np.ndarray   # (m, n_obj)
    violations: np.ndarray   # (m,) max constraint violation (0 = feasible)
    nfev: int
    n_generations: int
    health: RunHealth = field(default_factory=RunHealth)

    def __post_init__(self):
        # Reported-front trust boundary: finite designs, no NaN scores.
        _contracts.check_pareto_front(self.x, self.objectives,
                                      "Nsga2Result")

    @property
    def feasible_front(self) -> np.ndarray:
        """Objectives of the feasible non-dominated solutions."""
        return self.objectives[self.violations <= 1e-9]


def _emit_nsga2_generation(on_generation, generation: int, nfev: int,
                           objectives: np.ndarray, violations: np.ndarray,
                           health: RunHealth, wall_time_s: float):
    """One telemetry record per NSGA-II generation.

    ``best``/``mean``/``spread`` summarize the first objective (for the
    LNA problem: NFmax); per-objective minima and the feasible count
    ride in ``extra`` so the record still describes the whole front.
    """
    if on_generation is None:
        return
    best, mean, spread = population_stats(objectives[:, 0])
    extra = {
        f"min_f{k}": float(np.min(objectives[:, k]))
        for k in range(objectives.shape[1])
    }
    extra["n_feasible"] = int(np.sum(violations <= 1e-9))
    on_generation(GenerationRecord(
        algorithm="nsga2",
        generation=generation,
        nfev=int(nfev),
        best=best,
        mean=mean,
        spread=spread,
        wall_time_s=float(wall_time_s),
        n_failures=health.n_failures,
        violation=float(np.min(violations)),
        extra=extra,
    ))


def nsga2(
    problem: MultiObjectiveProblem,
    population_size: int = 40,
    n_generations: int = 50,
    crossover_probability: float = 0.9,
    crossover_eta: float = 15.0,
    mutation_eta: float = 20.0,
    seed: Optional[int] = 0,
    initial_population: Optional[np.ndarray] = None,
    workers: Optional[int] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
    checkpoint_every: int = 10,
    resume: bool = True,
    on_generation: Optional[Callable[[GenerationRecord], None]] = None,
) -> Nsga2Result:
    """Run NSGA-II on *problem* and return the final first front.

    ``initial_population`` warm-starts the run: its rows (clipped to
    the box) replace the leading rows of the LHS initialization —
    typically a nearby archived run's final population found through
    :func:`repro.obs.analytics.warm_start_population`.  The finished
    run journals its own final population (with the first objective as
    the fitness ordering) for the next warm start.

    ``workers > 1`` shards the problem's batch callables across a
    thread pool (:meth:`MultiObjectiveProblem.sharded`): the model's
    hot loop releases the GIL, the row order is preserved, and the
    per-row results — and hence the whole run — stay bit-identical to
    the single-threaded evaluation.  A problem without batch callables
    ignores ``workers``.

    With a ``checkpoint_store`` the complete generation state
    (population, objectives, violations, RNG state, health counters)
    is persisted every ``checkpoint_every`` generations; a rerun with
    the same store resumes from the last snapshot and finishes
    bit-for-bit identical to an uninterrupted run.

    ``on_generation`` receives one
    :class:`~repro.obs.telemetry.GenerationRecord` per generation
    (including generation 0) and rides inside checkpoints when it
    exposes ``state()``/``restore()``, like the single-objective
    optimizers.
    """
    if population_size % 2:
        population_size += 1  # pairing requires an even population
    rng = np.random.default_rng(seed)
    dim = problem.lower.size
    health = RunHealth()
    algorithm = "nsga2"

    executor = None
    workers = validate_workers(workers)
    if workers is not None and workers > 1:
        executor = BatchShardExecutor(workers)
        problem = problem.sharded(executor)
    try:
        return _nsga2_run(
            problem, population_size, n_generations,
            crossover_probability, crossover_eta, mutation_eta, rng,
            health, algorithm, checkpoint_store, checkpoint_every,
            resume, on_generation, initial_population,
        )
    finally:
        if executor is not None:
            executor.close()


def _nsga2_run(problem, population_size, n_generations,
               crossover_probability, crossover_eta, mutation_eta, rng,
               health, algorithm, checkpoint_store, checkpoint_every,
               resume, on_generation,
               initial_population=None) -> Nsga2Result:
    dim = problem.lower.size
    checkpoint = resume_or_none(checkpoint_store, algorithm) \
        if resume else None
    if checkpoint is not None:
        payload = checkpoint.payload
        population = np.array(payload["population"], dtype=float)
        if population.shape != (population_size, dim):
            raise CheckpointError(
                f"checkpoint population has shape {population.shape}, "
                f"expected {(population_size, dim)} — was the run "
                f"configured differently?"
            )
        objectives = np.array(payload["objectives"], dtype=float)
        violations = np.array(payload["violations"], dtype=float)
        nfev = int(payload["nfev"])
        health.restore(payload["health"])
        _restore_telemetry(on_generation, payload)
        rng.bit_generator.state = checkpoint.rng_state
        start_generation = int(checkpoint.iteration)
        health.resumed_at = start_generation
    else:
        init_start = time.monotonic()
        population = latin_hypercube(population_size, problem.lower,
                                     problem.upper, rng)
        population = _seed_population(population, initial_population,
                                      problem.lower, problem.upper)
        objectives, violations = _evaluate(problem, population, health)
        nfev = population_size
        start_generation = 0
        _emit_nsga2_generation(on_generation, 0, nfev, objectives,
                               violations, health,
                               time.monotonic() - init_start)

    for generation in range(start_generation + 1, n_generations + 1):
        generation_start = time.monotonic()
        parents = _tournament(population, objectives, violations, rng)
        children = _sbx_crossover(parents, problem.lower, problem.upper,
                                  crossover_probability, crossover_eta, rng)
        children = _polynomial_mutation(children, problem.lower,
                                        problem.upper, mutation_eta, rng)
        child_objectives, child_violations = _evaluate(problem, children,
                                                       health)
        nfev += len(children)

        population = np.vstack([population, children])
        objectives = np.vstack([objectives, child_objectives])
        violations = np.concatenate([violations, child_violations])
        keep = _environmental_selection(objectives, violations,
                                        population_size)
        population = population[keep]
        objectives = objectives[keep]
        violations = violations[keep]
        _emit_nsga2_generation(on_generation, generation, nfev, objectives,
                               violations, health,
                               time.monotonic() - generation_start)

        if (checkpoint_store is not None
                and generation % max(int(checkpoint_every), 1) == 0
                and generation < n_generations):
            _save_checkpoint(checkpoint_store, algorithm, generation, rng,
                             health, {
                                 "population": population.copy(),
                                 "objectives": objectives.copy(),
                                 "violations": violations.copy(),
                                 "nfev": nfev,
                             }, on_generation=on_generation)

    fronts = _nondominated_sort(objectives, violations)
    first = np.asarray(fronts[0], dtype=int)
    if checkpoint_store is not None:
        checkpoint_store.clear()
    _emit_final_population(algorithm, population, objectives[:, 0])
    return Nsga2Result(
        x=population[first],
        objectives=objectives[first],
        violations=violations[first],
        nfev=nfev,
        n_generations=n_generations,
        health=health,
    )


# ----------------------------------------------------------------------
# building blocks
# ----------------------------------------------------------------------

def _evaluate(problem, population, health=None):
    if health is None:
        health = RunHealth()
    n = len(population)

    objectives = None
    if getattr(problem, "objectives_batch", None) is not None:
        # Population-level evaluation: one batched model solve for the
        # whole generation (value-identical to the per-individual loop).
        try:
            objectives = np.asarray(problem.objectives_batch(population),
                                    dtype=float)
            if objectives.shape[0] != n:
                raise ValueError(
                    f"objectives_batch returned {objectives.shape[0]} "
                    f"rows for a population of {n}"
                )
        except Exception:  # noqa: BLE001 - degrade to the scalar loop
            health.retries += 1
            objectives = None
    if objectives is None:
        objectives = np.empty((n, problem.n_objectives), dtype=float)
        for i, x in enumerate(population):
            try:
                objectives[i] = np.asarray(problem.objectives(x),
                                           dtype=float)
            except Exception as exc:  # noqa: BLE001 - absorb per candidate
                health.record(classify_exception(exc))
                objectives[i] = PENALTY_OBJECTIVE
    bad = ~np.all(np.isfinite(objectives), axis=1)
    if np.any(bad):
        # Finite penalty, not inf: crowding distances must stay finite.
        health.record(CATEGORY_NON_FINITE, int(np.sum(bad)))
        objectives[bad] = PENALTY_OBJECTIVE

    if problem.constraints is None:
        violations = np.zeros(n)
        violations[bad] = PENALTY_OBJECTIVE  # failed => never "feasible"
        return objectives, violations

    g = None
    if getattr(problem, "constraints_batch", None) is not None:
        try:
            g = np.asarray(problem.constraints_batch(population),
                           dtype=float)
            if g.shape[0] != n:
                raise ValueError(
                    f"constraints_batch returned {g.shape[0]} rows "
                    f"for a population of {n}"
                )
        except Exception:  # noqa: BLE001 - degrade to the scalar loop
            health.retries += 1
            g = None
    if g is None:
        rows: List[Optional[np.ndarray]] = []
        for x in population:
            try:
                rows.append(np.asarray(problem.constraints(x),
                                       dtype=float).reshape(-1))
            except Exception:  # noqa: BLE001 - absorb per candidate
                # The objective pass is the canonical failure counter;
                # a failed constraint row just forfeits feasibility.
                rows.append(None)
        width = max((r.size for r in rows if r is not None), default=1)
        g = np.full((n, width), PENALTY_OBJECTIVE, dtype=float)
        for i, r in enumerate(rows):
            if r is not None:
                g[i] = r
    g = np.where(np.isfinite(g), g, PENALTY_OBJECTIVE)
    violations = np.max(np.maximum(g, 0.0), axis=1, initial=0.0)
    violations[bad] = np.maximum(violations[bad], PENALTY_OBJECTIVE)
    return objectives, violations


def _constrained_dominates(i, j, objectives, violations) -> bool:
    """Deb's rule: feasible beats infeasible; otherwise compare."""
    vi, vj = violations[i], violations[j]
    if vi <= 1e-12 and vj > 1e-12:
        return True
    if vi > 1e-12 and vj <= 1e-12:
        return False
    if vi > 1e-12 and vj > 1e-12:
        return vi < vj
    fi, fj = objectives[i], objectives[j]
    return bool(np.all(fi <= fj) and np.any(fi < fj))


def _nondominated_sort(objectives, violations) -> List[List[int]]:
    n = len(objectives)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = np.zeros(n, dtype=int)
    fronts: List[List[int]] = [[]]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if _constrained_dominates(i, j, objectives, violations):
                dominated_by[i].append(j)
            elif _constrained_dominates(j, i, objectives, violations):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return fronts[:-1]


def _crowding_distance(front_objectives) -> np.ndarray:
    m, n_obj = front_objectives.shape
    distance = np.zeros(m)
    if m <= 2:
        return np.full(m, np.inf)
    for k in range(n_obj):
        order = np.argsort(front_objectives[:, k])
        values = front_objectives[order, k]
        spread = values[-1] - values[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if spread <= 0:
            continue
        distance[order[1:-1]] += (values[2:] - values[:-2]) / spread
    return distance


def _environmental_selection(objectives, violations, target_size):
    fronts = _nondominated_sort(objectives, violations)
    keep: List[int] = []
    for front in fronts:
        if len(keep) + len(front) <= target_size:
            keep.extend(front)
            continue
        remaining = target_size - len(keep)
        front_arr = np.asarray(front, dtype=int)
        crowding = _crowding_distance(objectives[front_arr])
        order = np.argsort(-crowding)
        keep.extend(front_arr[order[:remaining]].tolist())
        break
    return np.asarray(keep, dtype=int)


def _tournament(population, objectives, violations, rng):
    n = len(population)
    fronts = _nondominated_sort(objectives, violations)
    rank = np.empty(n, dtype=int)
    for level, front in enumerate(fronts):
        rank[np.asarray(front, dtype=int)] = level
    crowding = np.zeros(n)
    for front in fronts:
        front_arr = np.asarray(front, dtype=int)
        crowding[front_arr] = _crowding_distance(objectives[front_arr])

    winners = np.empty((n, population.shape[1]))
    for slot in range(n):
        a, b = rng.integers(n, size=2)
        if rank[a] < rank[b] or (
            rank[a] == rank[b] and crowding[a] > crowding[b]
        ):
            winners[slot] = population[a]
        else:
            winners[slot] = population[b]
    return winners


def _sbx_crossover(parents, lower, upper, probability, eta, rng):
    children = parents.copy()
    n, dim = parents.shape
    for i in range(0, n - 1, 2):
        if rng.random() > probability:
            continue
        u = rng.random(dim)
        beta = np.where(
            u <= 0.5,
            (2.0 * u) ** (1.0 / (eta + 1.0)),
            (1.0 / (2.0 * (1.0 - u))) ** (1.0 / (eta + 1.0)),
        )
        parent_a, parent_b = parents[i], parents[i + 1]
        children[i] = 0.5 * ((1 + beta) * parent_a + (1 - beta) * parent_b)
        children[i + 1] = 0.5 * ((1 - beta) * parent_a + (1 + beta) * parent_b)
    return np.clip(children, lower, upper)


def _polynomial_mutation(children, lower, upper, eta, rng):
    n, dim = children.shape
    span = upper - lower
    probability = 1.0 / dim
    mask = rng.random((n, dim)) < probability
    u = rng.random((n, dim))
    delta = np.where(
        u < 0.5,
        (2.0 * u) ** (1.0 / (eta + 1.0)) - 1.0,
        1.0 - (2.0 * (1.0 - u)) ** (1.0 / (eta + 1.0)),
    )
    mutated = children + mask * delta * span
    return np.clip(mutated, lower, upper)
