"""Failure taxonomy, run-health telemetry, and the fault-injection harness.

Population-based optimization of the LNA sweeps candidates into regions
where the circuit model legitimately breaks down: singular MNA matrices
(degenerate element values), non-convergent DC bias, NaN noise figures.
The runtime's contract is that *the optimizer absorbs these failures* —
a bad candidate costs one penalty evaluation, never the whole run.

This module is the shared vocabulary of that contract:

* :class:`EvaluationFailure` — the structured record one failed
  candidate evaluation produces (category, message, design vector);
* :class:`RunHealth` — per-run counters (failures by category, retries,
  pool rebuilds, engine fallbacks) surfaced on every optimizer result
  and rendered by :func:`repro.core.report.format_run_health`;
* :func:`classify_exception` / :func:`guarded_call` — the one place
  that decides which exceptions are *evaluation* failures (absorbed)
  versus programming errors (propagated);
* :class:`FaultInjector` — a seeded test harness that makes any
  objective raise, hang, or return NaN with set probabilities, used by
  the fault-tolerance test suite to verify the absorption guarantees.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.analysis.dc import DcConvergenceError

__all__ = [
    "InjectedFault",
    "EvaluationFailure",
    "RunHealth",
    "FaultInjector",
    "FAILURE_EXCEPTIONS",
    "classify_exception",
    "guarded_call",
    "retry_transient",
    "backoff_delay",
    "BACKOFF_BASE",
    "BACKOFF_CAP",
    "BACKOFF_JITTER",
]

#: Exception types that mean "this candidate cannot be evaluated", as
#: opposed to programming errors.  ``ValueError`` is included because
#: the MNA solvers report singular topologies through it.
FAILURE_EXCEPTIONS = (
    DcConvergenceError,
    np.linalg.LinAlgError,
    ValueError,
    FloatingPointError,
    ZeroDivisionError,
    OverflowError,
)

#: Canonical failure categories (keys of :attr:`RunHealth.failures`).
CATEGORY_DC = "dc_convergence"
CATEGORY_SINGULAR = "singular"
CATEGORY_NON_FINITE = "non_finite"
CATEGORY_EXCEPTION = "exception"
CATEGORY_TIMEOUT = "timeout"
CATEGORY_BAD_BIAS = "bad_bias"
CATEGORY_CONTRACT = "contract"

#: Exponential-backoff schedule shared by every transient-retry loop in
#: the runtime: worker-pool rebuilds
#: (:class:`repro.optimize.batching.PopulationEvaluator`) and checkpoint
#: file I/O (:class:`repro.optimize.checkpoint.FileCheckpointStore`)
#: both wait ``min(BACKOFF_CAP, BACKOFF_BASE * 2**k)`` seconds before
#: attempt ``k + 1``.
BACKOFF_BASE = 0.1
BACKOFF_CAP = 2.0

#: Default fractional jitter of :func:`backoff_delay`.  Each wait is
#: scaled by ``1 - BACKOFF_JITTER * u`` with a *deterministic* uniform
#: ``u`` derived from the caller's jitter key and the attempt index —
#: never above the capped schedule, and kept below ``0.5`` so that a
#: doubled next delay still exceeds the jittered previous one (backoff
#: stays monotone below the cap).
BACKOFF_JITTER = 0.25


def backoff_delay(attempt: int,
                  backoff_base: float = BACKOFF_BASE,
                  backoff_cap: float = BACKOFF_CAP,
                  jitter: float = BACKOFF_JITTER,
                  key=None) -> float:
    """The wait before retry ``attempt + 1``, with seeded de-sync jitter.

    The undithered schedule is ``min(cap, base * 2**attempt)`` — the
    shared contract of every transient-retry loop in the runtime.  On
    top of it, the delay is scaled by ``1 - jitter * u`` where ``u`` in
    ``[0, 1)`` is a deterministic hash of ``(key, attempt)`` (the key
    defaults to the calling process id).  Many runners that hit the
    same transient failure at the same moment therefore spread their
    retries instead of re-colliding in synchronized waves, yet a given
    runner's schedule is reproducible — no ambient RNG state is
    consumed.
    """
    delay = min(backoff_cap, backoff_base * 2.0 ** attempt)
    if jitter <= 0.0:
        return delay
    token = f"{os.getpid() if key is None else key}:{attempt}"
    u = zlib.crc32(token.encode("utf-8")) / 2.0 ** 32
    return delay * (1.0 - float(jitter) * u)


def retry_transient(fn: Callable, *args,
                    attempts: int = 3,
                    backoff_base: float = BACKOFF_BASE,
                    backoff_cap: float = BACKOFF_CAP,
                    jitter: float = BACKOFF_JITTER,
                    jitter_key=None,
                    retry_on=(OSError,),
                    no_retry=(FileNotFoundError,),
                    on_retry: Optional[Callable] = None,
                    **kwargs):
    """Call ``fn(*args, **kwargs)``, retrying transient failures.

    Exceptions matching *retry_on* (default: ``OSError`` — the class
    transient filesystem hiccups raise) are retried up to *attempts*
    times with the shared capped exponential backoff of
    :func:`backoff_delay` — including its deterministic seeded jitter,
    so a fleet of runners retrying the same failure does not
    synchronize (*jitter_key* seeds the dither; it defaults to the
    process id).  Exceptions in *no_retry* (default:
    ``FileNotFoundError`` — a missing file is a state, not a hiccup)
    and everything else propagate immediately.  *on_retry*, when
    given, is called as ``on_retry(exc, attempt)`` before each sleep so
    callers can count retries in their telemetry.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    for attempt in range(attempts):
        try:
            return fn(*args, **kwargs)
        except no_retry:
            raise
        except retry_on as exc:
            if attempt == attempts - 1:
                raise
            if on_retry is not None:
                on_retry(exc, attempt)
            time.sleep(backoff_delay(attempt, backoff_base, backoff_cap,
                                     jitter=jitter, key=jitter_key))


class InjectedFault(RuntimeError):
    """The artificial failure raised by :class:`FaultInjector`."""


@dataclass(frozen=True)
class EvaluationFailure:
    """One candidate evaluation that could not produce a finite result."""

    category: str
    message: str
    x: Optional[np.ndarray] = None

    def __str__(self) -> str:
        return f"[{self.category}] {self.message}"


def classify_exception(exc: BaseException) -> str:
    """Map an absorbed exception to its failure category."""
    if isinstance(exc, DcConvergenceError):
        return CATEGORY_DC
    if isinstance(exc, np.linalg.LinAlgError):
        return CATEGORY_SINGULAR
    if "singular" in str(exc).lower():
        return CATEGORY_SINGULAR
    return CATEGORY_EXCEPTION


@dataclass
class RunHealth:
    """Failure/retry/fallback telemetry of one optimization run.

    Attached to every optimizer result (``result.health``); counters
    are cumulative over the run, survive checkpoint/resume, and are
    rendered by :func:`repro.core.report.format_run_health`.
    """

    failures: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    pool_rebuilds: int = 0
    engine_fallbacks: int = 0
    serial_fallback: bool = False
    checkpoints_written: int = 0
    resumed_at: Optional[int] = None

    def record(self, category: str, n: int = 1):
        """Count *n* failures of *category*."""
        self.failures[category] = self.failures.get(category, 0) + int(n)

    @property
    def n_failures(self) -> int:
        """Total failed candidate evaluations, all categories."""
        return int(sum(self.failures.values()))

    def as_dict(self) -> Dict[str, object]:
        """Flat dict for logging / table rows."""
        flat: Dict[str, object] = {
            f"failures.{k}": v for k, v in sorted(self.failures.items())
        }
        flat.update(
            n_failures=self.n_failures,
            retries=self.retries,
            pool_rebuilds=self.pool_rebuilds,
            engine_fallbacks=self.engine_fallbacks,
            serial_fallback=self.serial_fallback,
            checkpoints_written=self.checkpoints_written,
        )
        return flat

    def merge(self, other: "RunHealth"):
        """Fold another health record into this one (counters add)."""
        for category, count in other.failures.items():
            self.record(category, count)
        self.retries += other.retries
        self.pool_rebuilds += other.pool_rebuilds
        self.engine_fallbacks += other.engine_fallbacks
        self.serial_fallback = self.serial_fallback or other.serial_fallback
        self.checkpoints_written += other.checkpoints_written

    # -- checkpoint support -------------------------------------------------
    def state(self) -> Dict[str, object]:
        """Serializable snapshot for checkpoint payloads."""
        return {
            "failures": dict(self.failures),
            "retries": self.retries,
            "pool_rebuilds": self.pool_rebuilds,
            "engine_fallbacks": self.engine_fallbacks,
            "serial_fallback": self.serial_fallback,
            "checkpoints_written": self.checkpoints_written,
        }

    def restore(self, state: Dict[str, object]):
        """Load a snapshot produced by :meth:`state`."""
        self.failures = dict(state["failures"])
        self.retries = int(state["retries"])
        self.pool_rebuilds = int(state["pool_rebuilds"])
        self.engine_fallbacks = int(state["engine_fallbacks"])
        self.serial_fallback = bool(state["serial_fallback"])
        self.checkpoints_written = int(state["checkpoints_written"])


def guarded_call(objective: Callable[[np.ndarray], float], x: np.ndarray,
                 health: RunHealth) -> float:
    """Evaluate a scalar objective, absorbing candidate failures.

    Exceptions in :data:`FAILURE_EXCEPTIONS` (plus any other
    ``Exception`` — stochastic objectives can fail in arbitrary ways)
    and non-finite return values are recorded in *health* and mapped to
    ``+inf``, which every optimizer treats as "worse than anything
    finite".  ``KeyboardInterrupt``/``SystemExit`` propagate so runs
    stay interruptible.
    """
    try:
        value = float(objective(x))
    except Exception as exc:  # noqa: BLE001 - absorption is the contract
        health.record(classify_exception(exc))
        return float("inf")
    if not np.isfinite(value):
        health.record(CATEGORY_NON_FINITE)
        return float("inf")
    return value


class FaultInjector:
    """Wrap an objective so it fails with seeded probabilities.

    Test harness for the fault-tolerant runtime: each call draws one
    uniform variate and either raises :class:`InjectedFault`
    (probability ``p_raise``), returns ``nan_value`` (``p_nan``),
    sleeps for ``hang_seconds`` before answering (``p_hang``), kills
    the hosting *worker process* outright (``p_exit``), or delegates to
    the wrapped objective.  Injection counts are kept per kind so tests
    can assert that an optimizer's :class:`RunHealth` counters match
    exactly what was injected.

    The ``p_exit`` band simulates a worker crash — segfault, OOM kill —
    for the shared-memory evaluator fleet: it calls ``os._exit`` so no
    ``finally``/``atexit`` cleanup runs, exactly like a real crash.  It
    only fires inside a :mod:`multiprocessing` child
    (``multiprocessing.parent_process() is not None``); in the parent —
    i.e. on the serial-fallback rerun — the band is inert and the call
    delegates to the objective, so a crashing run's fallback results
    are bit-identical to a run that never crashed.  The RNG draw
    happens in whichever process makes the call, and a fleet worker
    operates on a forked *copy* of the injector, so the parent's RNG
    stream is never advanced by child-side draws.
    """

    def __init__(self, objective: Callable[[np.ndarray], float],
                 p_raise: float = 0.0, p_nan: float = 0.0,
                 p_hang: float = 0.0, p_exit: float = 0.0,
                 hang_seconds: float = 60.0,
                 exit_code: int = 23,
                 nan_value=float("nan"), seed: Optional[int] = 0):
        for name, p in (("p_raise", p_raise), ("p_nan", p_nan),
                        ("p_hang", p_hang), ("p_exit", p_exit)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if p_raise + p_nan + p_hang + p_exit > 1.0:
            raise ValueError("injection probabilities must sum to <= 1")
        self._objective = objective
        self.p_raise = float(p_raise)
        self.p_nan = float(p_nan)
        self.p_hang = float(p_hang)
        self.p_exit = float(p_exit)
        self.hang_seconds = float(hang_seconds)
        self.exit_code = int(exit_code)
        self.nan_value = nan_value
        self._rng = np.random.default_rng(seed)
        self.n_calls = 0
        self.n_raised = 0
        self.n_nan = 0
        self.n_hung = 0
        self.n_exits = 0

    @property
    def n_injected(self) -> int:
        """Total injected faults of any kind."""
        return self.n_raised + self.n_nan + self.n_hung + self.n_exits

    def __call__(self, x):
        import multiprocessing as _mp
        import os as _os

        self.n_calls += 1
        u = float(self._rng.random())
        if u < self.p_raise:
            self.n_raised += 1
            raise InjectedFault(
                f"injected evaluation failure (call {self.n_calls})"
            )
        if u < self.p_raise + self.p_nan:
            self.n_nan += 1
            return self.nan_value
        if u < self.p_raise + self.p_nan + self.p_hang:
            self.n_hung += 1
            time.sleep(self.hang_seconds)
            return self._objective(x)
        if u < self.p_raise + self.p_nan + self.p_hang + self.p_exit:
            if _mp.parent_process() is not None:
                self.n_exits += 1
                _os._exit(self.exit_code)
            # In the parent the kill band is inert: the serial
            # fallback rerun must produce the clean-run values.
        return self._objective(x)
