"""Pareto-front utilities for minimization problems.

Used by experiment E6 to draw the NF/GT trade-off front and to score
how close each optimizer's answers land to it.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

__all__ = [
    "dominates",
    "pareto_filter",
    "hypervolume_2d",
    "sweep_goal_front",
]


def dominates(a, b, tolerance: float = 0.0) -> bool:
    """True when point *a* Pareto-dominates *b* (all <=, one strictly <)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b + tolerance) and np.any(a < b - tolerance))


def pareto_filter(points) -> np.ndarray:
    """Indices of the non-dominated points, in input order.

    O(n^2) pairwise scan — fine for the front sizes experiments produce.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"points must be (n, m), got shape {points.shape}")
    n = points.shape[0]
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            continue
        for j in range(n):
            if i != j and keep[j] and dominates(points[j], points[i]):
                keep[i] = False
                break
    return np.flatnonzero(keep)


def hypervolume_2d(points, reference) -> float:
    """Dominated hypervolume of a 2-objective front w.r.t. *reference*.

    Both objectives minimized; points beyond the reference contribute
    nothing.  Larger is better.
    """
    points = np.asarray(points, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("hypervolume_2d needs (n, 2) points")
    front = points[pareto_filter(points)]
    front = front[np.all(front <= reference, axis=1)]
    if front.size == 0:
        return 0.0
    front = front[np.argsort(front[:, 0])]
    volume = 0.0
    prev_f2 = reference[1]
    for f1, f2 in front:
        if f2 < prev_f2:
            volume += (reference[0] - f1) * (prev_f2 - f2)
            prev_f2 = f2
    return float(volume)


def sweep_goal_front(
    solve: Callable[[np.ndarray], "object"],
    goal_list,
    extract: Optional[Callable[[object], np.ndarray]] = None,
) -> np.ndarray:
    """Trace a front by solving for a list of goal vectors.

    ``solve(goals)`` runs one multi-objective solve; ``extract`` pulls
    the objective vector from its result (defaults to the
    ``objectives`` attribute).  Returns the non-dominated subset of the
    collected points, sorted by the first objective.
    """
    if extract is None:
        extract = lambda result: result.objectives  # noqa: E731
    collected: List[np.ndarray] = []
    for goals in goal_list:
        result = solve(np.asarray(goals, dtype=float))
        collected.append(np.asarray(extract(result), dtype=float))
    points = np.vstack(collected)
    front = points[pareto_filter(points)]
    return front[np.argsort(front[:, 0])]
